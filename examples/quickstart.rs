//! Quickstart: build a small simulated CMP, run the same false-sharing
//! kernel under baseline MESI and under Ghostwriter, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ghostwriter::core::{Machine, MachineConfig, Protocol};
use ghostwriter::mem::Addr;

/// Four threads repeatedly read-modify-write adjacent words of one cache
/// block — the paper's Listing 1 in miniature.
fn run(protocol: Protocol) -> (u64, u64, u64, Vec<u32>) {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        protocol,
        ..MachineConfig::default()
    });
    // One shared block; slot t belongs to thread t (false sharing!).
    let shared: Addr = m.alloc_padded(64);
    for t in 0..4usize {
        m.add_thread(move |ctx| async move {
            // #pragma approx_dist(8); #pragma approx_begin(shared)
            ctx.approx_begin(8).await;
            let slot = shared.add(4 * t as u64);
            for i in 0..200u32 {
                let v = ctx.load_u32(slot).await;
                // Mostly-small updates with an occasional large jump —
                // the error-tolerant value profile the paper targets. The
                // small deltas take the Ghostwriter fast path (bit-wise
                // similar, no coherence actions); the jumps fail the
                // d-check and publish conventionally, bounding the error.
                let delta = if i % 16 == 0 { 1 << 12 } else { i % 2 };
                ctx.scribble_u32(slot, v + delta).await;
                ctx.work(16).await;
            }
            ctx.approx_end().await;
        });
    }
    let run = m.run();
    let outputs = (0..4).map(|t| run.read_u32(shared.add(4 * t))).collect();
    (
        run.report.cycles,
        run.report.stats.traffic.total(),
        run.report.stats.serviced_by_gs + run.report.stats.serviced_by_gi,
        outputs,
    )
}

fn main() {
    let (base_cycles, base_msgs, _, base_out) = run(Protocol::Mesi);
    let (gw_cycles, gw_msgs, gw_serviced, gw_out) = run(Protocol::ghostwriter());
    println!("baseline MESI : {base_cycles} cycles, {base_msgs} coherence messages");
    println!("ghostwriter   : {gw_cycles} cycles, {gw_msgs} coherence messages");
    println!(
        "speedup {:.1}%  traffic -{:.1}%  {} stores serviced by GS/GI",
        (base_cycles as f64 / gw_cycles as f64 - 1.0) * 100.0,
        (1.0 - gw_msgs as f64 / base_msgs as f64) * 100.0,
        gw_serviced
    );
    println!("exact results : {base_out:?}");
    println!("approx results: {gw_out:?}");
    let max_err = base_out
        .iter()
        .zip(&gw_out)
        .map(|(a, b)| a.abs_diff(*b))
        .max()
        .unwrap();
    println!("max |error|   : {max_err}");
}
