//! Watch the Ghostwriter protocol work, message by message: a 2-core
//! migratory false-sharing episode (the paper's Fig. 4) traced under both
//! protocols, plus a peek at the approximate states' occupancy.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use ghostwriter::core::{Machine, MachineConfig, Protocol};

fn trace(protocol: Protocol, label: &str) -> u64 {
    let mut m = Machine::new(MachineConfig {
        cores: 2,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    // Epochs of Fig. 4: store by core 0, load+scribble by core 1, re-read
    // by core 0.
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..2u32 {
            ctx.store_u32(block, r + 1).await; // offset 0
            ctx.barrier().await;
            ctx.barrier().await;
            let _ = ctx.load_u32(block).await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..2u32 {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await; // offset 1
            ctx.scribble_u32(block.add(4), v + (r & 1)).await;
            ctx.barrier().await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    let run = m.run();
    println!("--- {label}: {} messages ---", run.trace.len());
    for t in &run.trace {
        println!(
            "  cycle {:>5}  {:<12} {:?} -> {:?}",
            t.cycle, t.name, t.src, t.dst
        );
    }
    run.report.stats.traffic.total()
}

fn main() {
    let mesi = trace(Protocol::Mesi, "baseline MESI (Fig. 4a)");
    println!();
    let gw = trace(Protocol::ghostwriter(), "Ghostwriter (Fig. 4b)");
    println!(
        "\nGhostwriter removed {} of {} messages: core 1's scribble hits in\n\
         GS instead of sending UPGRADE + invalidation, and core 0's re-read\n\
         stays a hit because its copy was never invalidated.",
        mesi - gw,
        mesi
    );
}
