//! An end-to-end error-tolerant pipeline: the jpeg workload (DCT →
//! in-place quantization → reconstruction) on a 24-core machine, showing
//! the accuracy/efficiency trade-off Ghostwriter offers at different
//! d-distances.
//!
//! ```text
//! cargo run --release --example approximate_image
//! ```

use ghostwriter::core::{MachineConfig, Protocol};
use ghostwriter::workloads::{execute, Jpeg};

fn main() {
    println!("jpeg 64x64, 24 threads");
    println!("config            | cycles  | messages | NRMSE");
    let run_one = |protocol: Protocol, d: u8, label: &str| {
        let mut w = Jpeg::new(0xA11CE, 64, 64);
        let out = execute(
            &mut w,
            MachineConfig {
                cores: 24,
                protocol,
                ..MachineConfig::default()
            },
            24,
            d,
        );
        println!(
            "{label:<17} | {:>7} | {:>8} | {:.4}%",
            out.report.cycles,
            out.report.stats.traffic.total(),
            out.error_percent
        );
        (out.report.cycles, out.report.stats.traffic.total())
    };
    let (bc, bm) = run_one(Protocol::Mesi, 0, "MESI (exact)");
    for d in [2u8, 4, 8] {
        let (c, m) = run_one(Protocol::ghostwriter(), d, &format!("Ghostwriter d={d}"));
        println!(
            "                  -> speedup {:+.1}%, traffic {:+.1}%",
            (bc as f64 / c as f64 - 1.0) * 100.0,
            (m as f64 / bm as f64 - 1.0) * 100.0
        );
    }
}
