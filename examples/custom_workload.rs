//! Building your own workload against the public API: an iterative
//! in-place Jacobi-style smoother (error-tolerant signal processing)
//! written with the typed `layout` views. Each sweep rewrites the shared
//! signal with values within a few LSBs of what they overwrite — the
//! value-similarity profile Ghostwriter exploits.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ghostwriter::core::layout::ArrayI32;
use ghostwriter::core::{Machine, MachineConfig, Protocol};

const SWEEPS: usize = 4;

/// Builds the machine: `threads` cores repeatedly smooth a shared signal
/// *in place* with a damped 3-tap average. Interleaved element ownership
/// makes every block falsely shared; in-place rewrites of barely-changed
/// values make the stores approximatable.
fn build(protocol: Protocol, threads: usize, d: u8, signal: &[i32]) -> (Machine, ArrayI32) {
    let mut m = Machine::new(MachineConfig {
        cores: threads,
        protocol,
        ..MachineConfig::default()
    });
    let n = signal.len();
    let data = ArrayI32::alloc(&mut m, n);
    m.backdoor_write_i32s(data.base(), signal);
    for t in 0..threads {
        m.add_thread(move |ctx| async move {
            ctx.approx_begin(d).await;
            for _ in 0..SWEEPS {
                let mut i = t;
                while i < n {
                    let prev = data.load(&ctx, i.saturating_sub(1)).await;
                    let cur = data.load(&ctx, i).await;
                    let next = data.load(&ctx, (i + 1).min(n - 1)).await;
                    ctx.work(8).await;
                    // Damped update: moves a quarter of the way to the
                    // local mean — small deltas, high similarity.
                    let target = (prev + cur + next) / 3;
                    data.scribble(&ctx, i, cur + (target - cur) / 4).await;
                    i += threads;
                }
                ctx.barrier().await;
            }
            ctx.approx_end().await;
        });
    }
    (m, data)
}

/// Precise reference mirroring the parallel schedule: interleaved
/// element updates, in place, sweep by sweep.
fn reference(signal: &[i32], threads: usize) -> Vec<i32> {
    let n = signal.len();
    let mut v = signal.to_vec();
    for _ in 0..SWEEPS {
        for t in 0..threads {
            let mut i = t;
            while i < n {
                let prev = v[i.saturating_sub(1)];
                let cur = v[i];
                let next = v[(i + 1).min(n - 1)];
                let target = (prev + cur + next) / 3;
                v[i] = cur + (target - cur) / 4;
                i += threads;
            }
        }
    }
    v
}

fn main() {
    // A smooth signal with occasional steps (mostly-similar values).
    let n = 2048;
    let signal: Vec<i32> = (0..n)
        .map(|i| {
            500 + ((i as f64) / 40.0).sin() as i32 * 4
                + (i as i32 % 7)
                + if i % 400 == 0 { 300 } else { 0 }
        })
        .collect();
    let exact = reference(&signal, 8);

    // In-place relaxation is chaotic/racy by design: even MESI deviates
    // slightly from the sequential schedule (reads race with neighbour
    // updates); the algorithm tolerates it, which is exactly what makes
    // it a Ghostwriter candidate.
    println!("protocol      | d | cycles  | messages | max |err| vs sequential");
    for (label, protocol, d) in [
        ("MESI", Protocol::Mesi, 0u8),
        ("Ghostwriter", Protocol::ghostwriter(), 4),
        ("Ghostwriter", Protocol::ghostwriter(), 8),
    ] {
        let (m, output) = build(protocol, 8, d, &signal);
        let run = m.run();
        let got = run.read_i32s(output.base(), n);
        let max_err = exact
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).unsigned_abs())
            .max()
            .unwrap();
        println!(
            "{label:<13} | {d} | {:>7} | {:>8} | {max_err}",
            run.report.cycles,
            run.report.stats.traffic.total()
        );
    }
    println!("\nThe smoother's in-place writes are value-similar, so Ghostwriter");
    println!("absorbs the false-sharing misses (~8x less traffic); the deviation");
    println!("grows with d but stays within the approximation window.");
}
