//! The paper's §2 motivation (Fig. 1): the naive parallel dot product of
//! Listing 1 collapses under false sharing while the privatized Listing 2
//! scales — and Ghostwriter recovers most of the naive version's loss
//! without touching the source.
//!
//! ```text
//! cargo run --release --example false_sharing
//! ```

use ghostwriter::core::{MachineConfig, Protocol};
use ghostwriter::workloads::{execute, BadDotProduct, GoodDotProduct, Workload};

fn cycles(w: &mut dyn Workload, threads: usize, protocol: Protocol) -> u64 {
    let cfg = MachineConfig {
        cores: threads,
        protocol,
        ..MachineConfig::default()
    };
    execute(w, cfg, threads, 8).report.cycles
}

fn main() {
    let n = 6_000;
    println!("threads | naive/MESI | naive/Ghostwriter | privatized");
    let base = cycles(&mut BadDotProduct::new(7, n, true), 1, Protocol::Mesi);
    for threads in [1usize, 2, 4, 8, 16] {
        let naive = cycles(&mut BadDotProduct::new(7, n, true), threads, Protocol::Mesi);
        let gw = cycles(
            &mut BadDotProduct::new(7, n, true),
            threads,
            Protocol::ghostwriter(),
        );
        let good = cycles(&mut GoodDotProduct::new(7, n), threads, Protocol::Mesi);
        println!(
            "{threads:>7} | {:>9.2}x | {:>16.2}x | {:>9.2}x",
            base as f64 / naive as f64,
            base as f64 / gw as f64,
            base as f64 / good as f64,
        );
    }
    println!("\nThe scribbled naive version recovers scaling on-the-fly;");
    println!("the privatized rewrite remains the software fix.");
}
