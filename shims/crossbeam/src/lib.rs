//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! The workspace only uses `crossbeam::channel::{bounded, Sender,
//! Receiver}` (zero-capacity rendezvous channels in the execution-driven
//! thread harness), which maps directly onto `std::sync::mpsc`
//! rendezvous channels. See `[patch.crates-io]` in the root manifest.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Bounded channel; capacity 0 gives rendezvous semantics, exactly
    /// like `crossbeam_channel::bounded(0)`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Sending half (clonable, like crossbeam's).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until a receiver takes the message (capacity 0) or
        /// buffer space frees up; errors if all receivers dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors once the channel is
        /// empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The message could not be delivered (receiver gone).
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn rendezvous_round_trip() {
            let (tx, rx) = bounded::<u32>(0);
            let h = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn recv_errors_after_sender_drop() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
