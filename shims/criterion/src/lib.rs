//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build container has no registry access, so the workspace patches
//! `criterion` to this shim (see `[patch.crates-io]` in the root
//! manifest). It runs each benchmark as a plain timing loop and prints
//! the mean wall-clock time per iteration — no warm-up modelling,
//! statistics, or HTML reports. Honors `--bench` (ignored) and filters
//! benchmarks by any other CLI argument, like upstream's substring
//! filter, so `cargo bench <name>` still narrows the run.

use std::time::{Duration, Instant};

/// Per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Units the measured time is reported against.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip argv[0] and harness flags; any bare argument is a
        // benchmark-name substring filter, as with upstream criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Accepted for API parity with `Criterion::configure_from_args`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut total = Duration::ZERO;
        let mut iters_total = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            iters_total += b.iters;
        }
        let mean = total.as_secs_f64() / iters_total.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!("{full:<48} time: {:>12.3?} /iter{rate}", Duration::from_secs_f64(mean));
        self
    }

    pub fn finish(self) {}
}

/// Build the group-runner functions (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Build `main` from group runners (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        // Bypass Default: under `cargo test <filter>` the harness argv
        // would otherwise be picked up as a benchmark-name filter.
        let mut c = Criterion {
            filter: None,
            sample_size: 10,
        };
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        assert!(runs >= 2);
    }
}
