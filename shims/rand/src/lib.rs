//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no registry access, so the workspace patches
//! `rand` to this shim (see `[patch.crates-io]` in the root manifest).
//! It implements exactly the surface the workspace uses — `StdRng`,
//! `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, `gen_bool` — backed by xoshiro256++ seeded via
//! SplitMix64. Streams are deterministic per seed but deliberately NOT
//! bit-compatible with upstream `rand` (nothing in the repo depends on
//! upstream's exact streams, only on seed-reproducibility).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a `u64` seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic general-purpose RNG (shim for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast RNG (shim for `rand::rngs::SmallRng`; same core here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types `Rng::gen` can produce (stands in for `Standard: Distribution<T>`).
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in [0, 1), 53-bit resolution.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniform ranges can sample (stands in for `SampleUniform`).
/// A single blanket `SampleRange` impl per range type keeps integer
/// literal inference working exactly like upstream rand's.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`, or `[start, end]` if `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(start < end, "gen_range: empty range");
                let unit = <$t as Random>::random(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges `Rng::gen_range` accepts (stands in for `SampleRange<T>`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        <f64 as Random>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
