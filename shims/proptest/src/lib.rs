//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build container has no registry access, so the workspace patches
//! `proptest` to this shim (see `[patch.crates-io]` in the root
//! manifest). It covers the surface the repo's property tests use:
//!
//! * the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! * `Strategy` with `prop_map` / `prop_flat_map` / `boxed`,
//! * range, tuple, `Just`, `any::<T>()` and `collection::vec` strategies,
//! * `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! * `ProptestConfig` and `TestCaseError`.
//!
//! Cases are generated from deterministic per-test seeds. On failure the
//! offending seed is appended to `proptest-regressions/<file>.txt` next
//! to the test's source file (mirroring upstream's failure persistence),
//! and seeds already recorded there are replayed before fresh cases —
//! so committed regression files keep guarding against recurrences.
//! Unlike upstream there is no value-tree shrinking: the failure report
//! carries the full generated inputs instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange};
}

/// `Strategy::prop_map`-style combinators and inputs.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: deterministic, regression-replaying runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_proptest(
                    file!(),
                    stringify!($name),
                    &config,
                    |rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        let inputs = format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                            $(&$arg),+
                        );
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (inputs, outcome)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
