//! Value-generation strategies (subset of `proptest::strategy`).
//!
//! Unlike upstream there are no value trees: a strategy is just a
//! deterministic function from an RNG to a value, so shrinking is not
//! supported. Everything else the workspace uses — ranges, `Just`,
//! tuples, `prop_map`, `prop_flat_map`, `Union` (via `prop_oneof!`),
//! `any::<T>()` and `collection::vec` — behaves equivalently.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!` expands to this).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (shim for `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length bound accepted by [`vec`] (shim for
/// `proptest::collection::SizeRange`).
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection::vec: empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// `Vec` strategy with a length drawn from `size` (shim for
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
