//! Deterministic test runner with seed persistence (subset of
//! `proptest::test_runner`).
//!
//! Each test's fresh cases use seeds derived from a hash of
//! (source file, test name, case index), so runs are reproducible
//! without any environment setup. Failing seeds are appended to
//! `proptest-regressions/<file stem>.txt` beside the test's source
//! file, and every seed found there is replayed before fresh cases —
//! the same commit-your-regressions workflow as upstream proptest,
//! with seeds instead of serialized value trees.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Why a single case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert!` (or explicit `Err`) rejected the case.
    Fail(String),
    /// The case asked to be discarded (accepted for API parity; the
    /// shim treats it as a pass since no workspace test rejects).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of fresh cases to run (after regression replay).
    pub cases: u32,
    /// Accepted for API parity; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: zero bound");
        self.next_u64() % bound
    }

    /// Uniform in [0, 1), 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Locate the directory holding the test's source file. `file!()` paths
/// are workspace-relative while `cargo test` runs with the *package*
/// directory as cwd, so walk upward until the path resolves.
fn source_dir(source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file);
    let mut base = std::env::current_dir().ok()?;
    loop {
        let candidate = base.join(rel);
        if candidate.is_file() {
            return candidate.parent().map(Path::to_path_buf);
        }
        if !base.pop() {
            return None;
        }
    }
}

fn regression_path(source_file: &str) -> Option<PathBuf> {
    let dir = source_dir(source_file)?;
    let stem = Path::new(source_file).file_stem()?.to_str()?;
    Some(dir.join("proptest-regressions").join(format!("{stem}.txt")))
}

/// Parse committed regression seeds for one test. Line format:
/// `seed = <u64> # <test name>`; `#`-only lines are comments.
fn regression_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix("seed =") else {
            continue;
        };
        let (value, owner) = match rest.split_once('#') {
            Some((v, o)) => (v.trim(), o.trim()),
            None => (rest.trim(), ""),
        };
        if !owner.is_empty() && owner != test_name {
            continue;
        }
        if let Ok(seed) = value.parse::<u64>() {
            seeds.push(seed);
        }
    }
    seeds
}

fn persist_seed(source_file: &str, test_name: &str, seed: u64) -> Option<PathBuf> {
    let path = regression_path(source_file)?;
    fs::create_dir_all(path.parent()?).ok()?;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .ok()?;
    if file.metadata().map(|m| m.len() == 0).unwrap_or(false) {
        writeln!(
            file,
            "# Seeds for failing cases found by the proptest shim.\n\
             # Committed seeds are replayed before fresh cases on every run.\n\
             # Format: seed = <u64> # <test name>"
        )
        .ok()?;
    }
    writeln!(file, "seed = {seed} # {test_name}").ok()?;
    Some(path)
}

/// Drive one `proptest!`-defined test: replay committed regression
/// seeds, then run `config.cases` fresh deterministic cases. The case
/// closure returns the `Debug`-formatted inputs plus the case outcome.
pub fn run_proptest<F>(source_file: &str, test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let committed: Vec<(u64, bool)> = regression_path(source_file)
        .map(|p| regression_seeds(&p, test_name))
        .unwrap_or_default()
        .into_iter()
        .map(|s| (s, true))
        .collect();

    let base = fnv1a(format!("{source_file}::{test_name}").as_bytes());
    let fresh = (0..config.cases as u64).map(|i| (base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), false));

    for (seed, replayed) in committed.into_iter().chain(fresh) {
        let mut rng = TestRng::from_seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        let failure = match result {
            Ok((_, Ok(()))) | Ok((_, Err(TestCaseError::Reject(_)))) => continue,
            Ok((inputs, Err(TestCaseError::Fail(reason)))) => (inputs, reason),
            Err(panic) => {
                let reason = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "test case panicked".to_string());
                (String::from("  <inputs unavailable: case panicked>\n"), reason)
            }
        };
        let (inputs, reason) = failure;
        let persisted = if replayed {
            None
        } else {
            persist_seed(source_file, test_name, seed)
        };
        let persisted_note = match (&persisted, replayed) {
            (_, true) => "replayed from committed regression file".to_string(),
            (Some(p), _) => format!("seed persisted to {}", p.display()),
            (None, _) => "seed NOT persisted (source dir not found)".to_string(),
        };
        panic!(
            "proptest case failed for `{test_name}` (seed = {seed}, {persisted_note})\n\
             minimal reproduction: add `seed = {seed} # {test_name}` to the regression file\n\
             inputs:\n{inputs}cause: {reason}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_seed_deterministic() {
        let mut a = TestRng::from_seed(3);
        let mut b = TestRng::from_seed(3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn regression_line_parsing() {
        let dir = std::env::temp_dir().join("proptest_shim_parse_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.txt");
        fs::write(
            &path,
            "# comment\nseed = 42 # my_test\nseed = 7 # other_test\nseed = 9\nbogus\n",
        )
        .unwrap();
        assert_eq!(regression_seeds(&path, "my_test"), vec![42, 9]);
        assert_eq!(regression_seeds(&path, "other_test"), vec![7, 9]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let cfg = ProptestConfig {
            cases: 10,
            ..Default::default()
        };
        run_proptest("shims/proptest/src/test_runner.rs", "passing", &cfg, |rng| {
            count += 1;
            let v = rng.next_u64();
            (format!("  v = {v:?}\n"), Ok(()))
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let cfg = ProptestConfig {
            cases: 3,
            ..Default::default()
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Nonexistent source path: failure still reported, seed not
            // persisted (keeps the test hermetic).
            run_proptest("no/such/file.rs", "always_fails", &cfg, |_rng| {
                (String::new(), Err(TestCaseError::fail("boom")))
            });
        }));
        let msg = result.unwrap_err();
        let msg = msg.downcast_ref::<String>().unwrap();
        assert!(msg.contains("seed ="), "message should carry the seed: {msg}");
        assert!(msg.contains("boom"));
    }
}
