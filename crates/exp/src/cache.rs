//! The content-addressed result cache (`results/cache/`).
//!
//! Layout: one file per run, named `<fingerprint-hex>.json`, wrapping
//! the canonical record payload with its own identity and an FNV-64
//! checksum of the payload text:
//!
//! ```json
//! {
//!   "fingerprint": "<32 hex digits>",
//!   "key": "rev=1|workload|…",
//!   "checksum": "<16 hex digits>",
//!   "record": { … }
//! }
//! ```
//!
//! The `key` field is informational (it makes cache entries greppable
//! and lets a human audit what a fingerprint stands for); identity is
//! the fingerprint. A load verifies (1) the stored fingerprint matches
//! the requested one, (2) re-serializing the parsed record reproduces
//! the text the checksum was taken over. Any mismatch — truncation, a
//! flipped byte, a stale schema — makes the entry a *miss*, so corrupt
//! files cause a re-run, never a wrong result.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use ghostwriter_core::Json;

use crate::fingerprint::{fnv64, Fingerprint};

/// A payload the cache can store: any type with a canonical JSON form
/// whose serializer and parser are strict inverses (re-serializing a
/// parsed record must reproduce the stored bytes — that is what the
/// checksum verifies). [`crate::record::RunRecord`] is the experiment
/// engine's payload; the model checker caches its sweep shards through
/// the same trait.
pub trait CacheRecord: Sized {
    /// Canonical JSON payload.
    fn to_json(&self) -> Json;
    /// Strict inverse of [`CacheRecord::to_json`].
    fn from_json(doc: &Json) -> Result<Self, String>;
    /// Canonical serialized form (what the cache stores and checksums).
    fn canonical_text(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// Handle on one cache directory.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

/// Why a lookup did not produce a record (callers mostly only care that
/// it didn't, but the sweep log reports corruption distinctly).
#[derive(Debug, PartialEq, Eq)]
pub enum Miss {
    /// No file for this fingerprint.
    Absent,
    /// File present but unreadable/inconsistent; it will be re-run.
    Corrupt(String),
}

impl ResultCache {
    /// Opens (and lazily creates) a cache under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The default on-repo location.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// File path for one fingerprint.
    pub fn path_of(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.hex()))
    }

    /// Looks a fingerprint up, verifying integrity.
    pub fn load<R: CacheRecord>(&self, fp: Fingerprint) -> Result<R, Miss> {
        let path = self.path_of(fp);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(Miss::Absent),
            Err(e) => return Err(Miss::Corrupt(format!("read {}: {e}", path.display()))),
        };
        Self::decode(fp, &text).map_err(Miss::Corrupt)
    }

    fn decode<R: CacheRecord>(fp: Fingerprint, text: &str) -> Result<R, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let stored_fp = doc
            .field("fingerprint")
            .and_then(|f| f.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        if stored_fp != fp.hex() {
            return Err(format!("fingerprint mismatch: file says {stored_fp}"));
        }
        let stored_sum = doc
            .field("checksum")
            .and_then(|f| f.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        let record = R::from_json(doc.field("record").map_err(|e| e.to_string())?)?;
        // The checksum was taken over the canonical payload text; the
        // canonical writer makes re-serialization reproduce it exactly,
        // so any in-file tampering (in the payload *or* the checksum)
        // surfaces here.
        let actual = format!("{:016x}", fnv64(record.canonical_text().as_bytes()));
        if actual != stored_sum {
            return Err(format!(
                "checksum mismatch: stored {stored_sum}, computed {actual}"
            ));
        }
        Ok(record)
    }

    /// Stores a record under its fingerprint. The write goes through a
    /// temp file + rename so a crash mid-write leaves either the old
    /// entry or none — a torn file would anyway be caught as `Corrupt`.
    pub fn store<R: CacheRecord>(
        &self,
        fp: Fingerprint,
        key: &str,
        record: &R,
    ) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let payload = record.canonical_text();
        let mut doc = Json::obj();
        doc.push("fingerprint", Json::Str(fp.hex()));
        doc.push("key", Json::Str(key.to_string()));
        doc.push(
            "checksum",
            Json::Str(format!("{:016x}", fnv64(payload.as_bytes()))),
        );
        doc.push("record", record.to_json());
        let text = doc.to_pretty();
        let tmp = self.dir.join(format!(".{}.tmp", fp.hex()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
        }
        fs::rename(&tmp, self.path_of(fp))
    }

    /// Deletes every cache entry; returns how many files went away.
    pub fn clean(&self) -> std::io::Result<usize> {
        let mut n = 0;
        match fs::read_dir(&self.dir) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
            Ok(entries) => {
                for entry in entries {
                    let path = entry?.path();
                    if path.extension().is_some_and(|e| e == "json") {
                        fs::remove_file(&path)?;
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
