//! A work-stealing thread pool for embarrassingly parallel run matrices.
//!
//! Every simulation (`Machine::run`) is single-threaded and independent,
//! so the engine's only parallel structure is a shared job queue that
//! idle workers steal from — the longest-running sweep cell never blocks
//! shorter ones behind a static partition. Results are tagged with their
//! submission index and reassembled in order, so the output is invariant
//! under scheduling: `--jobs 1` and `--jobs 8` produce identical vectors
//! (the golden-stats determinism suite asserts exactly this).
//!
//! Workers communicate through the vendored `crossbeam` channel shim;
//! the queue itself is a mutexed deque, which at this job granularity
//! (whole simulations, milliseconds to minutes each) is uncontended.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Applies `f` to every item on `jobs` worker threads, preserving input
/// order in the output. `f` receives `(index, item)`.
pub fn map_parallel<I, O, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = crossbeam::channel::bounded::<(usize, O)>(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let job = queue.lock().expect("pool queue poisoned").pop_front();
                    match job {
                        Some((idx, item)) => {
                            let out = f(idx, item);
                            // The channel holds `n` slots, so sends never
                            // block; an error means the receiver died.
                            tx.send((idx, out)).expect("pool receiver dropped");
                        }
                        None => break,
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = rx.recv().expect("worker died before finishing");
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index filled"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..50).collect();
        let seq = map_parallel(1, items.clone(), |i, x| (i as u64) * 1000 + x * x);
        for jobs in [2, 4, 8] {
            let par = map_parallel(jobs, items.clone(), |i, x| (i as u64) * 1000 + x * x);
            assert_eq!(seq, par, "jobs={jobs}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = map_parallel(4, (0..97).collect::<Vec<_>>(), |_, x: i32| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 97);
        assert_eq!(counter.load(Ordering::SeqCst), 97);
    }

    #[test]
    fn empty_and_single_item_edges() {
        assert!(map_parallel(4, Vec::<u8>::new(), |_, x| x).is_empty());
        assert_eq!(map_parallel(4, vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn idle_workers_steal_the_tail() {
        // One slow job first: with static partitioning the second worker
        // would sit idle; with stealing, the fast jobs all finish on the
        // other worker. Hard to assert timing portably, so assert the
        // result only — the scheduling property is the absence of a
        // partition in the implementation.
        let out = map_parallel(2, vec![30u64, 1, 1, 1, 1, 1], |_, ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, vec![30, 1, 1, 1, 1, 1]);
    }
}
