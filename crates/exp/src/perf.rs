//! `gwbench perf` — the simulator's perf-regression harness.
//!
//! Times a small set of kernels chosen to cover the three hot paths the
//! resumable-core engine rewrite (PR 4) touched:
//!
//! * `event_queue_churn` — raw [`EventQueue`] push/pop traffic, no
//!   machine: measures the scheduler data structure alone.
//! * `noc_contention_storm` — an 8-core packed-block invalidation
//!   ping-pong with `model_contention = true`: every miss walks mesh
//!   links through the dense `link_free` table.
//! * `ladder_moesi` / `ladder_mesif` — the same sharing storm on the
//!   protocol-ladder families whose forwarding paths (Owned supplier,
//!   Forward supplier) the base MESI kernel never exercises.
//! * `mesh_storm_16c` — the storm on a 16-core machine: a larger mesh
//!   with longer routes and more directory banks.
//! * one registry workload per class (`histogram`, `kmeans`,
//!   `blackscholes`) — end-to-end simulation throughput.
//!
//! Every entry is keyed `(name, engine, profile)` and reports simulated
//! ops, wall-clock and ops/sec. A full run (`gwbench perf`) writes BOTH
//! the `full` and `smoke` profiles so a CI smoke run can gate against the
//! committed file; `--smoke` runs only the fast profile. When the crate
//! is built with `--features legacy-threads`, machine kernels are timed
//! under the legacy OS-thread engine too, giving before/after numbers for
//! the engine rewrite in one artifact.
//!
//! `--baseline <file>` compares against a previous `BENCH_kernel.json`
//! and exits 4 if any matching kernel regressed by more than 2x —
//! deliberately loose, to gate engine-level regressions rather than
//! machine noise.

use std::time::Instant;

use ghostwriter_core::{BaseProtocol, Json, JsonError, MachineConfig, Protocol};
use ghostwriter_sim::EventQueue;
use ghostwriter_workloads::{execute, find_benchmark, ScaleClass, DEFAULT_SEED};

/// Default artifact path (repo root, committed).
pub const DEFAULT_OUT: &str = "BENCH_kernel.json";

/// Longitudinal record: every `gwbench perf` invocation appends one
/// dated JSON line here (see EXPERIMENTS.md), in addition to
/// overwriting the snapshot artifact.
pub const HISTORY_PATH: &str = "results/bench_history.jsonl";

/// One timed kernel run.
#[derive(Clone, Debug)]
pub struct PerfEntry {
    /// Kernel name.
    pub name: String,
    /// Execution engine: `resumable`, `legacy`, or `none` for kernels
    /// that bypass the machine.
    pub engine: String,
    /// `smoke` or `full`.
    pub profile: String,
    /// Simulated operations performed (queue ops, or loads+stores+
    /// scribbles for machine kernels).
    pub ops: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Throughput.
    pub ops_per_sec: f64,
}

impl PerfEntry {
    fn from_run(name: &str, engine: &str, profile: &str, ops: u64, secs: f64) -> Self {
        Self {
            name: name.into(),
            engine: engine.into(),
            profile: profile.into(),
            ops,
            wall_ms: secs * 1e3,
            ops_per_sec: ops as f64 / secs.max(1e-9),
        }
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("name", Json::Str(self.name.clone()));
        j.push("engine", Json::Str(self.engine.clone()));
        j.push("profile", Json::Str(self.profile.clone()));
        j.push("ops", Json::U64(self.ops));
        j.push("wall_ms", Json::F64(self.wall_ms));
        j.push("ops_per_sec", Json::F64(self.ops_per_sec));
        j
    }

    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: j.field("name")?.as_str()?.to_string(),
            engine: j.field("engine")?.as_str()?.to_string(),
            profile: j.field("profile")?.as_str()?.to_string(),
            ops: j.field("ops")?.as_u64()?,
            wall_ms: j.field("wall_ms")?.as_f64()?,
            ops_per_sec: j.field("ops_per_sec")?.as_f64()?,
        })
    }
}

/// Serializes a run to the committed artifact format.
pub fn to_json(entries: &[PerfEntry]) -> Json {
    let mut j = Json::obj();
    j.push("format", Json::Str("gwbench-perf-v1".into()));
    j.push(
        "entries",
        Json::Arr(entries.iter().map(PerfEntry::to_json).collect()),
    );
    j
}

/// Parses the committed artifact format.
pub fn from_json(text: &str) -> Result<Vec<PerfEntry>, JsonError> {
    let j = Json::parse(text)?;
    j.field("entries")?
        .as_arr()?
        .iter()
        .map(PerfEntry::from_json)
        .collect()
}

/// Event-queue churn: a sliding window of `window` pending events with
/// `total` push/pop pairs pumped through it, exercising the binary-heap
/// hot path exactly as the machine does (monotone times, FIFO ties).
fn event_queue_churn(profile: &str) -> PerfEntry {
    let (window, total) = match profile {
        "smoke" => (256usize, 400_000u64),
        _ => (256usize, 4_000_000u64),
    };
    let started = Instant::now();
    let mut q: EventQueue<u64> = EventQueue::with_capacity(window);
    for i in 0..window as u64 {
        q.push(i, i);
    }
    let mut sink = 0u64;
    for i in 0..total {
        let (t, ev) = q.pop().expect("window never empties");
        sink = sink.wrapping_add(t ^ ev);
        q.push(t + 1 + (i % 7), ev);
    }
    while let Some((t, ev)) = q.pop() {
        sink = sink.wrapping_add(t ^ ev);
    }
    std::hint::black_box(sink);
    // One push + one pop per loop iteration, plus the fill/drain tails.
    let ops = 2 * total + 2 * window as u64;
    PerfEntry::from_run(
        "event_queue_churn",
        "none",
        profile,
        ops,
        started.elapsed().as_secs_f64(),
    )
}

/// Builds the NoC contention storm machine: one packed block of
/// per-core `u32` slots, every core in a load/store ping-pong on its own
/// slot, with flit-level link contention modelled. `base` selects the
/// protocol-ladder family (MESI, MOESI, MESIF, ...).
pub(crate) fn storm_machine(
    cores: usize,
    base: BaseProtocol,
    iters_per_core: u64,
    legacy: bool,
) -> ghostwriter_core::Machine {
    let mut cfg = MachineConfig::small_base(cores, Protocol::Mesi, base);
    cfg.model_contention = true;
    let mut m = ghostwriter_core::Machine::new(cfg);
    #[cfg(feature = "legacy-threads")]
    if legacy {
        m.use_legacy_engine();
    }
    #[cfg(not(feature = "legacy-threads"))]
    let _ = legacy;
    let block = m.alloc_padded(4 * cores as u64);
    for t in 0..cores {
        let slot = block.add(4 * t as u64);
        m.add_thread(move |ctx| async move {
            for i in 0..iters_per_core as u32 {
                let v = ctx.load_u32(slot).await;
                ctx.store_u32(slot, v.wrapping_add(i)).await;
            }
            ctx.barrier().await;
        });
    }
    m
}

/// Times one storm configuration under `name`.
fn storm_kernel(
    name: &str,
    cores: usize,
    base: BaseProtocol,
    iters: u64,
    profile: &str,
    engine: &str,
) -> PerfEntry {
    let started = Instant::now();
    let run = storm_machine(cores, base, iters, engine == "legacy").run();
    let secs = started.elapsed().as_secs_f64();
    let s = &run.report.stats;
    let ops = s.loads + s.stores + s.scribbles + s.barriers;
    PerfEntry::from_run(name, engine, profile, ops, secs)
}

fn noc_contention_storm(profile: &str, engine: &str) -> PerfEntry {
    let iters = match profile {
        "smoke" => 3_000u64,
        _ => 30_000u64,
    };
    storm_kernel(
        "noc_contention_storm",
        8,
        BaseProtocol::Mesi,
        iters,
        profile,
        engine,
    )
}

/// Protocol-ladder storm: the false-sharing ping-pong on a family whose
/// forwarding path (MOESI's Owned supplier / MESIF's Forward supplier)
/// the MESI kernel never takes.
fn ladder_storm(base: BaseProtocol, profile: &str, engine: &str) -> PerfEntry {
    let iters = match profile {
        "smoke" => 2_000u64,
        _ => 20_000u64,
    };
    let name = match base {
        BaseProtocol::Moesi => "ladder_moesi",
        BaseProtocol::Mesif => "ladder_mesif",
        _ => unreachable!("only the MOESI/MESIF rungs are benchmarked"),
    };
    storm_kernel(name, 8, base, iters, profile, engine)
}

/// Larger-mesh storm: 16 cores, so routes are longer and twice as many
/// directory banks and channels are live.
fn mesh_storm_16c(profile: &str, engine: &str) -> PerfEntry {
    let iters = match profile {
        "smoke" => 1_000u64,
        _ => 10_000u64,
    };
    storm_kernel(
        "mesh_storm_16c",
        16,
        BaseProtocol::Mesi,
        iters,
        profile,
        engine,
    )
}

/// End-to-end workload throughput under the Ghostwriter protocol.
fn workload_kernel(name: &str, profile: &str, engine: &str) -> PerfEntry {
    let entry = find_benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let scale = match profile {
        "smoke" => ScaleClass::Test,
        _ => ScaleClass::Eval,
    };
    let mut w = entry.build_seeded(scale, DEFAULT_SEED);
    let cfg = MachineConfig {
        cores: 8,
        protocol: Protocol::ghostwriter(),
        ..MachineConfig::default()
    };
    let started = Instant::now();
    let out = if engine == "legacy" {
        #[cfg(feature = "legacy-threads")]
        {
            ghostwriter_workloads::execute_legacy(w.as_mut(), cfg, 8, 8)
        }
        #[cfg(not(feature = "legacy-threads"))]
        unreachable!("legacy kernels require the `legacy-threads` feature")
    } else {
        execute(w.as_mut(), cfg, 8, 8)
    };
    let secs = started.elapsed().as_secs_f64();
    let s = &out.report.stats;
    let ops = s.loads + s.stores + s.scribbles + s.barriers;
    PerfEntry::from_run(name, engine, profile, ops, secs)
}

fn engines() -> Vec<&'static str> {
    #[cfg(feature = "legacy-threads")]
    {
        vec!["resumable", "legacy"]
    }
    #[cfg(not(feature = "legacy-threads"))]
    {
        vec!["resumable"]
    }
}

/// Runs `kernel` `reps` times and keeps the fastest repetition. Wall-clock
/// benchmarks on a shared machine are one-sided noise: interference only
/// ever slows a run down, so best-of-N estimates the kernel's true cost far
/// more stably than any single run.
fn best_of(reps: u32, kernel: impl Fn() -> PerfEntry) -> PerfEntry {
    let mut best = kernel();
    for _ in 1..reps {
        let e = kernel();
        if e.ops_per_sec > best.ops_per_sec {
            best = e;
        }
    }
    best
}

/// Runs every kernel for one profile, in a fixed order, keeping the best
/// of `reps` repetitions per kernel.
pub fn run_profile_reps(profile: &str, reps: u32) -> Vec<PerfEntry> {
    let reps = reps.max(1);
    let mut entries = vec![best_of(reps, || event_queue_churn(profile))];
    for engine in engines() {
        entries.push(best_of(reps, || noc_contention_storm(profile, engine)));
        entries.push(best_of(reps, || {
            ladder_storm(BaseProtocol::Moesi, profile, engine)
        }));
        entries.push(best_of(reps, || {
            ladder_storm(BaseProtocol::Mesif, profile, engine)
        }));
        entries.push(best_of(reps, || mesh_storm_16c(profile, engine)));
        for w in ["histogram", "kmeans", "blackscholes"] {
            entries.push(best_of(reps, || workload_kernel(w, profile, engine)));
        }
    }
    entries
}

/// Single-repetition profile run (CI smoke uses this path).
pub fn run_profile(profile: &str) -> Vec<PerfEntry> {
    run_profile_reps(profile, 1)
}

/// Compares `current` against `baseline` on matching `(name, engine,
/// profile)` keys. Returns the list of regressions worse than 2x.
pub fn regressions(current: &[PerfEntry], baseline: &[PerfEntry]) -> Vec<String> {
    let mut out = Vec::new();
    for c in current {
        let Some(b) = baseline
            .iter()
            .find(|b| b.name == c.name && b.engine == c.engine && b.profile == c.profile)
        else {
            continue;
        };
        if c.ops_per_sec * 2.0 < b.ops_per_sec {
            out.push(format!(
                "{}/{}/{}: {:.0} ops/s vs baseline {:.0} ops/s ({:.1}x slower)",
                c.name,
                c.engine,
                c.profile,
                c.ops_per_sec,
                b.ops_per_sec,
                b.ops_per_sec / c.ops_per_sec.max(1e-9)
            ));
        }
    }
    out
}

/// Days-since-epoch to `YYYY-MM-DD` (proleptic Gregorian; Howard
/// Hinnant's `civil_from_days`). No date-time dependency is vendored,
/// and the history only needs day resolution.
fn civil_date(days: u64) -> String {
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// One history record: the invocation's date, settings and entries,
/// rendered as a single compact JSON line.
pub fn history_record(entries: &[PerfEntry], reps: u32, smoke: bool) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut j = Json::obj();
    j.push("date", Json::Str(civil_date(unix_secs / 86_400)));
    j.push("unix_secs", Json::U64(unix_secs));
    j.push("reps", Json::U64(u64::from(reps)));
    j.push("smoke", Json::Bool(smoke));
    j.push(
        "entries",
        Json::Arr(entries.iter().map(PerfEntry::to_json).collect()),
    );
    j.to_compact()
}

/// Appends one [`history_record`] line to `path`, creating the file
/// (and parent directory) on first use.
fn append_history(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Renders the human-readable table.
pub fn render(entries: &[PerfEntry]) -> String {
    let mut s = String::from(
        "kernel                 engine     profile       ops      wall_ms      ops/sec\n",
    );
    for e in entries {
        s.push_str(&format!(
            "{:<22} {:<10} {:<8} {:>9} {:>12.2} {:>12.0}\n",
            e.name, e.engine, e.profile, e.ops, e.wall_ms, e.ops_per_sec
        ));
    }
    s
}

/// `gwbench perf` entry point. Returns the process exit code.
pub fn main_perf(
    smoke: bool,
    out_path: &str,
    baseline: Option<&str>,
    quiet: bool,
    reps: u32,
) -> i32 {
    let mut entries = run_profile_reps("smoke", reps);
    if !smoke {
        entries.extend(run_profile_reps("full", reps));
    }

    if !quiet {
        print!("{}", render(&entries));
    }

    let mut code = 0;
    if let Some(path) = baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => match from_json(&text) {
                Ok(base) => {
                    let regs = regressions(&entries, &base);
                    for r in &regs {
                        eprintln!("gwbench perf: REGRESSION {r}");
                    }
                    if regs.is_empty() {
                        eprintln!("gwbench perf: no >2x regressions vs {path}");
                    } else {
                        code = 4;
                    }
                }
                Err(e) => {
                    eprintln!("gwbench perf: cannot parse baseline {path}: {e:?}");
                    code = 1;
                }
            },
            Err(e) => {
                eprintln!("gwbench perf: cannot read baseline {path}: {e}");
                code = 1;
            }
        }
    }

    if let Err(e) = std::fs::write(out_path, to_json(&entries).to_pretty()) {
        eprintln!("gwbench perf: cannot write {out_path}: {e}");
        return 1;
    }
    eprintln!(
        "gwbench perf: wrote {} entries to {out_path}",
        entries.len()
    );

    // The longitudinal record is best-effort: a read-only results/
    // tree must not fail the perf gate.
    match append_history(HISTORY_PATH, &history_record(&entries, reps, smoke)) {
        Ok(()) => eprintln!("gwbench perf: appended run to {HISTORY_PATH}"),
        Err(e) => eprintln!("gwbench perf: cannot append to {HISTORY_PATH}: {e}"),
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ops_per_sec: f64) -> PerfEntry {
        PerfEntry {
            name: name.into(),
            engine: "resumable".into(),
            profile: "smoke".into(),
            ops: 100,
            wall_ms: 1.0,
            ops_per_sec,
        }
    }

    #[test]
    fn json_round_trips() {
        let entries = vec![entry("a", 123.0), entry("b", 456.5)];
        let text = to_json(&entries).to_pretty();
        let back = from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "a");
        assert_eq!(back[1].ops_per_sec, 456.5);
    }

    #[test]
    fn regression_gate_is_2x_with_key_matching() {
        let base = vec![entry("a", 1000.0), entry("b", 1000.0)];
        // 2.5x slower on `a` trips; 1.8x slower on `b` does not; unknown
        // kernels are ignored.
        let cur = vec![entry("a", 400.0), entry("b", 550.0), entry("c", 1.0)];
        let regs = regressions(&cur, &base);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].starts_with("a/"), "{regs:?}");
    }

    #[test]
    fn civil_date_is_gregorian() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(19_723), "2024-01-01"); // leap year start
        assert_eq!(civil_date(19_782), "2024-02-29"); // leap day
        assert_eq!(civil_date(20_543), "2026-03-31");
    }

    #[test]
    fn history_record_is_one_parseable_json_line() {
        let line = history_record(&[entry("a", 123.0)], 3, false);
        assert!(!line.contains('\n'), "must be a single line: {line:?}");
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.field("reps").unwrap().as_u64().unwrap(), 3);
        assert_eq!(j.field("entries").unwrap().as_arr().unwrap().len(), 1);
        let date = j.field("date").unwrap().as_str().unwrap().to_string();
        assert_eq!(date.len(), 10, "{date}");
        assert!(date.starts_with("20"), "{date}");
    }

    #[test]
    fn append_history_reports_io_errors_instead_of_panicking() {
        // The longitudinal record is best-effort (main_perf only warns
        // on Err): an unwritable path must surface as Err, never panic.
        let dir = std::env::temp_dir().join(format!("gw_perf_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not_a_dir");
        std::fs::write(&blocker, "file, not directory").unwrap();
        let bad = blocker.join("bench_history.jsonl");
        assert!(append_history(bad.to_str().unwrap(), "{}").is_err());

        // And the happy path creates parents and appends line by line.
        let good = dir.join("nested/bench_history.jsonl");
        append_history(good.to_str().unwrap(), "line1").unwrap();
        append_history(good.to_str().unwrap(), "line2").unwrap();
        assert_eq!(std::fs::read_to_string(&good).unwrap(), "line1\nline2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn smoke_kernels_produce_positive_throughput() {
        let entries = run_profile("smoke");
        // queue kernel + (3 storms + ladder pair + 3 workloads) per engine.
        assert_eq!(entries.len(), 1 + 7 * engines().len());
        for e in &entries {
            assert!(e.ops > 0, "{}: no ops", e.name);
            assert!(e.ops_per_sec > 0.0, "{}: no throughput", e.name);
        }
    }
}
