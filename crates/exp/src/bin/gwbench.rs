//! `gwbench`: the single entry point for every paper experiment.
//!
//! See `ghostwriter_exp::cli` for the command reference. The old
//! per-figure binaries in `crates/bench` remain as thin wrappers around
//! the same engine.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ghostwriter_exp::cli::main_with_args(args));
}
