//! `gwbench faults` — the resilience campaign runner.
//!
//! Sweeps a fault-rate × protocol × workload grid through the timing
//! simulator with seeded fault injection ([`ghostwriter_core::fault`])
//! and renders resilience curves: output error (the workload's NRMSE /
//! MPE metric) versus fault rate, retry and resend counts, and the
//! recovered-vs-degraded split (tainted fills refetched for precise
//! data vs absorbed into the approximate dataflow). Every cell is an
//! ordinary engine run: content-addressed (the cache key embeds
//! [`FaultConfig::key`]), deduplicated, and byte-identical across
//! `--jobs` levels because the injector draws are counter-based, never
//! order-based.
//!
//! A cell that exhausts its retry budget (or hits any other typed
//! protocol error) is *recorded*, not fatal: the record carries
//! `completed = 0`, the abort cycle and the abort description, so a
//! campaign can chart where graceful degradation ends. Fault-free rate-0
//! cells anchor each curve and double as the zero-fault preservation
//! probe: their stats must match the plain (fault-unaware) runs of the
//! same cells exactly.
//!
//! The smoke-scale report is committed as a golden snapshot
//! (`tests/golden/resilience.smoke.txt`); regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test resilience_tests`.

use ghostwriter_core::config::GwConfig;
use ghostwriter_core::{FaultConfig, Protocol, RecoveryParams, Stats};
use ghostwriter_workloads::execute_faulty;

use crate::engine::Engine;
use crate::record::RunRecord;
use crate::spec::{ExperimentSpec, RunKind, RunSpec, Scale, WorkloadSpec};

/// Root seed of every campaign cell's injector. One fixed, documented
/// seed: campaign results are reproductions, not samples.
pub const CAMPAIGN_SEED: u64 = 0xFA17;

/// The fault-rate axis, permille. Every per-message class (drop,
/// duplicate, delay, corrupt) runs at the same rate, so one axis spans
/// "reliable" (0) to "hostile" (200 = 20% of every faultable message)
/// interconnects. The hostile point is where the degraded side of the
/// split becomes visible: enough fills are tainted that some land on
/// in-flight scribble misses and are absorbed rather than refetched.
pub const RATES_PERMILLE: [u16; 5] = [0, 2, 10, 50, 200];

/// Extra cycles a delayed message waits (when the delay class fires).
const DELAY_CYCLES: u64 = 64;

/// The campaign's workload roster: three Table 2 applications plus the
/// §2 naive dot product. Sobel matters specifically because it
/// *blindly* scribbles its output (no load first): a blind scribble to
/// an invalid line goes down the conventional GETX path with the
/// scribble still pending, so a tainted fill can land on an
/// error-tolerant access and be absorbed — the "degraded" side of the
/// split. Read-modify-write scribbles (bad_dot, histogram) normally
/// fill via the preceding precise load and refetch; they reach the
/// absorb path only through races where another core invalidates the
/// line between the load and the scribble.
pub const CAMPAIGN_WORKLOADS: [&str; 4] = ["histogram", "kmeans", "sobel", "bad_dot"];

/// Builds one roster entry at `scale`.
fn campaign_workload(label: &str, scale: Scale) -> WorkloadSpec {
    match label {
        "bad_dot" => WorkloadSpec::BadDot {
            seed: 0xF16,
            n: match scale {
                Scale::Eval => 8_000,
                Scale::Smoke => 512,
            },
            approximate: true,
            work_per_point: 96,
        },
        name => WorkloadSpec::registry(name, scale.class(), ghostwriter_workloads::DEFAULT_SEED),
    }
}

/// The protocol points of every curve: the precise baseline (every
/// tainted fill is quarantined and refetched), full Ghostwriter (GI
/// captures scribble misses locally, so almost no approximate fill is
/// ever in flight to taint), and the GI-ablated Ghostwriter, where
/// scribble misses go down the conventional fetch path — the point
/// where tainted fills actually land on error-tolerant accesses and
/// are absorbed rather than refetched (graceful degradation).
type ProtocolPoint = (&'static str, fn() -> Protocol);

const PROTOCOLS: [ProtocolPoint; 3] = [
    ("mesi", || Protocol::Mesi),
    ("gw", Protocol::ghostwriter),
    ("gw_nogi", || {
        Protocol::Ghostwriter(GwConfig {
            enable_gi: false,
            ..GwConfig::default()
        })
    }),
];

/// d-distance used for every campaign cell (the paper's main setting).
const CAMPAIGN_D: u8 = 4;

/// The injector configuration at one grid rate. Rate 0 is the all-off
/// default — the curve anchor that must be byte-identical to a
/// fault-unaware run.
pub fn campaign_faults(rate_permille: u16) -> FaultConfig {
    if rate_permille == 0 {
        return FaultConfig::default();
    }
    FaultConfig {
        seed: CAMPAIGN_SEED,
        drop_permille: rate_permille,
        dup_permille: rate_permille,
        delay_permille: rate_permille,
        delay_cycles: DELAY_CYCLES,
        corrupt_permille: rate_permille,
        recovery: Some(RecoveryParams::default()),
        ..FaultConfig::default()
    }
}

/// The whole campaign grid at one scale, in render order.
pub fn campaign_spec(scale: Scale) -> ExperimentSpec {
    let mut runs = Vec::new();
    for wl in CAMPAIGN_WORKLOADS {
        for (proto_name, proto) in PROTOCOLS {
            for rate in RATES_PERMILLE {
                runs.push(RunSpec {
                    id: format!("faults/{wl}/{proto_name}/r{rate}"),
                    kind: RunKind::Resilience {
                        workload: campaign_workload(wl, scale),
                        config: crate::experiments::machine(scale, proto()),
                        threads: crate::experiments::cores(scale),
                        d: CAMPAIGN_D,
                        faults: campaign_faults(rate),
                    },
                });
            }
        }
    }
    ExperimentSpec {
        experiment: "faults",
        runs,
    }
}

/// Executes one resilience cell (called from
/// [`crate::engine::execute_spec`]). Aborts are values, not panics.
pub fn run_resilience(
    workload: &WorkloadSpec,
    config: &ghostwriter_core::MachineConfig,
    threads: usize,
    d: u8,
    faults: &FaultConfig,
) -> RunRecord {
    let mut w = workload.build();
    match execute_faulty(w.as_mut(), config.clone(), threads, d, *faults) {
        Ok(out) => {
            let mut extra = vec![("completed".to_string(), 1.0)];
            extra.extend(recovery_extras(&out.report.stats));
            RunRecord {
                cycles: out.report.cycles,
                error_percent: out.error_percent,
                stats: out.report.stats,
                trace: Vec::new(),
                extra,
            }
        }
        Err(abort) => RunRecord {
            cycles: abort.cycle,
            error_percent: 0.0,
            stats: Stats::default(),
            // The abort description (cycle, last delivered message,
            // typed row error) is the cell's result — campaigns chart
            // where recovery gives out, so the "why" must be durable.
            trace: vec![abort.to_string()],
            extra: vec![("completed".to_string(), 0.0)],
        },
    }
}

/// The fault/recovery counters as named record extras. These counters
/// are deliberately excluded from the stats JSON (fault-free record
/// payloads stay byte-identical to pre-fault history), so the extras
/// are their only durable, cacheable form.
fn recovery_extras(s: &Stats) -> Vec<(String, f64)> {
    [
        ("retries", s.retries),
        ("nack_retries", s.nack_retries),
        ("stale_replies", s.stale_replies),
        ("dup_reqs_dropped", s.dup_reqs_dropped),
        ("grant_resends", s.grant_resends),
        ("conflict_nacks", s.conflict_nacks),
        ("fills_absorbed", s.corrupt_fills_absorbed),
        ("fills_refetched", s.corrupt_fills_refetched),
        ("mem_refetches", s.corrupt_mem_refetches),
        ("faults_dropped", s.faults_dropped),
        ("faults_duplicated", s.faults_duplicated),
        ("faults_delayed", s.faults_delayed),
        ("faults_corrupted", s.faults_corrupted),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v as f64))
    .collect()
}

fn extra(rec: &RunRecord, key: &str) -> f64 {
    rec.extra_value(key).unwrap_or(0.0)
}

/// Events where recovery machinery restored precise data (the
/// "recovered" side of the resilience split).
fn recovered(rec: &RunRecord) -> f64 {
    extra(rec, "retries")
        + extra(rec, "nack_retries")
        + extra(rec, "grant_resends")
        + extra(rec, "fills_refetched")
        + extra(rec, "mem_refetches")
}

/// Tainted fills absorbed into approximate data (the "degraded" side).
fn degraded(rec: &RunRecord) -> f64 {
    extra(rec, "fills_absorbed")
}

/// Renders the campaign report: one table per workload plus the curve
/// summaries.
pub fn render_campaign(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    assert_eq!(spec.runs.len(), records.len());
    let rec = |wl: &str, proto: &str, rate: u16| {
        &records[spec.index_of(&format!("faults/{wl}/{proto}/r{rate}"))]
    };
    let mut s = format!(
        "Resilience campaign: output error and recovery activity vs fault rate\n\
         (seed {CAMPAIGN_SEED:#x}; drop = dup = delay = corrupt at each rate, \
         delay +{DELAY_CYCLES} cycles, d = {CAMPAIGN_D})\n\n"
    );
    for wl in CAMPAIGN_WORKLOADS {
        s.push_str(&format!(
            "{wl}\n\
             proto  rate(permille)  done       cycles    err%  retries  resends  refetch  absorb   drop    dup  delay  corrupt\n"
        ));
        for (proto_name, _) in PROTOCOLS {
            for rate in RATES_PERMILLE {
                let r = rec(wl, proto_name, rate);
                let done = extra(r, "completed") > 0.0;
                s.push_str(&format!(
                    "{:<6} {:>14} {:<4} {:>12} {:>7.3} {:>8} {:>8} {:>8} {:>7} {:>6} {:>6} {:>6} {:>8}\n",
                    proto_name,
                    rate,
                    if done { "yes" } else { "ABRT" },
                    r.cycles,
                    r.error_percent,
                    extra(r, "retries") as u64,
                    (extra(r, "grant_resends") + extra(r, "nack_retries")) as u64,
                    (extra(r, "fills_refetched") + extra(r, "mem_refetches")) as u64,
                    degraded(r) as u64,
                    extra(r, "faults_dropped") as u64,
                    extra(r, "faults_duplicated") as u64,
                    extra(r, "faults_delayed") as u64,
                    extra(r, "faults_corrupted") as u64,
                ));
                if !done {
                    for line in &r.trace {
                        s.push_str(&format!("       ^ {line}\n"));
                    }
                }
            }
        }
        // The curves the campaign exists for: error vs rate per
        // protocol, and the recovered/degraded split at each rate.
        for (proto_name, _) in PROTOCOLS {
            let pts: Vec<String> = RATES_PERMILLE
                .iter()
                .map(|&rate| {
                    let r = rec(wl, proto_name, rate);
                    if extra(r, "completed") > 0.0 {
                        format!("{rate}:{:.3}", r.error_percent)
                    } else {
                        format!("{rate}:abort")
                    }
                })
                .collect();
            s.push_str(&format!(
                "  {proto_name} error curve (%, by rate): {}\n",
                pts.join("  ")
            ));
        }
        let split: Vec<String> = RATES_PERMILLE
            .iter()
            .map(|&rate| {
                let by_proto: Vec<String> = PROTOCOLS
                    .iter()
                    .map(|(proto_name, _)| {
                        let r = rec(wl, proto_name, rate);
                        format!(
                            "{proto_name} {}/{}",
                            recovered(r) as u64,
                            degraded(r) as u64
                        )
                    })
                    .collect();
                format!("{rate}: {}", by_proto.join(" "))
            })
            .collect();
        s.push_str(&format!(
            "  recovered/degraded (by rate): {}\n\n",
            split.join("  ")
        ));
    }
    s
}

/// `gwbench faults` entry point. Returns the process exit code.
pub fn main_faults(
    jobs: usize,
    use_cache: bool,
    scale: Scale,
    expect_cached: bool,
    quiet: bool,
) -> i32 {
    let spec = campaign_spec(scale);
    let mut engine = Engine::new(jobs);
    engine.use_cache = use_cache;
    let (records, log) = engine.run(&spec.runs);

    let report = render_campaign(&spec, &records);
    if !quiet {
        print!("{report}");
    }
    let out_dir = match scale {
        Scale::Eval => std::path::PathBuf::from("results"),
        Scale::Smoke => std::path::PathBuf::from("results/smoke"),
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("gwbench: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    let path = out_dir.join("RESILIENCE.txt");
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!("gwbench: cannot write {}: {e}", path.display());
        return 1;
    }

    let aborted = records
        .iter()
        .filter(|r| r.extra_value("completed") == Some(0.0))
        .count();
    eprintln!(
        "gwbench faults: {} cells -> {} distinct; {} cache hits, {} executed; \
         {} aborted (recorded); report: {}",
        spec.runs.len(),
        log.runs.len(),
        log.cache_hits,
        log.executed,
        aborted,
        path.display()
    );

    if expect_cached && log.executed > 0 {
        eprintln!(
            "gwbench faults: --expect-cached but {} cell(s) simulated",
            log.executed
        );
        return 3;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_rates_protocols_and_workloads() {
        let spec = campaign_spec(Scale::Smoke);
        assert_eq!(
            spec.runs.len(),
            CAMPAIGN_WORKLOADS.len() * PROTOCOLS.len() * RATES_PERMILLE.len()
        );
        // Every cell is distinct work: no two fingerprints collide.
        for (i, a) in spec.runs.iter().enumerate() {
            for b in &spec.runs[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{} vs {}", a.id, b.id);
            }
        }
    }

    #[test]
    fn rate_zero_is_the_all_off_config() {
        assert!(campaign_faults(0).is_noop());
        let hot = campaign_faults(10);
        assert!(!hot.is_noop());
        assert!(hot.recovery.is_some());
    }
}
