//! Plain-text report formatting shared by every experiment renderer.
//!
//! These mirror the helpers the old per-figure binaries used, but write
//! into a `String` so rendered reports can be both printed and written
//! to `results/*.txt` — and so renderers stay pure functions of cached
//! records (a warm sweep renders every figure without simulating).

use std::fmt::Write;

use ghostwriter_noc::MessageKind;

/// Figure header in the style shared by all reports.
pub fn banner(out: &mut String, fig: &str, caption: &str) {
    let rule = "=".repeat(64);
    let _ = writeln!(out, "{rule}");
    let _ = writeln!(out, "{fig} — {caption}");
    let _ = writeln!(out, "{rule}");
}

/// A fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Appends one row line.
pub fn push_row(out: &mut String, cells: &[String], widths: &[usize]) {
    let _ = writeln!(out, "{}", row(cells, widths));
}

/// The per-class normalized-traffic stack for one run (Fig. 8 bar).
pub fn push_traffic_stack(out: &mut String, label: &str, split: &[(MessageKind, f64)]) {
    let total: f64 = split.iter().map(|(_, v)| v).sum();
    let cols: Vec<String> = split
        .iter()
        .map(|(k, v)| format!("{}={:.3}", k.label(), v))
        .collect();
    let _ = writeln!(out, "  {label:<28} total={total:.3}  [{}]", cols.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formatting_matches_legacy() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a    bb");
    }

    #[test]
    fn banner_shape() {
        let mut s = String::new();
        banner(&mut s, "Figure 1", "cap");
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("Figure 1 — cap"));
    }
}
