//! The cached result of one run, and derived-quantity views.
//!
//! A [`RunRecord`] holds everything a renderer may need — simulated
//! cycles, output error, the full [`Stats`] block, optional message-trace
//! lines (scenario runs) and named scalar extras (the fuzzer) — and
//! nothing non-deterministic: wall-clock time lives in the sweep log,
//! not here, so a record's canonical JSON is a pure function of its run
//! spec and can be diffed, checksummed and content-addressed.

use ghostwriter_core::{Json, JsonError, Stats};
use ghostwriter_energy::{EnergyBreakdown, EnergyModel};
use ghostwriter_noc::MessageKind;

use crate::fingerprint::Fingerprint;

/// Record-schema version inside the cache file (independent of
/// [`crate::spec::SPEC_REVISION`], which versions run *semantics*).
pub const RECORD_SCHEMA: u64 = 1;

/// One run's deterministic results.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Output error vs the precise reference, percent (0 for baseline,
    /// scenario and fuzz runs).
    pub error_percent: f64,
    /// Full simulator statistics.
    pub stats: Stats,
    /// Message-trace lines (scenario runs only).
    pub trace: Vec<String>,
    /// Named scalar extras (e.g. the fuzzer's message count).
    pub extra: Vec<(String, f64)>,
}

impl RunRecord {
    /// Canonical JSON form (the cached payload).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("schema", Json::U64(RECORD_SCHEMA));
        obj.push("cycles", Json::U64(self.cycles));
        obj.push("error_percent", Json::F64(self.error_percent));
        obj.push("stats", self.stats.to_json());
        obj.push(
            "trace",
            Json::Arr(self.trace.iter().map(|l| Json::Str(l.clone())).collect()),
        );
        let mut extra = Json::obj();
        for (k, v) in &self.extra {
            extra.push(k, Json::F64(*v));
        }
        obj.push("extra", extra);
        obj
    }

    /// Strict inverse of [`RunRecord::to_json`].
    pub fn from_json(doc: &Json) -> Result<RunRecord, JsonError> {
        let schema = doc.field("schema")?.as_u64()?;
        if schema != RECORD_SCHEMA {
            return Err(JsonError {
                pos: 0,
                msg: format!("record schema {schema}, expected {RECORD_SCHEMA}"),
            });
        }
        let trace = doc
            .field("trace")?
            .as_arr()?
            .iter()
            .map(|l| l.as_str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let extra = match doc.field("extra")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(JsonError {
                    pos: 0,
                    msg: format!("extra must be an object, got {other:?}"),
                })
            }
        };
        Ok(RunRecord {
            cycles: doc.field("cycles")?.as_u64()?,
            error_percent: doc.field("error_percent")?.as_f64()?,
            stats: Stats::from_json(doc.field("stats")?)?,
            trace,
            extra,
        })
    }

    /// Canonical serialized form (what the cache stores and checksums).
    pub fn canonical_text(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Content fingerprint of the record itself (golden-stats identity:
    /// two runs agree iff their record fingerprints agree).
    pub fn result_fingerprint(&self) -> Fingerprint {
        Fingerprint::of(self.canonical_text().as_bytes())
    }

    /// Energy model evaluated over this record's events (recomputed at
    /// render time; the model is deterministic, so caching it would be
    /// redundant state).
    pub fn energy(&self) -> EnergyBreakdown {
        EnergyModel::default().evaluate(&self.stats.energy_events)
    }

    /// Named extra lookup.
    pub fn extra_value(&self, key: &str) -> Option<f64> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

impl crate::cache::CacheRecord for RunRecord {
    fn to_json(&self) -> Json {
        RunRecord::to_json(self)
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        RunRecord::from_json(doc).map_err(|e| e.to_string())
    }

    fn canonical_text(&self) -> String {
        RunRecord::canonical_text(self)
    }
}

/// One combined fingerprint over an ordered record set (the whole-sweep
/// identity the determinism suite compares across `--jobs` settings).
pub fn records_fingerprint(records: &[RunRecord]) -> Fingerprint {
    let texts: Vec<String> = records.iter().map(|r| r.canonical_text()).collect();
    Fingerprint::of_parts(texts.iter().map(|s| s.as_str()))
}

/// A baseline/Ghostwriter record pair with the paper's derived
/// quantities (the [`ghostwriter_workloads::Comparison`] equivalents,
/// reconstructed from cached records).
pub struct PairView<'a> {
    pub base: &'a RunRecord,
    pub gw: &'a RunRecord,
}

impl PairView<'_> {
    /// Fig. 7a: % of would-be S misses serviced by GS.
    pub fn gs_serviced_percent(&self) -> f64 {
        self.gw.stats.gs_service_fraction() * 100.0
    }

    /// Fig. 7b: % of would-be I misses serviced by GI.
    pub fn gi_serviced_percent(&self) -> f64 {
        self.gw.stats.gi_service_fraction() * 100.0
    }

    /// Fig. 8: traffic normalized to the baseline total.
    pub fn normalized_traffic(&self) -> f64 {
        let b = self.base.stats.traffic.total();
        if b == 0 {
            return 1.0;
        }
        self.gw.stats.traffic.total() as f64 / b as f64
    }

    /// Fig. 8 stack: per-class traffic normalized to the baseline total.
    pub fn normalized_traffic_by_class(&self) -> Vec<(MessageKind, f64)> {
        let b = self.base.stats.traffic.total().max(1) as f64;
        MessageKind::ALL
            .iter()
            .map(|&k| (k, self.gw.stats.traffic.count(k) as f64 / b))
            .collect()
    }

    /// Fig. 9: % dynamic energy saved vs the baseline.
    pub fn energy_saved_percent(&self) -> f64 {
        self.gw.energy().percent_saved_vs(&self.base.energy())
    }

    /// Fig. 10: % speedup over the baseline.
    pub fn speedup_percent(&self) -> f64 {
        if self.gw.cycles == 0 {
            return 0.0;
        }
        (self.base.cycles as f64 / self.gw.cycles as f64 - 1.0) * 100.0
    }

    /// Fig. 11: the Ghostwriter run's output error, percent.
    pub fn output_error_percent(&self) -> f64 {
        self.gw.error_percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip_with_trace_and_extras() {
        let mut r = RunRecord {
            cycles: u64::MAX,
            error_percent: 0.125,
            ..Default::default()
        };
        r.stats.loads = 7;
        r.trace = vec!["cycle 1 GETS".into(), "line \"quoted\"".into()];
        r.extra = vec![("messages".into(), 123.0)];
        let text = r.canonical_text();
        let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.canonical_text(), text);
        assert_eq!(back.result_fingerprint(), r.result_fingerprint());
        assert_eq!(back.extra_value("messages"), Some(123.0));
        assert_eq!(back.trace.len(), 2);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut doc = RunRecord::default().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::U64(99);
        }
        assert!(RunRecord::from_json(&doc).is_err());
    }

    #[test]
    fn pair_view_matches_stats_math() {
        let mut base = RunRecord {
            cycles: 2000,
            ..Default::default()
        };
        base.stats.energy_events.l1_reads = 100;
        let mut gw = RunRecord {
            cycles: 1600,
            ..Default::default()
        };
        gw.stats.energy_events.l1_reads = 50;
        let pair = PairView {
            base: &base,
            gw: &gw,
        };
        assert!((pair.speedup_percent() - 25.0).abs() < 1e-9);
        assert!(pair.energy_saved_percent() > 0.0);
        assert_eq!(pair.normalized_traffic(), 1.0);
    }

    #[test]
    fn records_fingerprint_is_order_sensitive() {
        let a = RunRecord {
            cycles: 1,
            ..Default::default()
        };
        let b = RunRecord {
            cycles: 2,
            ..Default::default()
        };
        assert_ne!(
            records_fingerprint(&[a.clone(), b.clone()]),
            records_fingerprint(&[b, a])
        );
    }
}
