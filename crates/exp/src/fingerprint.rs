//! 128-bit FNV-1a fingerprints for content-addressed result caching.
//!
//! A run's identity is a canonical key string (configuration + workload
//! id + input seed + spec revision); the fingerprint is FNV-1a over
//! those bytes at 128-bit width, which is collision-safe for the
//! O(10³)-entry caches this engine manages and — unlike `std`'s
//! `DefaultHasher` — stable across Rust versions and processes, a hard
//! requirement for an on-disk cache.

/// FNV-1a at 128-bit width (offset basis / prime from the FNV spec).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprints a byte string.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(h)
    }

    /// Fingerprints a sequence of strings with unambiguous framing
    /// (each part is preceded by its length, so `["ab","c"]` and
    /// `["a","bc"]` differ).
    pub fn of_parts<'a>(parts: impl IntoIterator<Item = &'a str>) -> Fingerprint {
        let mut h = FNV128_OFFSET;
        for part in parts {
            for &b in part.len().to_le_bytes().iter().chain(part.as_bytes()) {
                h ^= b as u128;
                h = h.wrapping_mul(FNV128_PRIME);
            }
        }
        Fingerprint(h)
    }

    /// 32-hex-digit form (cache file names, golden snapshots).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Fingerprint::hex`] form.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// 64-bit FNV-1a, used for the cheap in-file corruption checksum (the
/// 128-bit variant is reserved for identity).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // 64-bit reference vectors from the FNV spec.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        // 128-bit empty input must be the offset basis.
        assert_eq!(Fingerprint::of(b"").0, FNV128_OFFSET);
    }

    #[test]
    fn hex_round_trip() {
        let f = Fingerprint::of(b"ghostwriter");
        assert_eq!(Fingerprint::from_hex(&f.hex()), Some(f));
        assert_eq!(f.hex().len(), 32);
        assert!(Fingerprint::from_hex("xyz").is_none());
    }

    #[test]
    fn part_framing_is_unambiguous() {
        assert_ne!(
            Fingerprint::of_parts(["ab", "c"]),
            Fingerprint::of_parts(["a", "bc"])
        );
        assert_ne!(
            Fingerprint::of_parts(["a", ""]),
            Fingerprint::of_parts(["a"])
        );
        assert_eq!(
            Fingerprint::of_parts(["a", "b"]),
            Fingerprint::of_parts(["a", "b"])
        );
    }
}
