//! `gwbench profile` — the in-simulator cycle-attribution report.
//!
//! Runs a small set of representative kernels with the engine's
//! profiler enabled ([`ghostwriter_core::Machine::enable_profiling`])
//! and emits, per kernel, a per-phase attribution table ranked by
//! estimated wall time, plus one machine-readable JSON artifact for all
//! kernels. The profiler charges every simulated cycle to the phase
//! whose event advanced the clock, so each kernel's per-phase cycles
//! sum to *exactly* its simulated cycle count — the subcommand verifies
//! this reconciliation and exits non-zero if it ever fails.
//!
//! With `--overhead-check` the storm kernel is additionally run withOUT
//! profiling and its stats JSON compared byte-for-byte against the
//! profiled run's, proving the profiler observes without perturbing the
//! simulation; the profiled run's wall time is also gated against the
//! unprofiled run's (a loose 3x bound, CI noise included).

use std::time::Instant;

use ghostwriter_core::{BaseProtocol, Json, MachineConfig, Phase, Profile, Protocol, ALL_PHASES};
use ghostwriter_workloads::{find_benchmark, ScaleClass, DEFAULT_SEED};

/// Default artifact path (under `results/`, not committed).
pub const DEFAULT_OUT: &str = "results/profile.json";

/// Default phase-share snapshot path (repo root, committed). Regenerate
/// with `UPDATE_GOLDEN=1 gwbench profile --phases`.
pub const DEFAULT_PHASES: &str = "PROFILE_phases.json";

/// Headroom added to each measured share when a snapshot is written:
/// the committed bound is `measured + PHASE_SLACK_PCT` percentage
/// points. Cycle shares are deterministic for a given binary, so the
/// slack only absorbs *legitimate* drift from future changes — a phase
/// silently re-bloating past it fails the gate.
pub const PHASE_SLACK_PCT: f64 = 5.0;

/// One profiled kernel run.
pub struct ProfiledKernel {
    /// Kernel name.
    pub name: String,
    /// `smoke` or `full`.
    pub scale: String,
    /// Simulated cycles from the report.
    pub cycles: u64,
    /// Wall-clock milliseconds of the profiled run.
    pub wall_ms: f64,
    /// The attribution report.
    pub profile: Profile,
}

impl ProfiledKernel {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("name", Json::Str(self.name.clone()));
        j.push("scale", Json::Str(self.scale.clone()));
        j.push("cycles", Json::U64(self.cycles));
        j.push("wall_ms", Json::F64(self.wall_ms));
        j.push("attribution", self.profile.to_json());
        j
    }
}

impl ProfiledKernel {
    /// Percentage of this kernel's attributed cycles charged to `p`.
    /// Cycle attribution is deterministic (unlike sampled wall time),
    /// which is what makes the `--phases` gate reproducible across
    /// machines.
    pub fn cycle_share(&self, p: Phase) -> f64 {
        let total = self.profile.attributed_cycles();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.profile.phases[p as usize].cycles as f64 / total as f64
    }
}

/// Serializes the per-kernel phase-share bounds snapshot: for every
/// kernel and phase, the measured cycle share plus [`PHASE_SLACK_PCT`]
/// points of headroom.
pub fn phases_snapshot(kernels: &[ProfiledKernel]) -> Json {
    let mut j = Json::obj();
    j.push("format", Json::Str("gwbench-phases-v1".into()));
    j.push("slack_pct", Json::F64(PHASE_SLACK_PCT));
    let mut arr = Vec::new();
    for k in kernels {
        let mut kj = Json::obj();
        kj.push("name", Json::Str(k.name.clone()));
        kj.push("scale", Json::Str(k.scale.clone()));
        let mut bounds = Vec::new();
        for p in ALL_PHASES {
            let mut bj = Json::obj();
            bj.push("phase", Json::Str(p.name().into()));
            // Two decimals keep the file diff-stable. No 100% cap:
            // routing is an overlap metric (its latency cycles are
            // charged to the delivery phases too), so its share may
            // legitimately exceed 100.
            let bound = k.cycle_share(p) + PHASE_SLACK_PCT;
            bj.push("max_share_pct", Json::F64((bound * 100.0).round() / 100.0));
            bounds.push(bj);
        }
        kj.push("bounds", Json::Arr(bounds));
        arr.push(kj);
    }
    j.push("kernels", Json::Arr(arr));
    j
}

/// Checks measured cycle shares against the committed snapshot at
/// `path`. Returns the list of violations (empty = pass); `Err` means
/// the snapshot could not be read or parsed, or covers a different
/// scale than this run.
pub fn check_phases(kernels: &[ProfiledKernel], path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
    let j = Json::parse(&text).map_err(|e| format!("cannot parse snapshot {path}: {e:?}"))?;
    let snap_kernels = j
        .field("kernels")
        .and_then(|k| k.as_arr())
        .map_err(|e| format!("malformed snapshot {path}: {e:?}"))?;
    let mut violations = Vec::new();
    for sk in snap_kernels {
        let mut parse = || -> Result<(), ghostwriter_core::JsonError> {
            let name = sk.field("name")?.as_str()?;
            let scale = sk.field("scale")?.as_str()?;
            let Some(k) = kernels.iter().find(|k| k.name == name && k.scale == scale) else {
                // Scale mismatch (e.g. a full-scale snapshot checked on
                // a --smoke run) is a configuration error, not a pass.
                violations.push(format!(
                    "{name}/{scale}: present in snapshot but not profiled this run"
                ));
                return Ok(());
            };
            for b in sk.field("bounds")?.as_arr()? {
                let phase_name = b.field("phase")?.as_str()?;
                let bound = b.field("max_share_pct")?.as_f64()?;
                let Some(p) = ALL_PHASES.iter().find(|p| p.name() == phase_name) else {
                    violations.push(format!("{name}/{scale}: unknown phase `{phase_name}`"));
                    continue;
                };
                let share = k.cycle_share(*p);
                if share > bound {
                    violations.push(format!(
                        "{name}/{scale}: {phase_name} cycle share {share:.2}% exceeds bound {bound:.2}%"
                    ));
                }
            }
            Ok(())
        };
        parse().map_err(|e| format!("malformed snapshot {path}: {e:?}"))?;
    }
    Ok(violations)
}

/// Serializes a run to the artifact format.
pub fn to_json(kernels: &[ProfiledKernel]) -> Json {
    let mut j = Json::obj();
    j.push("format", Json::Str("gwbench-profile-v1".into()));
    j.push(
        "kernels",
        Json::Arr(kernels.iter().map(ProfiledKernel::to_json).collect()),
    );
    j
}

/// Runs `m` with profiling enabled and packages the attribution.
fn profiled_run(name: &str, scale: &str, mut m: ghostwriter_core::Machine) -> ProfiledKernel {
    m.enable_profiling();
    let started = Instant::now();
    let run = m.run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    ProfiledKernel {
        name: name.into(),
        scale: scale.into(),
        cycles: run.report.cycles,
        wall_ms,
        profile: run.profile.expect("profiling was enabled"),
    }
}

/// The storm machine at profile scale (shared with `gwbench perf`).
fn storm(scale: &str) -> ghostwriter_core::Machine {
    let iters = if scale == "smoke" { 3_000 } else { 30_000 };
    crate::perf::storm_machine(8, BaseProtocol::Mesi, iters, false)
}

/// A registry workload built onto a machine we keep control of, so
/// profiling can be switched on before the run.
fn workload_machine(name: &str, scale: &str) -> ghostwriter_core::Machine {
    let entry = find_benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let class = if scale == "smoke" {
        ScaleClass::Test
    } else {
        ScaleClass::Eval
    };
    let mut w = entry.build_seeded(class, DEFAULT_SEED);
    let cfg = MachineConfig {
        cores: 8,
        protocol: Protocol::ghostwriter(),
        ..MachineConfig::default()
    };
    let mut m = ghostwriter_core::Machine::new(cfg);
    w.build(&mut m, 8, 8);
    m
}

/// Profiles every kernel at one scale.
pub fn run_scale(scale: &str) -> Vec<ProfiledKernel> {
    let mut out = vec![profiled_run("noc_contention_storm", scale, storm(scale))];
    for w in ["histogram", "kmeans", "blackscholes"] {
        out.push(profiled_run(w, scale, workload_machine(w, scale)));
    }
    out
}

/// Renders the ranked per-phase table for one kernel.
pub fn render(k: &ProfiledKernel) -> String {
    let mut ranked: Vec<Phase> = ALL_PHASES.to_vec();
    ranked.sort_by_key(|p| std::cmp::Reverse(k.profile.phases[*p as usize].est_wall_ns()));
    let total_wall: u64 = ranked
        .iter()
        .map(|p| k.profile.phases[*p as usize].est_wall_ns())
        .sum();
    let mut s = format!(
        "{} ({}): {} cycles, {:.1} ms wall\n\
         phase          events        cycles    est_wall_ms  wall%\n",
        k.name, k.scale, k.cycles, k.wall_ms
    );
    for p in ranked {
        let c = &k.profile.phases[p as usize];
        let pct = if total_wall == 0 {
            0.0
        } else {
            100.0 * c.est_wall_ns() as f64 / total_wall as f64
        };
        s.push_str(&format!(
            "{:<12} {:>9} {:>13} {:>14.2} {:>6.1}\n",
            p.name(),
            c.events,
            c.cycles,
            c.est_wall_ns() as f64 / 1e6,
            pct
        ));
    }
    s.push_str(&format!(
        "attributed {} / simulated {} cycles; drain: {} cycles / {} events\n",
        k.profile.attributed_cycles(),
        k.cycles,
        k.profile.drain_cycles,
        k.profile.drain_events
    ));
    s
}

/// Runs the storm twice — profiler off, then on — and checks that the
/// stats JSON is byte-identical and the profiled run is not absurdly
/// slower. Returns an error description on failure.
fn overhead_check(scale: &str) -> Result<String, String> {
    let started = Instant::now();
    let off = storm(scale).run();
    let off_secs = started.elapsed().as_secs_f64();

    let mut m = storm(scale);
    m.enable_profiling();
    let started = Instant::now();
    let on = m.run();
    let on_secs = started.elapsed().as_secs_f64();

    let off_stats = off.report.stats.to_json().to_pretty();
    let on_stats = on.report.stats.to_json().to_pretty();
    if off_stats != on_stats {
        return Err("stats JSON differs between profiler-off and profiler-on runs".into());
    }
    if off.report.cycles != on.report.cycles {
        return Err(format!(
            "cycle count differs: {} off vs {} on",
            off.report.cycles, on.report.cycles
        ));
    }
    // Loose gate: sampled spans should keep the profiled run within a
    // small factor of the plain run even on a noisy CI box.
    if on_secs > off_secs * 3.0 + 0.05 {
        return Err(format!(
            "profiled run too slow: {on_secs:.3}s vs {off_secs:.3}s unprofiled"
        ));
    }
    Ok(format!(
        "overhead check: stats identical, {} cycles both runs; wall {:.3}s off vs {:.3}s on",
        off.report.cycles, off_secs, on_secs
    ))
}

/// `gwbench profile` entry point. Returns the process exit code.
pub fn main_profile(
    smoke: bool,
    out_path: &str,
    quiet: bool,
    check_overhead: bool,
    phases: Option<&str>,
) -> i32 {
    let scale = if smoke { "smoke" } else { "full" };
    let kernels = run_scale(scale);

    let mut code = 0;
    for k in &kernels {
        if !quiet {
            print!("{}", render(k));
            println!();
        }
        if k.profile.attributed_cycles() != k.cycles {
            eprintln!(
                "gwbench profile: RECONCILIATION FAILURE {}: attributed {} != simulated {}",
                k.name,
                k.profile.attributed_cycles(),
                k.cycles
            );
            code = 4;
        }
    }

    if check_overhead {
        match overhead_check(scale) {
            Ok(msg) => eprintln!("gwbench profile: {msg}"),
            Err(e) => {
                eprintln!("gwbench profile: OVERHEAD CHECK FAILED: {e}");
                code = 4;
            }
        }
    }

    if let Some(snap_path) = phases {
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            if let Err(e) = std::fs::write(snap_path, phases_snapshot(&kernels).to_pretty()) {
                eprintln!("gwbench profile: cannot write {snap_path}: {e}");
                return 1;
            }
            eprintln!("gwbench profile: regenerated phase-share snapshot {snap_path}");
        } else {
            match check_phases(&kernels, snap_path) {
                Ok(violations) if violations.is_empty() => {
                    eprintln!("gwbench profile: phase shares within {snap_path} bounds");
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("gwbench profile: PHASE SHARE EXCEEDED {v}");
                    }
                    eprintln!(
                        "gwbench profile: a phase re-bloated past its committed bound; \
                         if intentional, regen with UPDATE_GOLDEN=1 gwbench profile --phases"
                    );
                    code = 4;
                }
                Err(e) => {
                    eprintln!("gwbench profile: {e}");
                    return 1;
                }
            }
        }
    }

    if let Some(parent) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(out_path, to_json(&kernels).to_pretty()) {
        eprintln!("gwbench profile: cannot write {out_path}: {e}");
        return 1;
    }
    eprintln!(
        "gwbench profile: wrote {} kernels to {out_path}",
        kernels.len()
    );
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_attribution_reconciles_and_serializes() {
        let k = profiled_run("storm", "smoke", storm("smoke"));
        assert_eq!(k.profile.attributed_cycles(), k.cycles);
        let text = to_json(&[k]).to_pretty();
        let back = Json::parse(&text).expect("artifact parses");
        let kernels = back.field("kernels").unwrap().as_arr().unwrap();
        assert_eq!(kernels.len(), 1);
        assert_eq!(
            kernels[0].field("cycles").unwrap().as_u64().unwrap(),
            kernels[0]
                .field("attribution")
                .unwrap()
                .field("attributed_cycles")
                .unwrap()
                .as_u64()
                .unwrap()
        );
    }

    #[test]
    fn overhead_check_passes_on_the_smoke_storm() {
        let msg = overhead_check("smoke").expect("profiler must not perturb the simulation");
        assert!(msg.contains("stats identical"), "{msg}");
    }

    #[test]
    fn phase_snapshot_round_trips_and_gates() {
        let k = profiled_run("storm", "smoke", storm("smoke"));
        let dir = std::env::temp_dir().join("gw_phases_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phases.json");
        let path = path.to_str().unwrap();

        // A snapshot taken from this very run passes with slack to spare.
        std::fs::write(path, phases_snapshot(std::slice::from_ref(&k)).to_pretty()).unwrap();
        assert_eq!(
            check_phases(std::slice::from_ref(&k), path).unwrap(),
            Vec::<String>::new()
        );

        // Tighten core_step's bound below its measured share: violation.
        let share = k.cycle_share(Phase::CoreStep);
        assert!(share > 1.0, "storm must spend cycles in core_step");
        let text = std::fs::read_to_string(path).unwrap();
        let mut j = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut j {
            let Json::Arr(kernels) =
                &mut fields.iter_mut().find(|(k, _)| k == "kernels").unwrap().1
            else {
                panic!("kernels not an array")
            };
            let Json::Obj(kf) = &mut kernels[0] else {
                panic!()
            };
            let Json::Arr(bounds) = &mut kf.iter_mut().find(|(k, _)| k == "bounds").unwrap().1
            else {
                panic!()
            };
            for b in bounds {
                let Json::Obj(bf) = b else { panic!() };
                if matches!(&bf.iter().find(|(k, _)| k == "phase").unwrap().1,
                            Json::Str(s) if s == "core_step")
                {
                    bf.iter_mut().find(|(k, _)| k == "max_share_pct").unwrap().1 =
                        Json::F64(share - 1.0);
                }
            }
        }
        std::fs::write(path, j.to_pretty()).unwrap();
        let violations = check_phases(std::slice::from_ref(&k), path).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("core_step"), "{violations:?}");

        // A kernel in the snapshot that was not profiled is flagged too
        // (catches scale mismatches in CI).
        let missing = check_phases(&[], path).unwrap();
        assert!(!missing.is_empty());
    }

    #[test]
    fn render_mentions_every_phase() {
        let k = profiled_run("storm", "smoke", storm("smoke"));
        let table = render(&k);
        for p in ALL_PHASES {
            assert!(table.contains(p.name()), "missing {}", p.name());
        }
    }
}
