//! The §2 scripted sharing-pattern scenarios (Figs. 4 and 5).
//!
//! These are not workloads — they are two hand-written thread programs
//! whose *message traces* are the figure. The builders live here (moved
//! out of the old `fig04_migratory`/`fig05_producer_consumer` binaries)
//! so the engine can run them as cached cells: the formatted trace lines
//! are deterministic and stored in the [`RunRecord`], which is what lets
//! a warm `repro-all` render both figures without a single simulation.

use ghostwriter_core::{Machine, MachineConfig, Protocol};

use crate::record::RunRecord;
use crate::spec::Scenario;

/// Runs one scenario under `protocol` and captures stats + trace.
pub fn run_scenario(scenario: Scenario, protocol: Protocol) -> RunRecord {
    match scenario {
        Scenario::Fig04Migratory => migratory(protocol),
        Scenario::Fig05ProducerConsumer => producer_consumer(protocol),
    }
}

/// Fig. 4: two cores alternately load and store/scribble different
/// offsets of one block; Ghostwriter's GS removes the UPGRADE round.
fn migratory(protocol: Protocol) -> RunRecord {
    let mut m = Machine::new(MachineConfig {
        cores: 2,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    let rounds = 4u32;
    // Core 0: epoch 0 store to offset 0, later loads (Fig. 4 epochs).
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.store_u32(block, r).await; // conventional store, offset 0
            ctx.barrier().await;
            ctx.barrier().await;
            let _ = ctx.load_u32(block).await; // re-read own offset
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    // Core 1: loads offset 1, then scribbles a similar value to it.
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await;
            ctx.scribble_u32(block.add(4), v + (r & 1)).await;
            ctx.barrier().await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    let run = m.run();
    let trace = run
        .trace
        .iter()
        .map(|t| {
            format!(
                "cycle {:>5}  {:<10} {:?} -> {:?}  {:?}",
                t.cycle, t.name, t.src, t.dst, t.block
            )
        })
        .collect();
    RunRecord {
        cycles: run.report.cycles,
        error_percent: 0.0,
        stats: run.report.stats.clone(),
        trace,
        extra: trace_message_counts(&run.trace),
    }
}

/// Fig. 5: core 0 produces, core 2 consumes, core 1 becomes the next
/// producer; under Ghostwriter its scribble enters GI without a GETX.
fn producer_consumer(protocol: Protocol) -> RunRecord {
    let mut m = Machine::new(MachineConfig {
        cores: 3,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    let rounds = 4u32;
    // Core 0: first producer (conventional store to offset 0).
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.store_u32(block, 100 + r).await;
            ctx.barrier().await; // epoch 0 -> 1
            ctx.barrier().await; // epoch 1 -> 2
        }
        ctx.approx_end().await;
    });
    // Core 1: next producer — holds a stale copy, scribbles offset 1.
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        // Warm core 1's cache so its copy exists (tag present) and is
        // then invalidated by core 0's store.
        let _ = ctx.load_u32(block.add(4)).await;
        for r in 0..rounds {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await;
            ctx.scribble_u32(block.add(4), v + (r & 1)).await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    // Core 2: consumer — reads offset 0 every epoch.
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for _ in 0..rounds {
            ctx.barrier().await;
            let _ = ctx.load_u32(block).await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    let run = m.run();
    let trace = run
        .trace
        .iter()
        .map(|t| {
            format!(
                "cycle {:>5}  {:<10} {:?} -> {:?}",
                t.cycle, t.name, t.src, t.dst
            )
        })
        .collect();
    RunRecord {
        cycles: run.report.cycles,
        error_percent: 0.0,
        stats: run.report.stats.clone(),
        trace,
        extra: trace_message_counts(&run.trace),
    }
}

/// The figures' headline numbers: exclusive requests (GETX/UPGRADE) as
/// counted on the wire-name trace, matching what the original binaries
/// printed.
fn trace_message_counts(trace: &[ghostwriter_core::machine::TraceEntry]) -> Vec<(String, f64)> {
    let getx = trace
        .iter()
        .filter(|t| t.name == "GETX" || t.name == "UPGRADE")
        .count() as f64;
    vec![("exclusive_requests".into(), getx)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        for s in [Scenario::Fig04Migratory, Scenario::Fig05ProducerConsumer] {
            let a = run_scenario(s, Protocol::ghostwriter());
            let b = run_scenario(s, Protocol::ghostwriter());
            assert_eq!(a.result_fingerprint(), b.result_fingerprint(), "{s:?}");
            assert!(!a.trace.is_empty());
        }
    }

    #[test]
    fn ghostwriter_reduces_exclusive_requests() {
        for s in [Scenario::Fig04Migratory, Scenario::Fig05ProducerConsumer] {
            let mesi = run_scenario(s, Protocol::Mesi);
            let gw = run_scenario(s, Protocol::ghostwriter());
            assert!(
                gw.extra_value("exclusive_requests") < mesi.extra_value("exclusive_requests"),
                "{s:?}: GS/GI must remove GETX/UPGRADE rounds"
            );
        }
    }
}
