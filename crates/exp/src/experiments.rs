//! The experiment registry: every figure, table and ablation of the
//! paper as a declarative run matrix plus a pure renderer.
//!
//! Each [`Experiment`] contributes (1) a `spec` builder producing the
//! exact grid of [`RunSpec`] cells the report needs at a given
//! [`Scale`], and (2) a `render` function that formats the report from
//! the cells' cached [`RunRecord`]s — renderers never simulate, so a
//! warm cache reproduces every report instantly. Because cell identity
//! is content-addressed (see [`crate::spec`]), experiments that declare
//! overlapping grids share runs: the Fig. 7–11 reports and `repro_all`
//! all declare the same evaluation sweep, every ablation reuses the
//! per-application MESI baselines, and `autotune`'s d = 4/8 ladder
//! rungs are the evaluation sweep's Ghostwriter cells.

use std::fmt::Write as _;

use ghostwriter_core::config::{GiStorePolicy, GwConfig};
use ghostwriter_core::{BaseProtocol, MachineConfig, Protocol, ScribePolicy};
use ghostwriter_noc::Mesh;
use ghostwriter_workloads::{paper_benchmarks, Suite, DEFAULT_SEED};

use crate::record::{PairView, RunRecord};
use crate::render::{banner, push_row, push_traffic_stack};
use crate::spec::{ExperimentSpec, RunKind, RunSpec, Scale, Scenario, WorkloadSpec};

/// One registered experiment.
pub struct Experiment {
    /// Registry name (`gwbench run <name>`), e.g. `fig07`.
    pub name: &'static str,
    /// One-line description for `gwbench list`.
    pub title: &'static str,
    /// Report filename under `results/`.
    pub output: &'static str,
    spec_fn: fn(Scale) -> Vec<RunSpec>,
    render_fn: fn(&ExperimentSpec, &[RunRecord]) -> String,
}

impl Experiment {
    /// The run matrix at `scale`.
    pub fn spec(&self, scale: Scale) -> ExperimentSpec {
        ExperimentSpec {
            experiment: self.name,
            runs: (self.spec_fn)(scale),
        }
    }

    /// Formats the report from the spec's records (`records[i]` is the
    /// result of `spec.runs[i]`).
    pub fn render(&self, spec: &ExperimentSpec, records: &[RunRecord]) -> String {
        assert_eq!(
            spec.runs.len(),
            records.len(),
            "{}: record mismatch",
            self.name
        );
        (self.render_fn)(spec, records)
    }
}

/// The paper's Table 2 applications, in roster order.
pub const PAPER_APPS: [&str; 6] = [
    "histogram",
    "linear_regression",
    "pca",
    "blackscholes",
    "inversek2j",
    "jpeg",
];

/// The beyond-Table-2 extension applications.
pub const EXTENDED_APPS: [&str; 2] = ["kmeans", "sobel"];

/// The two applications with runtime false sharing (ablation targets).
const FS_APPS: [&str; 2] = ["linear_regression", "jpeg"];

/// The paper's two evaluation d-distances.
pub const EVAL_DISTANCES: [u8; 2] = [4, 8];

/// The evaluation machine at a given scale (paper Table 1 at `Eval`; a
/// 4-core small machine for smoke/CI runs).
pub fn machine(scale: Scale, protocol: Protocol) -> MachineConfig {
    match scale {
        Scale::Eval => MachineConfig {
            cores: 24,
            protocol,
            ..MachineConfig::default()
        },
        Scale::Smoke => MachineConfig::small(4, protocol),
    }
}

/// Evaluation core/thread count at a given scale.
pub fn cores(scale: Scale) -> usize {
    match scale {
        Scale::Eval => 24,
        Scale::Smoke => 4,
    }
}

fn registry_wl(app: &str, scale: Scale) -> WorkloadSpec {
    WorkloadSpec::registry(app, scale.class(), DEFAULT_SEED)
}

fn workload_run(
    id: String,
    workload: WorkloadSpec,
    config: MachineConfig,
    threads: usize,
    d: u8,
) -> RunSpec {
    RunSpec {
        id,
        kind: RunKind::Workload {
            workload,
            config,
            threads,
            d,
        },
    }
}

/// The canonical MESI baseline cell for one registry application.
///
/// Baselines are keyed at d = 0: the MESI protocol ignores the
/// d-distance entirely (scribbles demote to stores before the comparator
/// is consulted), so one cached baseline serves every d the Ghostwriter
/// side sweeps — and doubles as the Fig. 2 profiling run.
fn base_run(app: &str, scale: Scale) -> RunSpec {
    workload_run(
        format!("{app}/base"),
        registry_wl(app, scale),
        machine(scale, Protocol::Mesi),
        cores(scale),
        0,
    )
}

/// One Ghostwriter cell for a registry application at distance `d`.
fn gw_run(app: &str, scale: Scale, d: u8, protocol: Protocol, tag: &str) -> RunSpec {
    workload_run(
        format!("{app}/{tag}"),
        registry_wl(app, scale),
        machine(scale, protocol),
        cores(scale),
        d,
    )
}

/// The shared Figs. 7–11 evaluation sweep: every Table 2 application at
/// every evaluation d-distance, plus one baseline per application.
fn eval_suite(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in PAPER_APPS {
        runs.push(base_run(app, scale));
        for d in EVAL_DISTANCES {
            runs.push(gw_run(
                app,
                scale,
                d,
                Protocol::ghostwriter(),
                &format!("d{d}"),
            ));
        }
    }
    runs
}

/// Looks the `(app, tag)` pair view up in an eval-suite-shaped record
/// set.
fn pair<'a>(spec: &ExperimentSpec, records: &'a [RunRecord], app: &str, tag: &str) -> PairView<'a> {
    PairView {
        base: &records[spec.index_of(&format!("{app}/base"))],
        gw: &records[spec.index_of(&format!("{app}/{tag}"))],
    }
}

/// The metric label for one Table 2 application.
fn metric_label(app: &str) -> &'static str {
    paper_benchmarks()
        .iter()
        .find(|e| e.name == app)
        .map(|e| e.metric.label())
        .unwrap_or("?")
}

// ---------------------------------------------------------------------
// Fig. 1: dot-product scaling under MESI.

fn fig01_threads(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Eval => vec![1, 2, 4, 8, 16, 24],
        Scale::Smoke => vec![1, 2, 4],
    }
}

fn fig01_n(scale: Scale) -> usize {
    match scale {
        Scale::Eval => 8_000,
        Scale::Smoke => 512,
    }
}

fn fig01_spec(scale: Scale) -> Vec<RunSpec> {
    let n = fig01_n(scale);
    let mut runs = Vec::new();
    for threads in fig01_threads(scale) {
        let cfg = MachineConfig {
            cores: threads.max(1),
            protocol: Protocol::Mesi,
            ..MachineConfig::default()
        };
        runs.push(workload_run(
            format!("bad/t{threads}"),
            WorkloadSpec::BadDot {
                seed: 1,
                n,
                approximate: false,
                work_per_point: 1,
            },
            cfg.clone(),
            threads,
            0,
        ));
        runs.push(workload_run(
            format!("good/t{threads}"),
            WorkloadSpec::GoodDot { seed: 1, n },
            cfg,
            threads,
            0,
        ));
    }
    runs
}

fn fig01_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 1",
        "dot-product speedup vs thread count (MESI baseline)",
    );
    let widths = [8usize, 14, 14];
    push_row(
        &mut out,
        &[
            "threads".into(),
            "naive (L.1)".into(),
            "private (L.2)".into(),
        ],
        &widths,
    );
    let cycles = |id: &str| records[spec.index_of(id)].cycles;
    let base_bad = cycles("bad/t1");
    let base_good = cycles("good/t1");
    let threads: Vec<usize> = spec
        .runs
        .iter()
        .filter_map(|r| r.id.strip_prefix("bad/t").and_then(|t| t.parse().ok()))
        .collect();
    for t in threads {
        push_row(
            &mut out,
            &[
                t.to_string(),
                format!(
                    "{:.2}x",
                    base_bad as f64 / cycles(&format!("bad/t{t}")) as f64
                ),
                format!(
                    "{:.2}x",
                    base_good as f64 / cycles(&format!("good/t{t}")) as f64
                ),
            ],
            &widths,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper shape: the naive version stops scaling (or slows down)"
    );
    let _ = writeln!(
        out,
        "with more threads while the privatized version scales."
    );
    out
}

// ---------------------------------------------------------------------
// Fig. 2: value-similarity CDF per application.

fn fig02_spec(scale: Scale) -> Vec<RunSpec> {
    PAPER_APPS.iter().map(|app| base_run(app, scale)).collect()
}

fn fig02_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 2",
        "cumulative d-distance distribution of overwritten store values",
    );
    let ds = [0u32, 1, 2, 4, 8, 12, 16, 24, 32];
    let mut header = vec!["app".to_string()];
    header.extend(ds.iter().map(|d| format!("<={d}")));
    let widths: Vec<usize> = std::iter::once(18usize)
        .chain(ds.iter().map(|_| 7))
        .collect();
    for suite in [Suite::AxBench, Suite::Phoenix] {
        let _ = writeln!(out, "\n[{}]", suite.label());
        push_row(&mut out, &header, &widths);
        for entry in paper_benchmarks().iter().filter(|e| e.suite == suite) {
            let hist = &records[spec.index_of(&format!("{}/base", entry.name))]
                .stats
                .similarity;
            let mut cells = vec![entry.name.to_string()];
            cells.extend(
                ds.iter()
                    .map(|&d| format!("{:.3}", hist.cumulative_fraction(d))),
            );
            push_row(&mut out, &cells, &widths);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Paper shape: a sizeable fraction of stores are 0-distance"
    );
    let _ = writeln!(out, "(silent) and the curves rise steeply through d=4..8.");
    out
}

// ---------------------------------------------------------------------
// Figs. 4 and 5: scripted sharing-pattern traces.

fn scenario_spec(scenario: Scenario) -> Vec<RunSpec> {
    [("mesi", Protocol::Mesi), ("gw", Protocol::ghostwriter())]
        .into_iter()
        .map(|(id, protocol)| RunSpec {
            id: id.into(),
            kind: RunKind::Scenario { scenario, protocol },
        })
        .collect()
}

fn fig04_spec(_scale: Scale) -> Vec<RunSpec> {
    scenario_spec(Scenario::Fig04Migratory)
}

fn fig04_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 4",
        "migratory false sharing: MESI vs Ghostwriter GS",
    );
    let mesi = &records[spec.index_of("mesi")];
    let gw = &records[spec.index_of("gw")];
    let (mesi_msgs, gw_msgs) = (mesi.stats.traffic.total(), gw.stats.traffic.total());
    let _ = writeln!(out, "\n(a) baseline MESI — {mesi_msgs} coherence messages");
    for l in &mesi.trace {
        let _ = writeln!(out, "  {l}");
    }
    let _ = writeln!(out, "\n(b) Ghostwriter — {gw_msgs} coherence messages");
    for l in &gw.trace {
        let _ = writeln!(out, "  {l}");
    }
    let _ = writeln!(
        out,
        "\nGhostwriter eliminates {} of {} messages ({:.1}%): the scribble",
        mesi_msgs - gw_msgs,
        mesi_msgs,
        100.0 * (mesi_msgs - gw_msgs) as f64 / mesi_msgs as f64
    );
    let _ = writeln!(
        out,
        "hits in GS without an UPGRADE, and core 0's re-reads stay hits."
    );
    assert!(gw_msgs < mesi_msgs, "GS must reduce messages");
    out
}

fn fig05_spec(_scale: Scale) -> Vec<RunSpec> {
    scenario_spec(Scenario::Fig05ProducerConsumer)
}

fn fig05_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 5",
        "producer-consumer sharing: MESI vs Ghostwriter GI",
    );
    let mesi = &records[spec.index_of("mesi")];
    let gw = &records[spec.index_of("gw")];
    let (mesi_msgs, gw_msgs) = (mesi.stats.traffic.total(), gw.stats.traffic.total());
    let getx = |r: &RunRecord| r.extra_value("exclusive_requests").unwrap_or(0.0) as u64;
    let (mesi_getx, gw_getx) = (getx(mesi), getx(gw));
    let _ = writeln!(
        out,
        "\n(a) baseline MESI — {mesi_msgs} messages, {mesi_getx} GETX/UPGRADE"
    );
    for l in mesi.trace.iter().take(30) {
        let _ = writeln!(out, "  {l}");
    }
    let _ = writeln!(
        out,
        "\n(b) Ghostwriter — {gw_msgs} messages, {gw_getx} GETX/UPGRADE"
    );
    for l in gw.trace.iter().take(30) {
        let _ = writeln!(out, "  {l}");
    }
    let _ = writeln!(
        out,
        "\nGhostwriter: {} fewer messages, {} fewer exclusive requests.",
        mesi_msgs.saturating_sub(gw_msgs),
        mesi_getx.saturating_sub(gw_getx)
    );
    assert!(gw_getx < mesi_getx, "GI must reduce exclusive requests");
    out
}

// ---------------------------------------------------------------------
// Figs. 7-11: the shared evaluation sweep, one renderer per figure.

fn fig07_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 7",
        "approximate state utilization (GS / GI)",
    );
    let widths = [18usize, 4, 18, 18];
    push_row(
        &mut out,
        &[
            "app".into(),
            "d".into(),
            "serviced by GS %".into(),
            "serviced by GI %".into(),
        ],
        &widths,
    );
    let mut avg = [[0.0f64; 2]; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            let (gs, gi) = (p.gs_serviced_percent(), p.gi_serviced_percent());
            let di = usize::from(d == 8);
            avg[di][0] += gs;
            avg[di][1] += gi;
            n[di] += 1;
            push_row(
                &mut out,
                &[
                    app.into(),
                    d.to_string(),
                    format!("{gs:.1}"),
                    format!("{gi:.1}"),
                ],
                &widths,
            );
        }
    }
    for (di, d) in [4, 8].iter().enumerate() {
        push_row(
            &mut out,
            &[
                "Avg.".into(),
                d.to_string(),
                format!("{:.1}", avg[di][0] / n[di] as f64),
                format!("{:.1}", avg[di][1] / n[di] as f64),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "\nPaper: GS avg 18.7% (d=4) / 21.5% (d=8); GI avg 4.2% / 9.7%;"
    );
    let _ = writeln!(
        out,
        "linear_regression GS 63.7-69.1%; utilization grows with d."
    );
    out
}

fn fig08_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 8",
        "normalized coherence traffic by message class",
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        let _ = writeln!(out, "\n{app}:");
        let base = &records[spec.index_of(&format!("{app}/base"))];
        let self_pair = PairView { base, gw: base };
        push_traffic_stack(
            &mut out,
            "d=0 (baseline MESI)",
            &self_pair.normalized_traffic_by_class(),
        );
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            push_traffic_stack(
                &mut out,
                &format!("d={d}"),
                &p.normalized_traffic_by_class(),
            );
            let di = usize::from(d == 8);
            avg[di] += p.normalized_traffic();
            n[di] += 1;
        }
    }
    let _ = writeln!(out);
    for (di, d) in [4, 8].iter().enumerate() {
        let _ = writeln!(
            out,
            "Average reduction at d={d}: {:.2}% (paper: 2.75% at d=4, 6.25% at d=8)",
            (1.0 - avg[di] / n[di] as f64) * 100.0
        );
    }
    out
}

fn fig09_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 9",
        "NoC + memory-hierarchy dynamic energy saved",
    );
    let widths = [18usize, 4, 12, 12, 12];
    push_row(
        &mut out,
        &[
            "app".into(),
            "d".into(),
            "memory %".into(),
            "network %".into(),
            "total %".into(),
        ],
        &widths,
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            let (b, g) = (p.base.energy(), p.gw.energy());
            let mem = (1.0 - g.memory_pj / b.memory_pj) * 100.0;
            let net = (1.0 - g.network_pj / b.network_pj) * 100.0;
            let tot = p.energy_saved_percent();
            let di = usize::from(d == 8);
            avg[di] += tot;
            n[di] += 1;
            push_row(
                &mut out,
                &[
                    app.into(),
                    d.to_string(),
                    format!("{mem:.1}"),
                    format!("{net:.1}"),
                    format!("{tot:.1}"),
                ],
                &widths,
            );
        }
    }
    for (di, d) in [4, 8].iter().enumerate() {
        let _ = writeln!(
            out,
            "Average at d={d}: {:.1}% (paper: 7.8% at d=4, 11.2% at d=8; max 50.1%)",
            avg[di] / n[di] as f64
        );
    }
    out
}

fn fig10_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(&mut out, "Figure 10", "speedup over baseline MESI");
    let widths = [18usize, 4, 12];
    push_row(
        &mut out,
        &["app".into(), "d".into(), "speedup %".into()],
        &widths,
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let sp = pair(spec, records, app, &format!("d{d}")).speedup_percent();
            let di = usize::from(d == 8);
            avg[di] += sp;
            n[di] += 1;
            push_row(
                &mut out,
                &[app.into(), d.to_string(), format!("{sp:.1}")],
                &widths,
            );
        }
    }
    for (di, d) in [4, 8].iter().enumerate() {
        let _ = writeln!(
            out,
            "Average at d={d}: {:.1}% (paper: 4.7% at d=4, 6.5% at d=8; max 37.3%)",
            avg[di] / n[di] as f64
        );
    }
    let _ = writeln!(
        out,
        "\nPaper shape: large gains only for apps with runtime false"
    );
    let _ = writeln!(
        out,
        "sharing (linear_regression, jpeg); no slowdown for the rest."
    );
    out
}

fn fig11_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(&mut out, "Figure 11", "output error under Ghostwriter");
    let widths = [18usize, 4, 8, 12];
    push_row(
        &mut out,
        &["app".into(), "d".into(), "metric".into(), "error %".into()],
        &widths,
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let e = pair(spec, records, app, &format!("d{d}")).output_error_percent();
            let di = usize::from(d == 8);
            avg[di] += e;
            n[di] += 1;
            push_row(
                &mut out,
                &[
                    app.into(),
                    d.to_string(),
                    metric_label(app).into(),
                    format!("{e:.4}"),
                ],
                &widths,
            );
        }
    }
    for (di, d) in [4, 8].iter().enumerate() {
        let _ = writeln!(
            out,
            "Average at d={d}: {:.4}% (paper: < 0.02% average, < 0.12% max)",
            avg[di] / n[di] as f64
        );
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 12: GI timeout sensitivity on the bad-dot microbenchmark.

const FIG12_TIMEOUTS: [u64; 3] = [128, 512, 1024];

fn fig12_wl(scale: Scale) -> WorkloadSpec {
    WorkloadSpec::BadDot {
        seed: 0xF16,
        n: fig01_n(scale),
        approximate: true,
        work_per_point: 96,
    }
}

fn fig12_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = vec![workload_run(
        "base".into(),
        fig12_wl(scale),
        machine(scale, Protocol::Mesi),
        cores(scale),
        0,
    )];
    for timeout in FIG12_TIMEOUTS {
        runs.push(workload_run(
            format!("t{timeout}"),
            fig12_wl(scale),
            machine(scale, Protocol::ghostwriter_capture(timeout)),
            cores(scale),
            4,
        ));
    }
    runs
}

fn fig12_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Figure 12",
        "GI timeout sensitivity (bad_dot_product, 4-distance)",
    );
    let widths = [10usize, 18, 14, 14];
    push_row(
        &mut out,
        &[
            "timeout".into(),
            "serviced by GI %".into(),
            "error (MPE)%".into(),
            "traffic".into(),
        ],
        &widths,
    );
    let base = &records[spec.index_of("base")];
    for timeout in FIG12_TIMEOUTS {
        let p = PairView {
            base,
            gw: &records[spec.index_of(&format!("t{timeout}"))],
        };
        push_row(
            &mut out,
            &[
                timeout.to_string(),
                format!("{:.1}", p.gi_serviced_percent()),
                format!("{:.1}", p.output_error_percent()),
                format!("{:.3}", p.normalized_traffic()),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "\nPaper shape: longer timeouts raise GI utilization (up to"
    );
    let _ = writeln!(
        out,
        "72.4% at 1024) and raise error (15.3% at 128 to 60.8% at 1024)."
    );
    out
}

// ---------------------------------------------------------------------
// Ablations.

fn ablation_contention_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in FS_APPS {
        for (label, contended) in [("free", false), ("contended", true)] {
            for (side, protocol) in [("base", Protocol::Mesi), ("gw", Protocol::ghostwriter())] {
                let mut cfg = machine(scale, protocol);
                cfg.model_contention = contended;
                // Baselines keyed at d = 0 (MESI ignores d); the
                // contention-free cells are the eval sweep's cells.
                let d = if side == "base" { 0 } else { 8 };
                runs.push(workload_run(
                    format!("{app}/{label}/{side}"),
                    registry_wl(app, scale),
                    cfg,
                    cores(scale),
                    d,
                ));
            }
        }
    }
    runs
}

fn ablation_contention_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation",
        "contention-free vs link-contended NoC",
    );
    let widths = [18usize, 14, 12, 12];
    push_row(
        &mut out,
        &[
            "app".into(),
            "NoC model".into(),
            "base cyc".into(),
            "speedup %".into(),
        ],
        &widths,
    );
    for app in FS_APPS {
        for label in ["free", "contended"] {
            let base = records[spec.index_of(&format!("{app}/{label}/base"))].cycles;
            let gw = records[spec.index_of(&format!("{app}/{label}/gw"))].cycles;
            push_row(
                &mut out,
                &[
                    app.into(),
                    label.into(),
                    base.to_string(),
                    format!("{:.1}", (base as f64 / gw as f64 - 1.0) * 100.0),
                ],
                &widths,
            );
        }
    }
    let _ = writeln!(
        out,
        "\nExpected: the contended NoC amplifies Ghostwriter's speedup."
    );
    out
}

const ERROR_BOUNDS: [Option<u32>; 5] = [None, Some(64), Some(16), Some(4), Some(1)];

fn bound_tag(bound: Option<u32>) -> String {
    bound.map_or("unbounded".into(), |b| format!("b{b}"))
}

fn ablation_error_bound_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = vec![workload_run(
        "base".into(),
        fig12_wl(scale),
        machine(scale, Protocol::Mesi),
        cores(scale),
        0,
    )];
    for bound in ERROR_BOUNDS {
        let p = Protocol::Ghostwriter(GwConfig {
            gi_stores: GiStorePolicy::Capture,
            max_hidden_writes: bound,
            ..GwConfig::default()
        });
        runs.push(workload_run(
            bound_tag(bound),
            fig12_wl(scale),
            machine(scale, p),
            cores(scale),
            4,
        ));
    }
    runs
}

fn ablation_error_bound_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation",
        "runtime error bound (§3.5) on bad_dot_product, Capture GI, d=4",
    );
    let widths = [12usize, 14, 14, 18];
    push_row(
        &mut out,
        &[
            "bound".into(),
            "error (MPE)%".into(),
            "traffic".into(),
            "serviced by GI %".into(),
        ],
        &widths,
    );
    let base = &records[spec.index_of("base")];
    for bound in ERROR_BOUNDS {
        let p = PairView {
            base,
            gw: &records[spec.index_of(&bound_tag(bound))],
        };
        push_row(
            &mut out,
            &[
                bound.map_or("unbounded".into(), |b| b.to_string()),
                format!("{:.1}", p.output_error_percent()),
                format!("{:.3}", p.normalized_traffic()),
                format!("{:.1}", p.gi_serviced_percent()),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "\nExpected: tighter bounds trade coherence-traffic savings for"
    );
    let _ = writeln!(
        out,
        "bounded worst-case error, taming the paper's pathological case."
    );
    out
}

const SCRIBE_VARIANTS: [(&str, ScribePolicy); 2] = [
    ("bitwise", ScribePolicy::Bitwise),
    ("arithmetic", ScribePolicy::Arithmetic),
];

fn ablation_scribe_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in FS_APPS {
        runs.push(base_run(app, scale));
        for (label, scribe) in SCRIBE_VARIANTS {
            for d in EVAL_DISTANCES {
                let p = Protocol::Ghostwriter(GwConfig {
                    scribe,
                    ..GwConfig::default()
                });
                runs.push(gw_run(app, scale, d, p, &format!("{label}/d{d}")));
            }
        }
    }
    runs
}

fn ablation_scribe_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation",
        "scribe comparator: bit-wise vs arithmetic",
    );
    let widths = [18usize, 12, 4, 9, 9, 9, 10];
    push_row(
        &mut out,
        &[
            "app".into(),
            "comparator".into(),
            "d".into(),
            "GS%".into(),
            "traffic".into(),
            "speedup%".into(),
            "error%".into(),
        ],
        &widths,
    );
    for app in FS_APPS {
        for (label, _) in SCRIBE_VARIANTS {
            for d in EVAL_DISTANCES {
                let p = pair(spec, records, app, &format!("{label}/d{d}"));
                push_row(
                    &mut out,
                    &[
                        app.into(),
                        label.into(),
                        d.to_string(),
                        format!("{:.1}", p.gs_serviced_percent()),
                        format!("{:.3}", p.normalized_traffic()),
                        format!("{:.1}", p.speedup_percent()),
                        format!("{:.4}", p.output_error_percent()),
                    ],
                    &widths,
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "\nThe arithmetic comparator admits carry-crossing neighbours"
    );
    let _ = writeln!(
        out,
        "(paper §3.4), trading a little more error for more coverage."
    );
    out
}

fn states_protocol(enable_gs: bool, enable_gi: bool, gi_stores: GiStorePolicy) -> Protocol {
    Protocol::Ghostwriter(GwConfig {
        enable_gs,
        enable_gi,
        gi_stores,
        ..GwConfig::default()
    })
}

fn states_variants() -> [(&'static str, &'static str, Protocol); 5] {
    [
        (
            "default",
            "GS+GI (default)",
            states_protocol(true, true, GiStorePolicy::Fallback),
        ),
        (
            "gs_only",
            "GS only",
            states_protocol(true, false, GiStorePolicy::Fallback),
        ),
        (
            "gi_only",
            "GI only",
            states_protocol(false, true, GiStorePolicy::Fallback),
        ),
        (
            "capture",
            "GS+GI capture",
            states_protocol(true, true, GiStorePolicy::Capture),
        ),
        (
            "disabled",
            "disabled",
            states_protocol(false, false, GiStorePolicy::Fallback),
        ),
    ]
}

fn ablation_states_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in FS_APPS {
        runs.push(base_run(app, scale));
        for (tag, _, p) in states_variants() {
            runs.push(gw_run(app, scale, 8, p, tag));
        }
    }
    runs
}

fn ablation_states_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation",
        "GS / GI contribution and GI store policy",
    );
    let widths = [18usize, 22, 9, 9, 9, 10];
    push_row(
        &mut out,
        &[
            "app".into(),
            "variant".into(),
            "traffic".into(),
            "energy%".into(),
            "speedup%".into(),
            "error%".into(),
        ],
        &widths,
    );
    for app in FS_APPS {
        for (tag, label, _) in states_variants() {
            let p = pair(spec, records, app, tag);
            push_row(
                &mut out,
                &[
                    app.into(),
                    label.into(),
                    format!("{:.3}", p.normalized_traffic()),
                    format!("{:.1}", p.energy_saved_percent()),
                    format!("{:.1}", p.speedup_percent()),
                    format!("{:.4}", p.output_error_percent()),
                ],
                &widths,
            );
        }
    }
    let _ = writeln!(
        out,
        "\nExpected: GS carries most of linear_regression's benefit;"
    );
    let _ = writeln!(
        out,
        "'disabled' must match the baseline exactly (all zeros)."
    );
    out
}

// ---------------------------------------------------------------------
// Auto-tuning (§3.5): profile the whole ladder, replay first-fit.

/// The tuner's d ladder, most aggressive first (must match
/// `ghostwriter_workloads::DEFAULT_LADDER`).
const TUNE_LADDER: [u8; 6] = [12, 8, 6, 4, 2, 0];
const TUNE_BUDGET_PERCENT: f64 = 0.5;

fn autotune_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in PAPER_APPS {
        runs.push(base_run(app, scale));
        for d in TUNE_LADDER {
            runs.push(gw_run(
                app,
                scale,
                d,
                Protocol::ghostwriter(),
                &format!("d{d}"),
            ));
        }
    }
    runs
}

fn autotune_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Auto-tuning",
        "largest d-distance meeting a 0.5% output-error budget",
    );
    let widths = [18usize, 10, 10, 12, 10];
    push_row(
        &mut out,
        &[
            "app".into(),
            "chosen d".into(),
            "error %".into(),
            "speedup %".into(),
            "traffic".into(),
        ],
        &widths,
    );
    for app in PAPER_APPS {
        // Replay the tuner's descending-first-fit selection over the
        // cached profile: the ladder includes d = 0 (exact under the
        // default Fallback policy), so the min-error fallback coincides
        // with the last rung.
        let candidates: Vec<(u8, PairView)> = TUNE_LADDER
            .iter()
            .map(|&d| (d, pair(spec, records, app, &format!("d{d}"))))
            .collect();
        let chosen = candidates
            .iter()
            .find(|(_, p)| p.output_error_percent() <= TUNE_BUDGET_PERCENT)
            .unwrap_or_else(|| {
                candidates
                    .iter()
                    .min_by(|a, b| {
                        a.1.output_error_percent()
                            .partial_cmp(&b.1.output_error_percent())
                            .expect("errors are finite")
                    })
                    .expect("ladder nonempty")
            });
        push_row(
            &mut out,
            &[
                app.into(),
                chosen.0.to_string(),
                format!("{:.4}", chosen.1.output_error_percent()),
                format!("{:.1}", chosen.1.speedup_percent()),
                format!("{:.3}", chosen.1.normalized_traffic()),
            ],
            &widths,
        );
    }
    let _ = writeln!(
        out,
        "\nApplications with no runtime false sharing tune straight to"
    );
    let _ = writeln!(
        out,
        "the most aggressive setting (nothing diverges); error-prone"
    );
    let _ = writeln!(out, "ones settle where the budget binds.");
    out
}

// ---------------------------------------------------------------------
// Extended evaluation: kmeans and sobel.

fn extended_eval_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in EXTENDED_APPS {
        runs.push(base_run(app, scale));
        for d in EVAL_DISTANCES {
            runs.push(gw_run(
                app,
                scale,
                d,
                Protocol::ghostwriter(),
                &format!("d{d}"),
            ));
        }
    }
    runs
}

fn extended_eval_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Extended evaluation",
        "kmeans and sobel (beyond Table 2)",
    );
    let widths = [10usize, 3, 9, 9, 9, 9, 9, 9];
    push_row(
        &mut out,
        &[
            "app".into(),
            "d".into(),
            "GS%".into(),
            "GI%".into(),
            "traffic".into(),
            "energy%".into(),
            "speedup%".into(),
            "error%".into(),
        ],
        &widths,
    );
    for app in EXTENDED_APPS {
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            push_row(
                &mut out,
                &[
                    app.into(),
                    d.to_string(),
                    format!("{:.1}", p.gs_serviced_percent()),
                    format!("{:.1}", p.gi_serviced_percent()),
                    format!("{:.3}", p.normalized_traffic()),
                    format!("{:.1}", p.energy_saved_percent()),
                    format!("{:.1}", p.speedup_percent()),
                    format!("{:.4}", p.output_error_percent()),
                ],
                &widths,
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Value-similarity deep profile (parameterizable; registry defaults).

/// The parameterized profile spec (`profile_similarity [app] [cores]`).
/// The default `linear_regression` at the evaluation core count is the
/// Fig. 2 cell, so the profile is free once Fig. 2 has run.
pub fn profile_similarity_spec(app: &str, n_cores: usize, scale: Scale) -> ExperimentSpec {
    let mut cfg = machine(scale, Protocol::Mesi);
    cfg.cores = n_cores;
    ExperimentSpec {
        experiment: "profile_similarity",
        runs: vec![workload_run(
            format!("{app}/profile"),
            registry_wl(app, scale),
            cfg,
            n_cores,
            0,
        )],
    }
}

/// Renders the per-distance histogram profile for the spec's single run.
pub fn profile_similarity_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let run = &spec.runs[0];
    let (app, n_cores) = match &run.kind {
        RunKind::Workload {
            workload: WorkloadSpec::Registry { name, .. },
            threads,
            ..
        } => (name.clone(), *threads),
        other => panic!("profile_similarity expects a registry workload, got {other:?}"),
    };
    let mut out = String::new();
    banner(
        &mut out,
        "Value-similarity profile",
        &format!("{app} under baseline MESI, {n_cores} cores"),
    );
    let h = &records[0].stats.similarity;
    let _ = writeln!(out, "stores profiled: {}", h.total());
    let _ = writeln!(out, "\n  d   exact-count   P(<=d)   bar");
    let mut last = 0.0;
    for d in 0..=32u32 {
        let frac = h.cumulative_fraction(d);
        if d > 16 && (frac - last).abs() < 1e-9 && h.count_at(d) == 0 {
            continue; // skip empty tail rows
        }
        let bar = "#".repeat((frac * 50.0) as usize);
        let _ = writeln!(out, "{d:>3}  {:>11}  {frac:>6.3}   {bar}", h.count_at(d));
        last = frac;
    }
    let _ = writeln!(
        out,
        "\nPaper Fig. 2: on average 22.8% of overwritten values are"
    );
    let _ = writeln!(out, "0-distance, 36.4% within 4 and 43.7% within 8.");
    out
}

fn profile_default_spec(scale: Scale) -> Vec<RunSpec> {
    profile_similarity_spec("linear_regression", cores(scale), scale).runs
}

// ---------------------------------------------------------------------
// Protocol fuzzer.

fn fuzz_spec(scale: Scale) -> Vec<RunSpec> {
    let (seeds, accesses) = match scale {
        Scale::Eval => (200, 800),
        Scale::Smoke => (20, 200),
    };
    vec![RunSpec {
        id: "fuzz".into(),
        kind: RunKind::Fuzz { seeds, accesses },
    }]
}

fn fuzz_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let r = &records[spec.index_of("fuzz")];
    let get = |k: &str| r.extra_value(k).unwrap_or(0.0) as u64;
    format!(
        "PASS: {} seeds x {} accesses, {} messages\n",
        get("seeds"),
        get("accesses"),
        get("messages")
    )
}

// ---------------------------------------------------------------------
// Protocol ladder: the base-protocol family as an evaluation axis.

/// Applications for the cross-protocol grid — the Phoenix map-reduce
/// pair plus the streaming AxBench one, all in the Table 2 roster so
/// the MESI and GW-over-MESI cells alias the evaluation sweep's.
const LADDER_APPS: [&str; 3] = ["histogram", "linear_regression", "jpeg"];

/// The two bases Ghostwriter composes over in the grid.
const LADDER_GW_BASES: [BaseProtocol; 2] = [BaseProtocol::Mesi, BaseProtocol::Moesi];

/// `machine(scale, protocol)` with an explicit base protocol.
fn ladder_machine(scale: Scale, protocol: Protocol, base: BaseProtocol) -> MachineConfig {
    MachineConfig {
        base_protocol: base,
        ..machine(scale, protocol)
    }
}

/// The cross-protocol × workload grid: every base protocol exactly
/// (d = 0), plus Ghostwriter composed over MESI and MOESI (d = 8). The
/// MESI and gw-over-MESI cells are fingerprint-identical to the
/// evaluation sweep's baseline/d8 cells, so a warm eval cache serves
/// them for free.
fn protocol_ladder_spec(scale: Scale) -> Vec<RunSpec> {
    let mut runs = Vec::new();
    for app in LADDER_APPS {
        for base in BaseProtocol::ALL {
            runs.push(workload_run(
                format!("{app}/{}", base.name()),
                registry_wl(app, scale),
                ladder_machine(scale, Protocol::Mesi, base),
                cores(scale),
                0,
            ));
        }
        for base in LADDER_GW_BASES {
            runs.push(workload_run(
                format!("{app}/gw-{}", base.name()),
                registry_wl(app, scale),
                ladder_machine(scale, Protocol::ghostwriter(), base),
                cores(scale),
                8,
            ));
        }
    }
    runs
}

fn protocol_ladder_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ladder",
        "base-protocol family: cycles, traffic and the new traffic shapes",
    );
    let widths = [18usize, 10, 9, 9, 9, 10, 8];
    push_row(
        &mut out,
        &[
            "app".into(),
            "protocol".into(),
            "cycles".into(),
            "traffic".into(),
            "elided".into(),
            "cleanfwd".into(),
            "error%".into(),
        ],
        &widths,
    );
    for app in LADDER_APPS {
        let mesi = &records[spec.index_of(&format!("{app}/mesi"))];
        let base_traffic = mesi.stats.traffic.total().max(1) as f64;
        let mut row = |tag: &str| {
            let r = &records[spec.index_of(&format!("{app}/{tag}"))];
            push_row(
                &mut out,
                &[
                    app.into(),
                    tag.into(),
                    format!("{}", r.cycles),
                    format!("{:.3}", r.stats.traffic.total() as f64 / base_traffic),
                    format!("{}", r.stats.wb_elisions),
                    format!("{}", r.stats.clean_forwards),
                    format!("{:.4}", r.error_percent),
                ],
                &widths,
            );
        };
        for base in BaseProtocol::ALL {
            row(base.name());
        }
        for base in LADDER_GW_BASES {
            row(&format!("gw-{}", base.name()));
        }
    }
    let _ = writeln!(
        out,
        "
Expected: every exact row has error 0; only MOESI/MOSI elide"
    );
    let _ = writeln!(
        out,
        "writebacks, only MESIF clean-forwards; traffic is normalized"
    );
    let _ = writeln!(out, "to the MESI row of each application.");
    out
}

// ---------------------------------------------------------------------
// Tables 1 and 2: zero-run render-only reports.

fn empty_spec(_scale: Scale) -> Vec<RunSpec> {
    Vec::new()
}

fn table1_render(_spec: &ExperimentSpec, _records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(&mut out, "Table 1", "simulation configuration");
    let c = machine(Scale::Eval, Protocol::ghostwriter());
    let (w, h) = Mesh::dims_for(c.cores);
    let _ = writeln!(
        out,
        "Cores      : {} in-order cores, 1 cycle/op issue, 1 GHz",
        c.cores
    );
    let _ = writeln!(
        out,
        "L1         : private {} kB D-cache, {}-way, 64 B blocks, tree-PLRU, {}-cycle",
        c.l1_kb, c.l1_ways, c.l1_latency
    );
    let _ = writeln!(
        out,
        "L2         : shared, {} kB per core ({} banks), {}-way, 64 B blocks, tree-PLRU, {}-cycle, inclusive",
        c.l2_bank_kb, c.cores, c.l2_ways, c.l2_latency
    );
    match c.protocol {
        Protocol::Ghostwriter(gw) => {
            let _ = writeln!(
                out,
                "Coherence  : Ghostwriter protocol (baseline MESI), d-distance 4 and 8, {}-cycle GI timeout",
                gw.gi_timeout
            );
        }
        Protocol::Mesi => {
            let _ = writeln!(out, "Coherence  : MESI directory protocol");
        }
    }
    let _ = writeln!(
        out,
        "Network    : {w}x{h} mesh, XY routing, {}-cycle router, {}-cycle link, {} memory controllers at mesh corners",
        c.router_cycles,
        c.link_cycles,
        Mesh::with_paper_timing(w, h).corners().len()
    );
    let _ = writeln!(
        out,
        "DRAM       : sparse backing store, {}-cycle access (DDR3-1600 class)",
        c.dram_latency
    );
    out
}

fn table2_render(_spec: &ExperimentSpec, _records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(&mut out, "Table 2", "benchmarks");
    let widths = [20usize, 22, 16, 34, 7];
    push_row(
        &mut out,
        &[
            "application".into(),
            "domain".into(),
            "suite".into(),
            "input".into(),
            "error".into(),
        ],
        &widths,
    );
    for e in paper_benchmarks()
        .iter()
        .chain(ghostwriter_workloads::micro_benchmarks().iter())
    {
        push_row(
            &mut out,
            &[
                e.name.into(),
                e.domain.into(),
                e.suite.label().into(),
                e.input_desc.into(),
                e.metric.label().into(),
            ],
            &widths,
        );
    }
    out
}

// ---------------------------------------------------------------------
// repro_all: the full evaluation sweep report + CSV.

fn repro_all_render(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ghostwriter reproduction",
        "full evaluation sweep (paper Figs. 7-11)",
    );
    let widths = [18usize, 3, 9, 9, 9, 9, 9, 10, 9];
    push_row(
        &mut out,
        &[
            "app".into(),
            "d".into(),
            "GS%".into(),
            "GI%".into(),
            "traffic".into(),
            "energy%".into(),
            "speedup%".into(),
            "metric".into(),
            "error%".into(),
        ],
        &widths,
    );
    let mut sums = [[0.0f64; 5]; 2];
    let mut n = [0usize; 2];
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            let vals = [
                p.gs_serviced_percent(),
                p.gi_serviced_percent(),
                p.normalized_traffic(),
                p.energy_saved_percent(),
                p.speedup_percent(),
            ];
            let di = usize::from(d == 8);
            for (s, v) in sums[di].iter_mut().zip(vals) {
                *s += v;
            }
            n[di] += 1;
            push_row(
                &mut out,
                &[
                    app.into(),
                    d.to_string(),
                    format!("{:.1}", vals[0]),
                    format!("{:.1}", vals[1]),
                    format!("{:.3}", vals[2]),
                    format!("{:.1}", vals[3]),
                    format!("{:.1}", vals[4]),
                    metric_label(app).into(),
                    format!("{:.4}", p.output_error_percent()),
                ],
                &widths,
            );
        }
    }
    let _ = writeln!(out);
    for (di, d) in [4u8, 8].iter().enumerate() {
        let k = n[di] as f64;
        let _ = writeln!(
            out,
            "Avg d={d}: GS {:.1}%  GI {:.1}%  traffic {:.3}  energy {:.1}%  speedup {:.1}%",
            sums[di][0] / k,
            sums[di][1] / k,
            sums[di][2] / k,
            sums[di][3] / k,
            sums[di][4] / k
        );
    }
    let _ = writeln!(out, "\nPer-class traffic stacks (Fig. 8):");
    for app in PAPER_APPS {
        let _ = writeln!(out, "{app}:");
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            push_traffic_stack(
                &mut out,
                &format!("d={d}"),
                &p.normalized_traffic_by_class(),
            );
        }
    }
    let _ = writeln!(
        out,
        "\nSee fig01/fig02/fig04/fig05/fig12 reports for the remaining figures."
    );
    out
}

/// The evaluation sweep as CSV, one row per app × d (matches the old
/// `repro_all --csv` output).
pub fn eval_csv(spec: &ExperimentSpec, records: &[RunRecord]) -> String {
    let mut out = String::from(concat!(
        "app,d,gs_serviced_pct,gi_serviced_pct,normalized_traffic,",
        "energy_saved_pct,speedup_pct,error_pct,base_cycles,gw_cycles,",
        "base_messages,gw_messages\n"
    ));
    for app in PAPER_APPS {
        for d in EVAL_DISTANCES {
            let p = pair(spec, records, app, &format!("d{d}"));
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.4},{:.6},{:.4},{:.4},{:.6},{},{},{},{}",
                app,
                d,
                p.gs_serviced_percent(),
                p.gi_serviced_percent(),
                p.normalized_traffic(),
                p.energy_saved_percent(),
                p.speedup_percent(),
                p.output_error_percent(),
                p.base.cycles,
                p.gw.cycles,
                p.base.stats.traffic.total(),
                p.gw.stats.traffic.total(),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Registry.

/// Every registered experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig01",
            title: "dot-product speedup vs thread count (MESI baseline)",
            output: "fig01_false_sharing.txt",
            spec_fn: fig01_spec,
            render_fn: fig01_render,
        },
        Experiment {
            name: "fig02",
            title: "cumulative d-distance distribution of store values",
            output: "fig02_value_similarity.txt",
            spec_fn: fig02_spec,
            render_fn: fig02_render,
        },
        Experiment {
            name: "fig04",
            title: "migratory false-sharing message traces (GS)",
            output: "fig04_migratory.txt",
            spec_fn: fig04_spec,
            render_fn: fig04_render,
        },
        Experiment {
            name: "fig05",
            title: "producer-consumer message traces (GI)",
            output: "fig05_producer_consumer.txt",
            spec_fn: fig05_spec,
            render_fn: fig05_render,
        },
        Experiment {
            name: "fig07",
            title: "approximate state utilization (GS / GI)",
            output: "fig07_state_utilization.txt",
            spec_fn: eval_suite,
            render_fn: fig07_render,
        },
        Experiment {
            name: "fig08",
            title: "normalized coherence traffic by message class",
            output: "fig08_coherence_traffic.txt",
            spec_fn: eval_suite,
            render_fn: fig08_render,
        },
        Experiment {
            name: "fig09",
            title: "NoC + memory-hierarchy dynamic energy saved",
            output: "fig09_energy.txt",
            spec_fn: eval_suite,
            render_fn: fig09_render,
        },
        Experiment {
            name: "fig10",
            title: "speedup over baseline MESI",
            output: "fig10_speedup.txt",
            spec_fn: eval_suite,
            render_fn: fig10_render,
        },
        Experiment {
            name: "fig11",
            title: "output error under Ghostwriter",
            output: "fig11_error.txt",
            spec_fn: eval_suite,
            render_fn: fig11_render,
        },
        Experiment {
            name: "fig12",
            title: "GI timeout sensitivity (bad_dot_product)",
            output: "fig12_timeout_sensitivity.txt",
            spec_fn: fig12_spec,
            render_fn: fig12_render,
        },
        Experiment {
            name: "ablation_contention",
            title: "contention-free vs link-contended NoC",
            output: "ablation_contention.txt",
            spec_fn: ablation_contention_spec,
            render_fn: ablation_contention_render,
        },
        Experiment {
            name: "ablation_error_bound",
            title: "runtime error bound (§3.5) sweep",
            output: "ablation_error_bound.txt",
            spec_fn: ablation_error_bound_spec,
            render_fn: ablation_error_bound_render,
        },
        Experiment {
            name: "ablation_scribe",
            title: "scribe comparator: bit-wise vs arithmetic",
            output: "ablation_scribe.txt",
            spec_fn: ablation_scribe_spec,
            render_fn: ablation_scribe_render,
        },
        Experiment {
            name: "ablation_states",
            title: "GS / GI contribution and GI store policy",
            output: "ablation_states.txt",
            spec_fn: ablation_states_spec,
            render_fn: ablation_states_render,
        },
        Experiment {
            name: "autotune",
            title: "d-distance auto-tuning for a 0.5% error budget",
            output: "autotune.txt",
            spec_fn: autotune_spec,
            render_fn: autotune_render,
        },
        Experiment {
            name: "extended_eval",
            title: "kmeans and sobel (beyond Table 2)",
            output: "extended_eval.txt",
            spec_fn: extended_eval_spec,
            render_fn: extended_eval_render,
        },
        Experiment {
            name: "profile_similarity",
            title: "per-distance similarity histogram (default app)",
            output: "profile_similarity.txt",
            spec_fn: profile_default_spec,
            render_fn: profile_similarity_render,
        },
        Experiment {
            name: "protocol_fuzz",
            title: "random protocol tester sweep",
            output: "protocol_fuzz.txt",
            spec_fn: fuzz_spec,
            render_fn: fuzz_render,
        },
        Experiment {
            name: "table1",
            title: "simulation configuration (Table 1)",
            output: "table1_config.txt",
            spec_fn: empty_spec,
            render_fn: table1_render,
        },
        Experiment {
            name: "table2",
            title: "benchmark roster (Table 2)",
            output: "table2_benchmarks.txt",
            spec_fn: empty_spec,
            render_fn: table2_render,
        },
        Experiment {
            name: "protocol_ladder",
            title: "base-protocol family grid (MESI/MSI/MOESI/MOSI/MESIF + GW)",
            output: "protocol_ladder.txt",
            spec_fn: protocol_ladder_spec,
            render_fn: protocol_ladder_render,
        },
        Experiment {
            name: "repro_all",
            title: "full evaluation sweep (Figs. 7-11) + CSV",
            output: "repro_all.txt",
            spec_fn: eval_suite,
            render_fn: repro_all_render,
        },
    ]
}

/// Registry lookup by name.
pub fn find_experiment(name: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_covers_all_legacy_binaries() {
        assert_eq!(all_experiments().len(), 22);
        let names: BTreeSet<_> = all_experiments().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 22, "names must be unique");
        assert!(find_experiment("fig07").is_some());
        assert!(find_experiment("nonesuch").is_none());
    }

    #[test]
    fn eval_suite_is_shared_across_figures() {
        // Figs. 7-11 and repro_all declare fingerprint-identical grids,
        // so one sweep's cache serves all six reports.
        let fig07 = find_experiment("fig07").unwrap().spec(Scale::Smoke);
        let repro = find_experiment("repro_all").unwrap().spec(Scale::Smoke);
        let fp =
            |s: &ExperimentSpec| -> Vec<_> { s.runs.iter().map(|r| r.fingerprint()).collect() };
        assert_eq!(fp(&fig07), fp(&repro));
    }

    #[test]
    fn baselines_dedup_with_fig02_profiles() {
        // The Fig. 2 profiling runs are exactly the eval baselines.
        let fig02 = find_experiment("fig02").unwrap().spec(Scale::Smoke);
        let fig07 = find_experiment("fig07").unwrap().spec(Scale::Smoke);
        let sweep_fps: BTreeSet<_> = fig07.runs.iter().map(|r| r.fingerprint()).collect();
        for run in &fig02.runs {
            assert!(
                sweep_fps.contains(&run.fingerprint()),
                "{}: fig02 cell must alias an eval baseline",
                run.id
            );
        }
    }

    #[test]
    fn autotune_ladder_matches_workloads_default() {
        assert_eq!(TUNE_LADDER, ghostwriter_workloads::DEFAULT_LADDER);
    }

    #[test]
    fn tables_declare_no_runs() {
        for name in ["table1", "table2"] {
            let spec = find_experiment(name).unwrap().spec(Scale::Eval);
            assert!(spec.runs.is_empty(), "{name} must be render-only");
        }
    }

    #[test]
    fn smoke_specs_are_bounded() {
        // CI runs the whole smoke matrix; keep the distinct-cell count
        // within budget so the cold pass stays fast.
        let mut distinct = BTreeSet::new();
        let mut total = 0usize;
        for exp in all_experiments() {
            let spec = exp.spec(Scale::Smoke);
            total += spec.runs.len();
            distinct.extend(spec.runs.iter().map(|r| r.fingerprint()));
        }
        assert!(total > distinct.len(), "cross-experiment dedup must exist");
        assert!(
            distinct.len() <= 120,
            "smoke matrix too large: {} distinct cells",
            distinct.len()
        );
    }
}
