//! The declarative experiment model.
//!
//! An [`ExperimentSpec`] is a named, data-driven run matrix: every
//! figure, table and ablation of the paper declares the exact grid of
//! (workload × machine configuration × seed) cells it needs, and the
//! engine executes whatever is not already cached. Identity is textual:
//! each [`RunSpec`] lowers to a canonical `cache_key` string covering
//! the full machine configuration, the workload identity (including its
//! input seed), the thread count and d-distance, plus the global
//! [`SPEC_REVISION`]; the 128-bit fingerprint of that key addresses the
//! result cache. Two experiments that declare the same cell (the Fig.
//! 7–11 sweep is shared six ways) therefore share one cached run.

use ghostwriter_core::{FaultConfig, MachineConfig, Protocol};
use ghostwriter_workloads::{find_benchmark, ScaleClass, Workload};

use crate::fingerprint::Fingerprint;

/// Bumped whenever run semantics change in a way that must invalidate
/// every previously cached result (simulator behaviour fixes, stat
/// definition changes, record schema changes).
pub const SPEC_REVISION: u32 = 1;

/// Input scale for a whole experiment: the paper's evaluation inputs or
/// the small smoke/test grid used by CI and the golden suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Paper-scale inputs (24-core machine, `ScaleClass::Eval`).
    Eval,
    /// Seconds-scale inputs (small machine, `ScaleClass::Test`).
    Smoke,
}

impl Scale {
    /// The workload input-size class for this scale.
    pub fn class(self) -> ScaleClass {
        match self {
            Scale::Eval => ScaleClass::Eval,
            Scale::Smoke => ScaleClass::Test,
        }
    }
}

/// How to (re)build one workload instance.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// A registry application (Table 2, extended, or micro roster) at a
    /// given input scale with an explicit input seed.
    Registry {
        name: String,
        scale: ScaleClass,
        seed: u64,
    },
    /// The §2 naive dot product with explicit parameters (Figs. 1/12 and
    /// the error-bound ablation use off-roster variants).
    BadDot {
        seed: u64,
        n: usize,
        approximate: bool,
        work_per_point: u64,
    },
    /// The §2 privatized dot product.
    GoodDot { seed: u64, n: usize },
}

impl WorkloadSpec {
    /// Registry shorthand.
    pub fn registry(name: &str, scale: ScaleClass, seed: u64) -> Self {
        WorkloadSpec::Registry {
            name: name.to_string(),
            scale,
            seed,
        }
    }

    /// Canonical identity (feeds the cache key).
    pub fn key(&self) -> String {
        match self {
            WorkloadSpec::Registry { name, scale, seed } => {
                format!("wl:registry:{name}:{scale:?}:seed={seed}")
            }
            WorkloadSpec::BadDot {
                seed,
                n,
                approximate,
                work_per_point,
            } => format!("wl:bad_dot:n={n}:approx={approximate}:work={work_per_point}:seed={seed}"),
            WorkloadSpec::GoodDot { seed, n } => format!("wl:good_dot:n={n}:seed={seed}"),
        }
    }

    /// Builds a fresh instance; the explicit seed in the spec is the
    /// only entropy source any workload sees.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Registry { name, scale, seed } => find_benchmark(name)
                .unwrap_or_else(|| panic!("unknown workload `{name}`"))
                .build_seeded(*scale, *seed),
            WorkloadSpec::BadDot {
                seed,
                n,
                approximate,
                work_per_point,
            } => Box::new(ghostwriter_workloads::BadDotProduct::with_work(
                *seed,
                *n,
                *approximate,
                *work_per_point,
            )),
            WorkloadSpec::GoodDot { seed, n } => {
                Box::new(ghostwriter_workloads::GoodDotProduct::new(*seed, *n))
            }
        }
    }
}

/// The hand-scripted §2 sharing-pattern scenarios (message-trace
/// figures; see [`crate::scenarios`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Fig. 4: migratory false sharing, 2 cores.
    Fig04Migratory,
    /// Fig. 5: producer–consumer with a stale next producer, 3 cores.
    Fig05ProducerConsumer,
}

/// What one run executes.
#[derive(Clone, Debug)]
pub enum RunKind {
    /// One workload execution on one machine.
    Workload {
        workload: WorkloadSpec,
        config: MachineConfig,
        threads: usize,
        d: u8,
    },
    /// One scripted scenario (records its message trace).
    Scenario {
        scenario: Scenario,
        protocol: Protocol,
    },
    /// The random protocol fuzzer (deterministic across its seed range;
    /// records the message count it drove).
    Fuzz { seeds: u64, accesses: usize },
    /// One workload execution under seeded fault injection: the same
    /// cell as [`RunKind::Workload`] plus a [`FaultConfig`]. Kept as a
    /// separate kind (rather than an optional field on `Workload`) so
    /// every pre-existing cache key stays byte-identical — fault-free
    /// history is never invalidated by the fault dimension.
    Resilience {
        workload: WorkloadSpec,
        config: MachineConfig,
        threads: usize,
        d: u8,
        faults: FaultConfig,
    },
}

/// One cell of a run matrix: a stable experiment-local id plus the work.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Experiment-local label, e.g. `histogram/d4/gw` (not part of the
    /// cache identity — the same work under different labels still
    /// shares a cache entry).
    pub id: String,
    pub kind: RunKind,
}

impl RunSpec {
    /// Canonical identity string: everything that determines the run's
    /// result, and nothing that doesn't.
    pub fn cache_key(&self) -> String {
        let body = match &self.kind {
            RunKind::Workload {
                workload,
                config,
                threads,
                d,
            } => format!(
                "workload|{}|{}|threads={threads}|d={d}",
                workload.key(),
                config.cache_key()
            ),
            RunKind::Scenario { scenario, protocol } => {
                format!("scenario|{scenario:?}|{protocol:?}")
            }
            // `family` marks the base-protocol-cycling sweep: the fuzz
            // run's semantics changed when the tester started rotating
            // through MESI/MSI/MOESI/MOSI/MESIF per seed, so pre-family
            // cached cells must not be served for it.
            RunKind::Fuzz { seeds, accesses } => {
                format!("fuzz|family|seeds={seeds}|accesses={accesses}")
            }
            RunKind::Resilience {
                workload,
                config,
                threads,
                d,
                faults,
            } => format!(
                "resilience|{}|{}|threads={threads}|d={d}|faults={}",
                workload.key(),
                config.cache_key(),
                faults.key()
            ),
        };
        format!("rev={SPEC_REVISION}|{body}")
    }

    /// Content address of this run's result.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_parts(["ghostwriter-exp", &self.cache_key()])
    }
}

/// A named run matrix (one figure/table/ablation at one scale).
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// The owning experiment's name (e.g. `fig07`).
    pub experiment: &'static str,
    /// The cells, in render order.
    pub runs: Vec<RunSpec>,
}

impl ExperimentSpec {
    /// Index of the run with the given id (renderers look cells up by
    /// label; a typo is a programming error, hence the panic).
    pub fn index_of(&self, id: &str) -> usize {
        self.runs
            .iter()
            .position(|r| r.id == id)
            .unwrap_or_else(|| panic!("{}: no run labelled `{id}`", self.experiment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64, threads: usize, cfg: MachineConfig) -> RunSpec {
        RunSpec {
            id: "x".into(),
            kind: RunKind::Workload {
                workload: WorkloadSpec::registry("histogram", ScaleClass::Test, seed),
                config: cfg,
                threads,
                d: 4,
            },
        }
    }

    #[test]
    fn fingerprint_covers_config_seed_and_threads() {
        let base = spec(1, 4, MachineConfig::small(4, Protocol::Mesi));
        assert_eq!(
            base.fingerprint(),
            spec(1, 4, MachineConfig::small(4, Protocol::Mesi)).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            spec(2, 4, MachineConfig::small(4, Protocol::Mesi)).fingerprint(),
            "seed must change the fingerprint"
        );
        assert_ne!(
            base.fingerprint(),
            spec(1, 2, MachineConfig::small(4, Protocol::Mesi)).fingerprint(),
            "thread count must change the fingerprint"
        );
        assert_ne!(
            base.fingerprint(),
            spec(1, 4, MachineConfig::small(4, Protocol::ghostwriter())).fingerprint(),
            "protocol must change the fingerprint"
        );
    }

    #[test]
    fn id_is_a_label_not_an_identity() {
        let mut a = spec(1, 4, MachineConfig::small(4, Protocol::Mesi));
        let mut b = a.clone();
        a.id = "first".into();
        b.id = "second".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn resilience_identity_covers_the_fault_config() {
        let cell = |faults: FaultConfig| RunSpec {
            id: "x".into(),
            kind: RunKind::Resilience {
                workload: WorkloadSpec::registry("histogram", ScaleClass::Test, 1),
                config: MachineConfig::small(4, Protocol::Mesi),
                threads: 4,
                d: 4,
                faults,
            },
        };
        let noop = FaultConfig::default();
        let dropper = FaultConfig {
            seed: 3,
            drop_permille: 10,
            recovery: Some(ghostwriter_core::RecoveryParams::default()),
            ..FaultConfig::default()
        };
        assert_eq!(cell(noop).fingerprint(), cell(noop).fingerprint());
        assert_ne!(
            cell(noop).fingerprint(),
            cell(dropper).fingerprint(),
            "fault config must change the fingerprint"
        );
        assert_ne!(
            cell(dropper).fingerprint(),
            cell(FaultConfig { seed: 4, ..dropper }).fingerprint(),
            "fault seed must change the fingerprint"
        );
        // Even an all-off fault config keeps a resilience cell distinct
        // from the plain workload cell: the kinds never share history.
        assert_ne!(
            cell(noop).fingerprint(),
            spec(1, 4, MachineConfig::small(4, Protocol::Mesi)).fingerprint()
        );
    }

    #[test]
    fn registry_workload_builds() {
        let w = WorkloadSpec::registry("jpeg", ScaleClass::Test, 42).build();
        assert_eq!(w.name(), "jpeg");
    }
}
