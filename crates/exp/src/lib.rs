//! The declarative experiment engine behind `gwbench`.
//!
//! Layering (DESIGN.md §"Experiment engine"):
//!
//! - [`spec`] — the data model: every figure/table/ablation declares its
//!   run matrix as [`spec::RunSpec`] cells whose identity is a canonical
//!   key string (workload + seed + machine config + threads + d +
//!   [`spec::SPEC_REVISION`]).
//! - [`fingerprint`] — FNV-1a-128 content addresses over those keys.
//! - [`cache`] — `results/cache/<fingerprint>.json`, checksummed,
//!   byte-identical on hit.
//! - [`pool`] — a small work-stealing thread pool; results re-assemble
//!   in spec order so output is invariant under `--jobs`.
//! - [`engine`] — dedup → cache probe → execute → [`record::RunRecord`]s
//!   plus a structured [`engine::SweepLog`].
//! - [`experiments`] — the registry of all 21 reports with pure
//!   renderers over cached records.
//! - [`cli`] — the `gwbench` command line (list / run / repro-all /
//!   perf / clean) that the thin `crates/bench` wrappers invoke.
//! - [`perf`] — the perf-regression kernel harness behind `gwbench perf`
//!   (`BENCH_kernel.json`).
//! - [`profile`] — the cycle-attribution reporter behind
//!   `gwbench profile` (`results/profile.json`).

pub mod cache;
pub mod cli;
pub mod engine;
pub mod experiments;
pub mod fingerprint;
pub mod perf;
pub mod pool;
pub mod profile;
pub mod record;
pub mod render;
pub mod resilience;
pub mod scenarios;
pub mod spec;

pub use cache::{CacheRecord, Miss, ResultCache};
pub use engine::{Engine, SweepLog};
pub use experiments::{all_experiments, find_experiment, Experiment};
pub use fingerprint::Fingerprint;
pub use record::{records_fingerprint, PairView, RunRecord};
pub use spec::{ExperimentSpec, RunKind, RunSpec, Scale, WorkloadSpec, SPEC_REVISION};
