//! The run-matrix executor: cache probe → work-stealing pool → records.
//!
//! Given a list of [`RunSpec`]s the engine (1) deduplicates them by
//! fingerprint (the Fig. 7–11 experiments all declare the same sweep —
//! each distinct cell simulates once per sweep, ever), (2) probes the
//! content-addressed cache for each distinct cell, (3) executes the
//! misses on the pool, and (4) reassembles records in spec order, which
//! makes the whole pipeline's output independent of `--jobs`. Per-sweep
//! bookkeeping (wall clock, hit/miss/corruption counts, simulated
//! cycles) is returned as a [`SweepLog`] and written as JSON next to the
//! cache.

use std::time::Instant;

use ghostwriter_core::tester::{ProtocolTester, TesterConfig};
use ghostwriter_core::{BaseProtocol, GiStorePolicy, Json};
use ghostwriter_workloads::execute;

use crate::cache::{Miss, ResultCache};
use crate::pool::map_parallel;
use crate::record::RunRecord;
use crate::scenarios::run_scenario;
use crate::spec::{RunKind, RunSpec};

/// Execution policy for one sweep.
pub struct Engine {
    /// Worker threads for the run pool.
    pub jobs: usize,
    /// `false` bypasses the cache entirely (`--no-cache`): no lookups,
    /// no stores.
    pub use_cache: bool,
    /// Where cached records live.
    pub cache: ResultCache,
}

/// Per-run outcome bookkeeping.
#[derive(Clone, Debug)]
pub struct RunLog {
    /// The spec's experiment-local id.
    pub id: String,
    /// Content address (hex).
    pub fingerprint: String,
    /// Served from cache without simulating.
    pub cache_hit: bool,
    /// A cache file existed but failed integrity checks (re-run).
    pub corrupt: bool,
    /// Wall-clock time spent on this cell (lookup or simulation), ms.
    pub wall_ms: u64,
    /// Simulated cycles of the (cached or fresh) result.
    pub cycles: u64,
}

/// Whole-sweep structured summary.
#[derive(Clone, Debug, Default)]
pub struct SweepLog {
    /// One entry per *distinct* cell, in first-occurrence order.
    pub runs: Vec<RunLog>,
    /// Cells that simulated (cache misses + `--no-cache` runs).
    pub executed: usize,
    /// Cells served from cache.
    pub cache_hits: usize,
    /// Corrupt cache entries detected (subset of `executed`).
    pub corrupt: usize,
    /// Spec cells folded away by fingerprint dedup.
    pub deduped: usize,
    /// Total simulated cycles across distinct cells.
    pub sim_cycles: u64,
    /// Sweep wall-clock, ms.
    pub wall_ms: u64,
}

impl SweepLog {
    /// JSON form (written as `results/cache/last_sweep.json`).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("executed", Json::U64(self.executed as u64));
        obj.push("cache_hits", Json::U64(self.cache_hits as u64));
        obj.push("corrupt", Json::U64(self.corrupt as u64));
        obj.push("deduped", Json::U64(self.deduped as u64));
        obj.push("sim_cycles", Json::U64(self.sim_cycles));
        obj.push("wall_ms", Json::U64(self.wall_ms));
        let runs = self
            .runs
            .iter()
            .map(|r| {
                let mut o = Json::obj();
                o.push("id", Json::Str(r.id.clone()));
                o.push("fingerprint", Json::Str(r.fingerprint.clone()));
                o.push("cache_hit", Json::Bool(r.cache_hit));
                o.push("corrupt", Json::Bool(r.corrupt));
                o.push("wall_ms", Json::U64(r.wall_ms));
                o.push("cycles", Json::U64(r.cycles));
                o
            })
            .collect();
        obj.push("runs", Json::Arr(runs));
        obj
    }
}

impl Engine {
    /// Engine with the default on-repo cache.
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs,
            use_cache: true,
            cache: ResultCache::new(ResultCache::default_dir()),
        }
    }

    /// Runs every spec, returning records aligned with `specs` plus the
    /// sweep log.
    pub fn run(&self, specs: &[RunSpec]) -> (Vec<RunRecord>, SweepLog) {
        let t0 = Instant::now();
        // Dedup by fingerprint, keeping first-occurrence order.
        let mut order: Vec<usize> = Vec::new(); // indices into `specs` of distinct cells
        let mut slot_of: Vec<usize> = Vec::with_capacity(specs.len()); // spec -> distinct slot
        for (i, spec) in specs.iter().enumerate() {
            let fp = spec.fingerprint();
            match order.iter().position(|&j| specs[j].fingerprint() == fp) {
                Some(slot) => slot_of.push(slot),
                None => {
                    slot_of.push(order.len());
                    order.push(i);
                }
            }
        }
        let distinct: Vec<&RunSpec> = order.iter().map(|&i| &specs[i]).collect();

        let outcomes = map_parallel(self.jobs, distinct.clone(), |_, spec| {
            let cell_t0 = Instant::now();
            let fp = spec.fingerprint();
            let (record, hit, corrupt) = if self.use_cache {
                match self.cache.load(fp) {
                    Ok(rec) => (rec, true, false),
                    Err(miss) => {
                        let corrupt = matches!(miss, Miss::Corrupt(_));
                        if let Miss::Corrupt(why) = &miss {
                            eprintln!(
                                "gwbench: discarding corrupt cache entry {}: {why}",
                                fp.hex()
                            );
                        }
                        let rec = execute_spec(spec);
                        if let Err(e) = self.cache.store(fp, &spec.cache_key(), &rec) {
                            eprintln!("gwbench: cache store failed for {}: {e}", fp.hex());
                        }
                        (rec, false, corrupt)
                    }
                }
            } else {
                (execute_spec(spec), false, false)
            };
            let log = RunLog {
                id: spec.id.clone(),
                fingerprint: fp.hex(),
                cache_hit: hit,
                corrupt,
                wall_ms: cell_t0.elapsed().as_millis() as u64,
                cycles: record.cycles,
            };
            (record, log)
        });

        let mut log = SweepLog {
            deduped: specs.len() - distinct.len(),
            ..Default::default()
        };
        let mut records_by_slot = Vec::with_capacity(outcomes.len());
        for (record, run_log) in outcomes {
            if run_log.cache_hit {
                log.cache_hits += 1;
            } else {
                log.executed += 1;
            }
            if run_log.corrupt {
                log.corrupt += 1;
            }
            log.sim_cycles += record.cycles;
            log.runs.push(run_log);
            records_by_slot.push(record);
        }
        log.wall_ms = t0.elapsed().as_millis() as u64;
        let records = slot_of
            .into_iter()
            .map(|slot| records_by_slot[slot].clone())
            .collect();
        (records, log)
    }
}

/// Executes one cell (always simulates; cache policy lives in the
/// engine).
pub fn execute_spec(spec: &RunSpec) -> RunRecord {
    match &spec.kind {
        RunKind::Workload {
            workload,
            config,
            threads,
            d,
        } => {
            let mut w = workload.build();
            let out = execute(w.as_mut(), config.clone(), *threads, *d);
            if !config.protocol.is_ghostwriter() {
                assert_eq!(
                    out.error_percent, 0.0,
                    "{}: baseline runs must be exact",
                    spec.id
                );
            }
            RunRecord {
                cycles: out.report.cycles,
                error_percent: out.error_percent,
                stats: out.report.stats,
                trace: Vec::new(),
                extra: Vec::new(),
            }
        }
        RunKind::Scenario { scenario, protocol } => run_scenario(*scenario, *protocol),
        RunKind::Fuzz { seeds, accesses } => run_fuzz(*seeds, *accesses),
        RunKind::Resilience {
            workload,
            config,
            threads,
            d,
            faults,
        } => crate::resilience::run_resilience(workload, config, *threads, *d, faults),
    }
}

/// The random-tester sweep previously in the `protocol_fuzz` binary:
/// fully determined by (seed count, access count), so it caches like any
/// other cell.
fn run_fuzz(seeds: u64, accesses: usize) -> RunRecord {
    let mut total_msgs = 0u64;
    for seed in 0..seeds {
        let cfg = TesterConfig {
            cores: 2 + (seed % 7) as usize,
            blocks: 8 + (seed % 29) as usize,
            accesses,
            l1_sets: 1 << (seed % 3),
            l1_ways: 2,
            l2_sets: 2 << (seed % 2),
            l2_ways: 2,
            scribble_prob: if seed % 3 == 0 { 0.4 } else { 0.0 },
            gi_stores: if seed % 6 == 0 {
                GiStorePolicy::Capture
            } else {
                GiStorePolicy::Fallback
            },
            gi_timeout_prob: if seed % 5 == 0 { 0.02 } else { 0.0 },
            deliver_bias: 0.5 + (seed % 5) as f64 * 0.1,
            base: BaseProtocol::ALL[(seed % 5) as usize],
        };
        let report = ProtocolTester::new(cfg, seed).run();
        total_msgs += report.messages as u64;
    }
    RunRecord {
        extra: vec![
            ("seeds".into(), seeds as f64),
            ("accesses".into(), accesses as f64),
            ("messages".into(), total_msgs as f64),
        ],
        ..Default::default()
    }
}
