//! The `gwbench` command line.
//!
//! ```text
//! gwbench list
//! gwbench run <experiment>... [options]
//! gwbench repro-all [options]
//! gwbench faults [options]
//! gwbench perf [--smoke] [--out FILE] [--baseline FILE] [--reps N] [--quiet]
//! gwbench profile [--smoke] [--out FILE] [--overhead-check] [--phases [FILE]] [--quiet]
//! gwbench clean
//!
//! options:
//!   --jobs N          worker threads (default: available parallelism)
//!   --no-cache        bypass the result cache (no lookups, no stores)
//!   --smoke           small inputs / 4-core machine, reports under
//!                     results/smoke/
//!   --expect-cached   exit 3 if any cell simulated (CI warm-pass check)
//!   --quiet           do not print reports to stdout (files only)
//! ```
//!
//! `perf` times the engine-kernel microbenchmarks (see [`crate::perf`])
//! and writes `BENCH_kernel.json`; with `--baseline` it exits 4 on a >2x
//! throughput regression against the committed file.
//!
//! `profile` runs representative kernels with the engine's cycle-
//! attribution profiler on (see [`crate::profile`]), prints each
//! kernel's ranked per-phase table, and writes the JSON artifact; it
//! exits 4 if any kernel's per-phase cycles fail to reconcile with its
//! simulated cycle count; with `--overhead-check`, if profiling
//! perturbs the simulation's stats; and with `--phases`, if any phase's
//! cycle share exceeds its bound in the committed snapshot
//! (`PROFILE_phases.json`; regen with `UPDATE_GOLDEN=1`).
//!
//! `faults` runs the resilience campaign (see [`crate::resilience`]):
//! the fault-rate × protocol × workload grid under seeded fault
//! injection, rendered as resilience curves in `RESILIENCE.txt`. It
//! shares the engine's cache, dedup and `--jobs`-invariance with `run`;
//! fault cells are addressed by their own keys (the fault configuration
//! is part of the identity), so campaigns never collide with — or
//! invalidate — fault-free results.
//!
//! `run` concatenates the selected experiments' run matrices into ONE
//! sweep, so the engine's fingerprint dedup works across experiments:
//! `gwbench repro-all` simulates each distinct cell exactly once even
//! though Figs. 7-11 and `repro_all` all declare the same grid. Each
//! report is written to `results/<name>.txt` (or `results/smoke/` with
//! `--smoke`), the evaluation CSV to `eval.csv` alongside, and the
//! structured sweep log to `results/cache/last_sweep.json`.

use std::path::PathBuf;

use crate::engine::Engine;
use crate::experiments::{all_experiments, eval_csv, find_experiment, Experiment};
use crate::spec::Scale;

/// Parsed command line.
struct Options {
    jobs: usize,
    use_cache: bool,
    scale: Scale,
    expect_cached: bool,
    quiet: bool,
    names: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn usage() -> String {
    let mut s = String::from(
        "usage: gwbench <list|run <experiment>...|repro-all|faults|clean>\n\
         \x20      [--jobs N] [--no-cache] [--smoke] [--expect-cached] [--quiet]\n\
         \x20      gwbench perf [--smoke] [--out FILE] [--baseline FILE] [--reps N] [--quiet]\n\
         \x20      gwbench profile [--smoke] [--out FILE] [--overhead-check] [--phases [FILE]] [--quiet]\n",
    );
    s.push_str("\nexperiments:\n");
    for e in all_experiments() {
        s.push_str(&format!("  {:<22} {}\n", e.name, e.title));
    }
    s
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        jobs: default_jobs(),
        use_cache: true,
        scale: Scale::Eval,
        expect_cached: false,
        quiet: false,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be >= 1".into());
                }
            }
            "--no-cache" => opts.use_cache = false,
            "--smoke" => opts.scale = Scale::Smoke,
            "--expect-cached" => opts.expect_cached = true,
            "--quiet" => opts.quiet = true,
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            flag => return Err(format!("unknown flag `{flag}`")),
        }
    }
    Ok(opts)
}

fn report_dir(scale: Scale) -> PathBuf {
    match scale {
        Scale::Eval => PathBuf::from("results"),
        Scale::Smoke => PathBuf::from("results/smoke"),
    }
}

/// Runs the selected experiments as one deduplicated sweep. Returns the
/// process exit code.
fn run_experiments(experiments: Vec<Experiment>, opts: &Options) -> i32 {
    let scale = opts.scale;
    let specs: Vec<_> = experiments.iter().map(|e| e.spec(scale)).collect();
    let all_runs: Vec<_> = specs.iter().flat_map(|s| s.runs.iter().cloned()).collect();

    let mut engine = Engine::new(opts.jobs);
    engine.use_cache = opts.use_cache;
    let (records, log) = engine.run(&all_runs);

    // Slice the flat record vector back per experiment and render.
    let out_dir = report_dir(scale);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("gwbench: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    let mut offset = 0usize;
    for (exp, spec) in experiments.iter().zip(&specs) {
        let slice = &records[offset..offset + spec.runs.len()];
        offset += spec.runs.len();
        let report = exp.render(spec, slice);
        if !opts.quiet {
            print!("{report}");
            println!();
        }
        let path = out_dir.join(exp.output);
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("gwbench: cannot write {}: {e}", path.display());
            return 1;
        }
        if exp.name == "repro_all" {
            let csv_path = out_dir.join("eval.csv");
            if let Err(e) = std::fs::write(&csv_path, eval_csv(spec, slice)) {
                eprintln!("gwbench: cannot write {}: {e}", csv_path.display());
                return 1;
            }
        }
    }

    // Persist the structured sweep log next to the cache.
    let log_path = engine.cache.dir().join("last_sweep.json");
    if let Some(parent) = log_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&log_path, log.to_json().to_pretty()) {
        eprintln!("gwbench: cannot write {}: {e}", log_path.display());
    }

    eprintln!(
        "gwbench: {} spec cells -> {} distinct ({} deduped); {} cache hits, \
         {} executed ({} corrupt re-runs); {} sim cycles; {} ms",
        all_runs.len(),
        log.runs.len(),
        log.deduped,
        log.cache_hits,
        log.executed,
        log.corrupt,
        log.sim_cycles,
        log.wall_ms
    );

    // Transition-coverage over the cells that actually simulated this
    // invocation (cache-loaded records carry no coverage counters, so a
    // fully-warm run prints nothing).
    let mut coverage = ghostwriter_core::Coverage::default();
    for r in &records {
        coverage.merge(&r.stats.coverage);
    }
    if !coverage.is_empty() {
        let (l1_hit, l1_total) = coverage.l1_reached();
        let (dir_hit, dir_total) = coverage.dir_reached();
        eprintln!(
            "gwbench: transition coverage (freshly executed cells): \
             L1 {l1_hit}/{l1_total} rows, directory {dir_hit}/{dir_total} rows \
             (see docs/protocol-table.md)"
        );
    }

    if opts.expect_cached && log.executed > 0 {
        eprintln!(
            "gwbench: --expect-cached but {} cell(s) simulated",
            log.executed
        );
        return 3;
    }
    0
}

/// Entry point shared by the `gwbench` binary and the thin legacy
/// wrappers. `args` excludes the program name. Returns the exit code.
pub fn main_with_args(args: Vec<String>) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{}", usage());
        return 2;
    };
    match cmd.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{:<22} {}", e.name, e.title);
            }
            0
        }
        "clean" => {
            let cache = crate::cache::ResultCache::new(crate::cache::ResultCache::default_dir());
            match cache.clean() {
                Ok(n) => {
                    println!("gwbench: removed {n} cache entries");
                    0
                }
                Err(e) => {
                    eprintln!("gwbench: clean failed: {e}");
                    1
                }
            }
        }
        "perf" => {
            let mut smoke = false;
            let mut quiet = false;
            let mut out = crate::perf::DEFAULT_OUT.to_string();
            let mut baseline: Option<String> = None;
            let mut reps = 1u32;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--smoke" => smoke = true,
                    "--quiet" => quiet = true,
                    "--out" => match it.next() {
                        Some(v) => out = v.clone(),
                        None => {
                            eprintln!("gwbench: --out needs a value");
                            return 2;
                        }
                    },
                    "--baseline" => match it.next() {
                        Some(v) => baseline = Some(v.clone()),
                        None => {
                            eprintln!("gwbench: --baseline needs a value");
                            return 2;
                        }
                    },
                    "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => reps = v,
                        None => {
                            eprintln!("gwbench: --reps needs a positive integer");
                            return 2;
                        }
                    },
                    flag => {
                        eprintln!("gwbench: unknown perf flag `{flag}`\n\n{}", usage());
                        return 2;
                    }
                }
            }
            crate::perf::main_perf(smoke, &out, baseline.as_deref(), quiet, reps)
        }
        "profile" => {
            let mut smoke = false;
            let mut quiet = false;
            let mut check_overhead = false;
            let mut out = crate::profile::DEFAULT_OUT.to_string();
            let mut phases: Option<String> = None;
            let mut it = rest.iter().peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--smoke" => smoke = true,
                    "--quiet" => quiet = true,
                    "--overhead-check" => check_overhead = true,
                    "--out" => match it.next() {
                        Some(v) => out = v.clone(),
                        None => {
                            eprintln!("gwbench: --out needs a value");
                            return 2;
                        }
                    },
                    // `--phases [FILE]`: assert cycle shares against the
                    // committed snapshot (default PROFILE_phases.json);
                    // with UPDATE_GOLDEN=1 the snapshot is regenerated
                    // instead.
                    "--phases" => {
                        phases = Some(match it.peek() {
                            Some(v) if !v.starts_with('-') => it.next().unwrap().clone(),
                            _ => crate::profile::DEFAULT_PHASES.to_string(),
                        });
                    }
                    flag => {
                        eprintln!("gwbench: unknown profile flag `{flag}`\n\n{}", usage());
                        return 2;
                    }
                }
            }
            crate::profile::main_profile(smoke, &out, quiet, check_overhead, phases.as_deref())
        }
        "faults" => {
            let opts = match parse(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("gwbench: {e}\n\n{}", usage());
                    return 2;
                }
            };
            if !opts.names.is_empty() {
                eprintln!("gwbench: faults takes no experiment names");
                return 2;
            }
            crate::resilience::main_faults(
                opts.jobs,
                opts.use_cache,
                opts.scale,
                opts.expect_cached,
                opts.quiet,
            )
        }
        "run" | "repro-all" => {
            let opts = match parse(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("gwbench: {e}\n\n{}", usage());
                    return 2;
                }
            };
            let experiments: Vec<Experiment> = if cmd == "repro-all" {
                if !opts.names.is_empty() {
                    eprintln!("gwbench: repro-all takes no experiment names");
                    return 2;
                }
                all_experiments()
            } else {
                if opts.names.is_empty() {
                    eprintln!(
                        "gwbench: run needs at least one experiment name\n\n{}",
                        usage()
                    );
                    return 2;
                }
                let mut found = Vec::new();
                for name in &opts.names {
                    match find_experiment(name) {
                        Some(e) => found.push(e),
                        None => {
                            eprintln!("gwbench: unknown experiment `{name}`\n\n{}", usage());
                            return 2;
                        }
                    }
                }
                found
            };
            run_experiments(experiments, &opts)
        }
        other => {
            eprintln!("gwbench: unknown command `{other}`\n\n{}", usage());
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_flags() {
        let opts = parse(&[
            "fig01".into(),
            "--jobs".into(),
            "8".into(),
            "--no-cache".into(),
            "--smoke".into(),
            "--expect-cached".into(),
            "--quiet".into(),
        ])
        .unwrap();
        assert_eq!(opts.jobs, 8);
        assert!(!opts.use_cache);
        assert_eq!(opts.scale, Scale::Smoke);
        assert!(opts.expect_cached);
        assert!(opts.quiet);
        assert_eq!(opts.names, vec!["fig01".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&["--jobs".into()]).is_err());
        assert!(parse(&["--jobs".into(), "0".into()]).is_err());
        assert!(parse(&["--frobnicate".into()]).is_err());
    }
}
