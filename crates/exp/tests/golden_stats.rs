//! Golden-stats determinism suite.
//!
//! Two guarantees, checked at smoke scale so the suite stays in CI
//! budget:
//!
//! 1. **Jobs-invariance** — for every registered experiment, the
//!    whole-sweep record fingerprint at `--jobs 1` equals the one at
//!    `--jobs 8`. The engine reassembles pool results in spec order, so
//!    scheduling must never leak into results.
//! 2. **Golden snapshots** — for the cheap fig01/fig02/fig04 grids, the
//!    canonical record JSON matches a committed snapshot byte for byte.
//!    A legitimate simulator change regenerates them with
//!    `UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test golden_stats`.

use std::fs;
use std::path::PathBuf;

use ghostwriter_exp::record::records_fingerprint;
use ghostwriter_exp::{all_experiments, find_experiment, Engine, RunRecord, Scale};

/// Runs one spec without any cache (every cell simulates).
fn run_uncached(runs: &[ghostwriter_exp::RunSpec], jobs: usize) -> Vec<RunRecord> {
    let mut engine = Engine::new(jobs);
    engine.use_cache = false;
    engine.run(runs).0
}

#[test]
fn every_experiment_is_jobs_invariant() {
    for exp in all_experiments() {
        let spec = exp.spec(Scale::Smoke);
        if spec.runs.is_empty() {
            continue; // render-only tables
        }
        let seq = run_uncached(&spec.runs, 1);
        let par = run_uncached(&spec.runs, 8);
        assert_eq!(
            records_fingerprint(&seq),
            records_fingerprint(&par),
            "{}: records must not depend on --jobs",
            exp.name
        );
    }
}

#[test]
fn rendered_reports_are_jobs_invariant() {
    // One level up from record identity: the formatted reports (what
    // lands in results/) must also be byte-identical across jobs.
    for name in ["fig07", "repro_all"] {
        let exp = find_experiment(name).unwrap();
        let spec = exp.spec(Scale::Smoke);
        let a = exp.render(&spec, &run_uncached(&spec.runs, 1));
        let b = exp.render(&spec, &run_uncached(&spec.runs, 8));
        assert_eq!(a, b, "{name}: rendered report must not depend on --jobs");
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The cheap experiments whose full smoke-scale record sets are
/// committed as golden JSON.
const GOLDEN_EXPERIMENTS: [&str; 4] = ["fig01", "fig02", "fig04", "protocol_ladder"];

fn golden_payload(records: &[RunRecord], ids: &[String]) -> String {
    // One concatenated document: stable id header + canonical record
    // text per cell. Any counter drift shows up as a readable diff.
    let mut out = String::new();
    for (id, rec) in ids.iter().zip(records) {
        out.push_str(&format!("// run: {id}\n"));
        out.push_str(&rec.canonical_text());
    }
    out
}

#[test]
fn golden_snapshots_match() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    for name in GOLDEN_EXPERIMENTS {
        let exp = find_experiment(name).unwrap();
        let spec = exp.spec(Scale::Smoke);
        let records = run_uncached(&spec.runs, 2);
        let ids: Vec<String> = spec.runs.iter().map(|r| r.id.clone()).collect();
        let payload = golden_payload(&records, &ids);
        let path = golden_dir().join(format!("{name}.smoke.json"));
        if update {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&path, &payload).unwrap();
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden snapshot {} ({e}); regenerate with \
                 UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test golden_stats",
                path.display()
            )
        });
        assert_eq!(
            payload, want,
            "{name}: records diverged from the committed golden snapshot; if the \
             simulator change is intentional, regenerate with UPDATE_GOLDEN=1"
        );
    }
}
