//! Resilience-campaign determinism and recovery-semantics suite.
//!
//! Four guarantees, at smoke scale:
//!
//! 1. **Zero-fault preservation** — a rate-0 resilience cell produces
//!    byte-identical cycles/error/stats to the plain fault-unaware run
//!    of the same cell. Threading the injector through the machine must
//!    be invisible when every class is off.
//! 2. **Jobs-invariance** — campaign records at `--jobs 1` equal the
//!    records at `--jobs 4`; the injector draws are counter-based, so
//!    scheduling never leaks into fault placement.
//! 3. **Aborts are values** — a cell that exhausts its retry budget is
//!    recorded (`completed = 0`, abort cycle, typed description), never
//!    a panic.
//! 4. **Golden snapshot** — the full smoke-scale campaign report
//!    matches `tests/golden/resilience.smoke.txt` byte for byte.
//!    Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test resilience_tests`.

use std::fs;
use std::path::PathBuf;

use ghostwriter_exp::engine::execute_spec;
use ghostwriter_exp::record::records_fingerprint;
use ghostwriter_exp::resilience::{campaign_faults, campaign_spec, render_campaign};
use ghostwriter_exp::{Engine, RunKind, RunRecord, RunSpec, Scale};

fn run_uncached(runs: &[RunSpec], jobs: usize) -> Vec<RunRecord> {
    let mut engine = Engine::new(jobs);
    engine.use_cache = false;
    engine.run(runs).0
}

/// The campaign cells for one workload (a cheap jobs-invariance probe:
/// 15 cells instead of the full 60-cell grid).
fn cells_for(spec_runs: &[RunSpec], workload: &str) -> Vec<RunSpec> {
    spec_runs
        .iter()
        .filter(|r| r.id.starts_with(&format!("faults/{workload}/")))
        .cloned()
        .collect()
}

#[test]
fn rate_zero_cells_match_fault_unaware_runs() {
    let spec = campaign_spec(Scale::Smoke);
    assert!(campaign_faults(0).is_noop());
    for cell in spec.runs.iter().filter(|r| r.id.ends_with("/r0")) {
        let RunKind::Resilience {
            workload,
            config,
            threads,
            d,
            ..
        } = &cell.kind
        else {
            panic!("{}: campaign cells must be Resilience runs", cell.id);
        };
        let plain = execute_spec(&RunSpec {
            id: format!("{}-plain", cell.id),
            kind: RunKind::Workload {
                workload: workload.clone(),
                config: config.clone(),
                threads: *threads,
                d: *d,
            },
        });
        let faulty = execute_spec(cell);
        assert_eq!(faulty.extra_value("completed"), Some(1.0), "{}", cell.id);
        assert_eq!(faulty.cycles, plain.cycles, "{}", cell.id);
        assert_eq!(faulty.error_percent, plain.error_percent, "{}", cell.id);
        assert_eq!(
            faulty.stats.to_json().to_pretty(),
            plain.stats.to_json().to_pretty(),
            "{}: a rate-0 injector must leave the stats block byte-identical",
            cell.id
        );
    }
}

#[test]
fn campaign_records_are_jobs_invariant() {
    let spec = campaign_spec(Scale::Smoke);
    let cells = cells_for(&spec.runs, "sobel");
    assert!(!cells.is_empty());
    let seq = run_uncached(&cells, 1);
    let par = run_uncached(&cells, 4);
    assert_eq!(
        records_fingerprint(&seq),
        records_fingerprint(&par),
        "fault placement must not depend on --jobs"
    );
}

#[test]
fn retry_exhaustion_is_recorded_not_fatal() {
    // The committed campaign's known abort cell: bad_dot under MESI at
    // the hostile rate loses a transaction past the retry budget.
    let spec = campaign_spec(Scale::Smoke);
    let cell = spec
        .runs
        .iter()
        .find(|r| r.id == "faults/bad_dot/mesi/r200")
        .unwrap();
    let rec = execute_spec(cell);
    assert_eq!(rec.extra_value("completed"), Some(0.0));
    assert!(rec.cycles > 0, "abort cycle must be recorded");
    assert_eq!(rec.trace.len(), 1);
    assert!(
        rec.trace[0].contains("retry_exhausted") && rec.trace[0].contains("cycle"),
        "abort description must carry the typed row error and cycle: {}",
        rec.trace[0]
    );
}

#[test]
fn degradation_split_has_both_sides() {
    // The campaign exists to chart recovered vs degraded; at the
    // hostile rate the sobel/gw cell must show both tainted fills
    // refetched (precise recovery) and absorbed (graceful degradation).
    let spec = campaign_spec(Scale::Smoke);
    let cell = spec
        .runs
        .iter()
        .find(|r| r.id == "faults/sobel/gw/r200")
        .unwrap();
    let rec = execute_spec(cell);
    assert_eq!(rec.extra_value("completed"), Some(1.0));
    assert!(rec.extra_value("fills_refetched").unwrap_or(0.0) > 0.0);
    assert!(rec.extra_value("fills_absorbed").unwrap_or(0.0) > 0.0);
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/resilience.smoke.txt")
}

#[test]
fn campaign_report_matches_golden_snapshot() {
    let spec = campaign_spec(Scale::Smoke);
    let records = run_uncached(&spec.runs, 4);
    let report = render_campaign(&spec, &records);
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::write(&path, &report).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test resilience_tests",
            path.display()
        )
    });
    assert_eq!(
        report, want,
        "campaign report diverged from the committed snapshot; if the \
         simulator change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
