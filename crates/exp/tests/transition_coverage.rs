//! Golden transition-coverage snapshot: which named rows of the shared
//! transition table (`crates/core/src/proto.rs`) the two tier-1 drivers
//! actually exercise.
//!
//! * **sweep** — the union of the tier-1 `gwcheck` sweeps
//!   (MESI / MSI / Ghostwriter / GW-over-MOESI at 2 cores, 1 block,
//!   2 ops per core, the Ghostwriter sweep with GI-timeout
//!   interleavings, and MOESI / MOSI / MESIF at 2 cores, 2 blocks —
//!   the O/F regions need a second block);
//! * **smoke** — the union of every registered experiment's smoke-scale
//!   grid, run uncached through the real engine (the same cells
//!   `gwbench repro-all --smoke` simulates).
//!
//! The committed snapshot (`tests/golden/transition_coverage.txt`)
//! pins the y/n matrix per row; the assertions pin the contract each
//! [`Reach`] class promises: `check` rows must be sweep-covered,
//! `bench` rows covered by sweep or smoke, `never` rows by neither
//! (`unit` rows are carried by dedicated unit tests in `l1.rs` /
//! `dir.rs` and may legitimately show n/n here). A legitimate protocol
//! or grid change regenerates the snapshot with
//! `UPDATE_GOLDEN=1 cargo test -p ghostwriter-exp --test transition_coverage`.

use std::fs;
use std::path::PathBuf;

use ghostwriter_check::{sweep, ProtocolKind};
use ghostwriter_core::{Coverage, DirRowId, L1RowId, Reach};
use ghostwriter_exp::{all_experiments, Engine, Scale};

fn tier1_sweep_coverage() -> Coverage {
    let mut cov = Coverage::default();
    for (kind, blocks, gi) in [
        (ProtocolKind::Mesi, 1, false),
        (ProtocolKind::Msi, 1, false),
        (ProtocolKind::Ghostwriter, 1, false),
        (ProtocolKind::Ghostwriter, 1, true),
        (ProtocolKind::GhostwriterMoesi, 1, false),
        (ProtocolKind::Moesi, 2, false),
        (ProtocolKind::Mosi, 2, false),
        (ProtocolKind::Mesif, 2, false),
    ] {
        let report = sweep(kind, 2, blocks, 2, gi, None);
        assert!(
            report.counterexample.is_none() && !report.truncated,
            "{kind:?} tier-1 sweep must be clean and exhaustive"
        );
        cov.merge(&report.coverage);
    }
    cov
}

fn smoke_coverage() -> Coverage {
    let runs: Vec<_> = all_experiments()
        .iter()
        .flat_map(|e| e.spec(Scale::Smoke).runs)
        .collect();
    let mut engine = Engine::new(8);
    engine.use_cache = false; // cached records carry no coverage
    let (records, _) = engine.run(&runs);
    let mut cov = Coverage::default();
    for r in &records {
        cov.merge(&r.stats.coverage);
    }
    cov
}

fn yn(hit: bool) -> &'static str {
    if hit {
        "y"
    } else {
        "n"
    }
}

fn render(sweep_cov: &Coverage, smoke_cov: &Coverage) -> String {
    let mut out = String::from(
        "# Transition-coverage snapshot: row name, reach class, whether the\n\
         # tier-1 gwcheck sweeps (sweep=) and the smoke experiment grids\n\
         # (smoke=) exercised the row. Regenerate with UPDATE_GOLDEN=1.\n",
    );
    for id in L1RowId::all() {
        out.push_str(&format!(
            "l1  {:<22} {:<5} sweep={} smoke={}\n",
            id.name(),
            id.row().reach.label(),
            yn(sweep_cov.l1_hits(id) > 0),
            yn(smoke_cov.l1_hits(id) > 0),
        ));
    }
    for id in DirRowId::all() {
        out.push_str(&format!(
            "dir {:<22} {:<5} sweep={} smoke={}\n",
            id.name(),
            id.row().reach.label(),
            yn(sweep_cov.dir_hits(id) > 0),
            yn(smoke_cov.dir_hits(id) > 0),
        ));
    }
    out
}

#[test]
fn reach_classes_hold_and_snapshot_matches() {
    let sweep_cov = tier1_sweep_coverage();
    let smoke_cov = smoke_coverage();

    for id in L1RowId::all() {
        let (s, b) = (sweep_cov.l1_hits(id) > 0, smoke_cov.l1_hits(id) > 0);
        check_class(id.name(), id.row().reach, s, b);
    }
    for id in DirRowId::all() {
        let (s, b) = (sweep_cov.dir_hits(id) > 0, smoke_cov.dir_hits(id) > 0);
        check_class(id.name(), id.row().reach, s, b);
    }

    let payload = render(&sweep_cov, &smoke_cov);
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/transition_coverage.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &payload).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        payload, want,
        "transition coverage diverged from the committed snapshot; if the \
         protocol or grid change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn check_class(name: &str, reach: Reach, sweep_hit: bool, smoke_hit: bool) {
    match reach {
        Reach::Check => assert!(
            sweep_hit,
            "`{name}` is a check row but the tier-1 sweeps never reached it"
        ),
        Reach::Bench => assert!(
            sweep_hit || smoke_hit,
            "`{name}` is a bench row but neither sweeps nor smoke reached it"
        ),
        Reach::Never => assert!(
            !sweep_hit && !smoke_hit,
            "`{name}` is marked unreachable but fired"
        ),
        Reach::Unit => {} // carried by dedicated unit tests
    }
}
