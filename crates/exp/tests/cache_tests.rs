//! Cache-correctness suite: byte-identical hits, fingerprint
//! sensitivity, `--no-cache` bypass, and corruption detection.

use std::fs;
use std::path::PathBuf;

use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_exp::spec::SPEC_REVISION;
use ghostwriter_exp::{
    Engine, Fingerprint, Miss, ResultCache, RunKind, RunRecord, RunSpec, WorkloadSpec,
};
use ghostwriter_workloads::ScaleClass;

/// A unique scratch cache directory per test (no Date::now — the test
/// name keys it; cleaned before use so reruns start cold).
fn scratch(name: &str) -> ResultCache {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("gw-cache-{name}"));
    let _ = fs::remove_dir_all(&dir);
    ResultCache::new(dir)
}

fn engine_with(cache: ResultCache, jobs: usize) -> Engine {
    let mut e = Engine::new(jobs);
    e.cache = cache;
    e
}

/// A cheap real cell (one small registry workload run).
fn cheap_spec(seed: u64) -> RunSpec {
    RunSpec {
        id: format!("cheap/{seed}"),
        kind: RunKind::Workload {
            workload: WorkloadSpec::registry("histogram", ScaleClass::Test, seed),
            config: MachineConfig::small(2, Protocol::Mesi),
            threads: 2,
            d: 0,
        },
    }
}

#[test]
fn hit_returns_byte_identical_payload() {
    let engine = engine_with(scratch("hit"), 1);
    let spec = cheap_spec(1);
    let (cold, log_cold) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log_cold.executed, 1);
    let path = engine.cache.path_of(spec.fingerprint());
    let file_cold = fs::read_to_string(&path).unwrap();

    let (warm, log_warm) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log_warm.cache_hits, 1);
    assert_eq!(log_warm.executed, 0);
    // The hit record round-trips to the exact bytes the miss produced,
    // and the cache file itself is untouched.
    assert_eq!(warm[0].canonical_text(), cold[0].canonical_text());
    assert_eq!(fs::read_to_string(&path).unwrap(), file_cold);
}

#[test]
fn fingerprint_changes_with_config_seed_and_revision() {
    let base = cheap_spec(1);
    // Seed.
    assert_ne!(base.fingerprint(), cheap_spec(2).fingerprint());
    // Any config knob (here: the protocol).
    let mut gw = base.clone();
    if let RunKind::Workload { config, .. } = &mut gw.kind {
        config.protocol = Protocol::ghostwriter();
    }
    assert_ne!(base.fingerprint(), gw.fingerprint());
    // Spec revision: the key embeds the global revision, so bumping it
    // must re-address every cached result.
    let key = base.cache_key();
    assert!(key.starts_with(&format!("rev={SPEC_REVISION}|")));
    let bumped = key.replacen(
        &format!("rev={SPEC_REVISION}|"),
        &format!("rev={}|", SPEC_REVISION + 1),
        1,
    );
    assert_ne!(
        Fingerprint::of_parts(["ghostwriter-exp", &key]),
        Fingerprint::of_parts(["ghostwriter-exp", &bumped]),
    );
}

#[test]
fn no_cache_bypasses_lookups_and_stores() {
    let mut engine = engine_with(scratch("nocache"), 1);
    engine.use_cache = false;
    let spec = cheap_spec(3);
    let (_, log) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log.executed, 1);
    assert!(engine.cache.is_empty(), "--no-cache must not store");

    // Populate the cache, then verify --no-cache still re-executes.
    engine.use_cache = true;
    engine.run(std::slice::from_ref(&spec));
    assert_eq!(engine.cache.len(), 1);
    engine.use_cache = false;
    let (_, log) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log.executed, 1, "--no-cache must not read hits");
    assert_eq!(log.cache_hits, 0);
}

#[test]
fn corrupted_entries_are_detected_and_rerun() {
    let engine = engine_with(scratch("corrupt"), 1);
    let spec = cheap_spec(4);
    let (cold, _) = engine.run(std::slice::from_ref(&spec));
    let path = engine.cache.path_of(spec.fingerprint());

    // Flip one digit inside a counter value: still valid JSON, wrong
    // checksum.
    let text = fs::read_to_string(&path).unwrap();
    let needle = "\"cycles\": ";
    let pos = text.find(needle).unwrap() + needle.len();
    let mut bytes = text.into_bytes();
    bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
    fs::write(&path, &bytes).unwrap();

    match engine.cache.load::<RunRecord>(spec.fingerprint()) {
        Err(Miss::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
        other => panic!("tampered entry must be a corrupt miss, got {other:?}"),
    }

    // The engine treats it as a miss, re-runs, and repairs the entry.
    let (again, log) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log.executed, 1);
    assert_eq!(log.corrupt, 1);
    assert_eq!(again[0].canonical_text(), cold[0].canonical_text());
    let (warm, log) = engine.run(std::slice::from_ref(&spec));
    assert_eq!(log.cache_hits, 1, "repaired entry must hit again");
    assert_eq!(warm[0].canonical_text(), cold[0].canonical_text());
}

#[test]
fn truncated_entries_are_corrupt_misses() {
    let engine = engine_with(scratch("truncate"), 1);
    let spec = cheap_spec(5);
    engine.run(std::slice::from_ref(&spec));
    let path = engine.cache.path_of(spec.fingerprint());
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(matches!(
        engine.cache.load::<RunRecord>(spec.fingerprint()),
        Err(Miss::Corrupt(_))
    ));
}

#[test]
fn wrong_fingerprint_file_is_rejected() {
    // An entry stored under fingerprint A must not satisfy a lookup for
    // fingerprint B even if someone renames the file.
    let engine = engine_with(scratch("rename"), 1);
    let a = cheap_spec(6);
    let b = cheap_spec(7);
    engine.run(std::slice::from_ref(&a));
    fs::rename(
        engine.cache.path_of(a.fingerprint()),
        engine.cache.path_of(b.fingerprint()),
    )
    .unwrap();
    match engine.cache.load::<RunRecord>(b.fingerprint()) {
        Err(Miss::Corrupt(why)) => assert!(why.contains("fingerprint"), "{why}"),
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
}

#[test]
fn dedup_executes_shared_cells_once() {
    let engine = engine_with(scratch("dedup"), 4);
    // Same cell under three different labels + one distinct cell.
    let mut s1 = cheap_spec(8);
    let mut s2 = cheap_spec(8);
    let mut s3 = cheap_spec(8);
    s1.id = "a".into();
    s2.id = "b".into();
    s3.id = "c".into();
    let other = cheap_spec(9);
    let specs = vec![s1, other.clone(), s2, s3];
    let (records, log) = engine.run(&specs);
    assert_eq!(log.deduped, 2);
    assert_eq!(log.executed, 2, "one run per distinct fingerprint");
    assert_eq!(records.len(), 4, "records still align with the spec list");
    assert_eq!(records[0].canonical_text(), records[2].canonical_text());
    assert_eq!(records[2].canonical_text(), records[3].canonical_text());
    assert_ne!(records[0].canonical_text(), records[1].canonical_text());
}

#[test]
fn clean_empties_the_cache() {
    let engine = engine_with(scratch("clean"), 1);
    engine.run(&[cheap_spec(10), cheap_spec(11)]);
    assert_eq!(engine.cache.len(), 2);
    assert_eq!(engine.cache.clean().unwrap(), 2);
    assert!(engine.cache.is_empty());
}
