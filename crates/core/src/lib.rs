//! # Ghostwriter
//!
//! A from-scratch reproduction of *"Ghostwriter: A Cache Coherence
//! Protocol for Error-Tolerant Applications"* (Kao, San Miguel, Enright
//! Jerger — ICPP Workshops 2021).
//!
//! Ghostwriter extends a MESI directory protocol with two *approximate*
//! coherence states and an approximate store instruction (`scribble`):
//!
//! * **GS** — a scribble to a Shared block whose new value is within the
//!   programmer-chosen bit-wise `d`-distance of the value it overwrites
//!   updates the block *locally*, without an UPGRADE/invalidation round.
//! * **GI** — a scribble to an Invalid-but-present block within
//!   `d`-distance of the stale contents updates it locally without a GETX;
//!   a periodic per-controller timeout returns GI blocks to Invalid.
//!
//! Both states trade bounded value divergence in *annotated, error-
//! tolerant* data for large reductions in coherence misses and traffic
//! when false sharing is present.
//!
//! This crate contains the complete simulated CMP of the paper's Table 1:
//! a deterministic event-driven machine with in-order cores, private L1s
//! running MESI or Ghostwriter, an inclusive distributed shared L2 with
//! directory slices, a mesh NoC, corner memory controllers, DRAM, and a
//! CACTI/DSENT-class energy model.
//!
//! ## Quick start
//!
//! ```
//! use ghostwriter_core::{Machine, MachineConfig, Protocol};
//!
//! let mut m = Machine::new(MachineConfig::small(2, Protocol::ghostwriter()));
//! let shared = m.alloc_padded(64);
//! for t in 0..2usize {
//!     m.add_thread(move |ctx| async move {
//!         ctx.approx_begin(4).await; // #pragma approx_dist(4) + approx_begin
//!         for i in 0..100u32 {
//!             let slot = shared.add(4 * t as u64);
//!             let v = ctx.load_u32(slot).await;
//!             ctx.scribble_u32(slot, v + (i & 1)).await; // approximate store
//!         }
//!         ctx.approx_end().await;
//!     });
//! }
//! let run = m.run();
//! println!(
//!     "cycles={} GS-serviced={} traffic={}",
//!     run.report.cycles,
//!     run.report.stats.serviced_by_gs,
//!     run.report.stats.traffic.total()
//! );
//! ```

pub mod config;
pub mod ctx;
pub mod dir;
pub mod fault;
pub mod harness;
pub mod json;
pub mod l1;
pub mod layout;
pub mod machine;
pub mod msg;
pub mod op;
pub mod prof;
pub mod proto;
pub mod scribe;
pub mod stats;
pub mod stats_io;
pub mod tester;

pub use config::{BaseProtocol, GiStorePolicy, MachineConfig, Protocol};
pub use ctx::ThreadCtx;
pub use fault::{FaultConfig, RecoveryParams};
pub use harness::{node_key, Op, System, SystemConfig, Violation};
pub use json::{Json, JsonError};
pub use machine::{FinishedRun, Machine, Program, SimAbort, ThreadBody};
pub use prof::{Phase, PhaseCounters, Profile, ALL_PHASES};
pub use proto::{Coverage, DirRowId, Homing, L1RowId, ProtocolError, Reach};
pub use scribe::{bit_distance, ScribePolicy, SimilarityHistogram};
pub use stats::{SimReport, Stats};

pub use ghostwriter_mem::{Addr, BlockAddr};
