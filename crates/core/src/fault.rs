//! Deterministic fault injection and the recovery knobs that tolerate it.
//!
//! One seeded [`FaultConfig`] drives every injector in the workspace: the
//! full timing simulator perturbs its delivery path through it, and the
//! model checker's bounded-fault schedules draw from the same
//! source-restricted legality predicates ([`droppable`], [`corruptible`]).
//! All randomness is *counter-based* (splitmix64 over `(seed, stream,
//! n)`), so outcomes depend only on the configuration and the index of
//! the decision — never on iteration order, thread count or wall clock.
//! That is what makes fault campaigns byte-identical across `--jobs`
//! levels and cacheable by content address.
//!
//! `FaultConfig::default()` is the all-off configuration: no fault is
//! ever injected, no recovery state is allocated, and every hash,
//! fingerprint, cache key and golden stays byte-identical to a build
//! without this module. Fault-free runs must not pay for resilience.
//!
//! ## The fault surface is source-restricted
//!
//! Not every message class is recoverable, so not every message class is
//! faultable. The protocol's request/grant loop (L1 request → directory
//! grant) is protected end-to-end by sequence numbers, timeouts and
//! duplicate suppression; everything else — invalidations, forwards,
//! acks, unblocks, writebacks and L1→L1 owner data — is modeled as
//! riding a reliable virtual channel (in hardware: a CRC-protected,
//! credit-flow link with link-level retry). Dropping an `Unblock` or an
//! L1→L1 `Data` forward is unrecoverable by *any* endpoint-level
//! protocol because no endpoint times out waiting for it; injecting
//! such faults would only prove the obvious (the protocol deadlocks),
//! not exercise recovery. See `docs/faults.md` for the full argument.

use crate::msg::{Endpoint, PayloadOf};

/// Recovery knobs threaded into both controllers. `None` (the default
/// everywhere) means the recovery rows are dead and every message
/// carries the default wire tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RecoveryParams {
    /// Retries an L1 MSHR issues before declaring the transaction lost
    /// (`retry_exhausted`, a typed protocol error).
    pub max_retries: u32,
    /// Cycles the machine waits for a grant before the first retry.
    pub timeout_cycles: u64,
    /// Exponential backoff base: retry `k` waits
    /// `timeout_cycles * backoff_base^k` (exponent capped at 16).
    pub backoff_base: u32,
    /// Directory NACKs a fill whose L2 set is fully pinned instead of
    /// stalling it. Off by default: the resend loop it creates is
    /// livelock-prone under adversarial schedules (documented caveat).
    pub nack_on_conflict: bool,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            max_retries: 8,
            timeout_cycles: 400,
            backoff_base: 2,
            nack_on_conflict: false,
        }
    }
}

impl RecoveryParams {
    /// Parameters for the model checker: timing is meaningless there
    /// (retries are explicit schedule actions), and the retry budget is
    /// kept small so the reachable state space stays bounded.
    pub fn checker() -> Self {
        RecoveryParams {
            max_retries: 2,
            timeout_cycles: 1,
            backoff_base: 1,
            nack_on_conflict: false,
        }
    }

    /// Stable textual form for cache keys.
    pub fn key(&self) -> String {
        format!(
            "r{},t{},b{},n{}",
            self.max_retries, self.timeout_cycles, self.backoff_base, self.nack_on_conflict as u8
        )
    }
}

/// Independent decision streams drawn from one seed. Each injection
/// point owns a stream so adding a new fault class never perturbs the
/// draws of an existing one.
pub mod stream {
    /// Per-message drop decision.
    pub const DROP: u64 = 1;
    /// Per-message duplicate decision.
    pub const DUP: u64 = 2;
    /// Per-message extra-delay decision.
    pub const DELAY: u64 = 3;
    /// Per-message payload corruption decision.
    pub const CORRUPT: u64 = 4;
    /// Which bit of the 512-bit block a corruption flips.
    pub const CORRUPT_BIT: u64 = 5;
    /// Per-tick resident-line bit-flip decision (SEU model).
    pub const LINE_FLIP: u64 = 6;
    /// Which resident line / bit a line flip hits.
    pub const LINE_FLIP_AT: u64 = 7;
    /// Per-tick forced GI-timeout-storm decision.
    pub const GI_STORM: u64 = 8;
}

/// What the injector decided for one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message.
    Drop,
    /// Deliver twice (the copy takes the same latency).
    Duplicate,
    /// Deliver after this many extra cycles.
    Delay(u64),
}

/// Deterministic, seeded fault-injection configuration.
///
/// Rates are in permille (0–1000) so campaign grids can express rates
/// below 1% exactly. The default is all-off; [`FaultConfig::is_noop`]
/// gates every injector so fault-free runs skip the draw entirely.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct FaultConfig {
    /// Root seed; all decision streams derive from it.
    pub seed: u64,
    /// Per-message drop probability (droppable classes only), permille.
    pub drop_permille: u16,
    /// Per-message duplication probability, permille.
    pub dup_permille: u16,
    /// Per-message extra-delay probability, permille.
    pub delay_permille: u16,
    /// Extra cycles a delayed message waits.
    pub delay_cycles: u64,
    /// Per-message payload bit-flip probability (corruptible classes
    /// only), permille. Flipped payloads carry the taint bit (a
    /// detectable ECC mismatch).
    pub corrupt_permille: u16,
    /// Per-tick, per-core probability of flipping one bit in a resident
    /// L1 line (an *undetected* soft error), permille.
    pub line_flip_permille: u16,
    /// Per-tick, per-core probability of forcing a GI timeout sweep
    /// (timeout-storm model), permille.
    pub gi_storm_permille: u16,
    /// Period of the background fault tick driving line flips and GI
    /// storms. 0 disables the tick even if the rates are nonzero.
    pub tick_cycles: u64,
    /// Recovery knobs; `None` leaves the recovery rows dead.
    pub recovery: Option<RecoveryParams>,
}

impl FaultConfig {
    /// True when no injector can ever fire and recovery is off — the
    /// configuration under which every code path must be byte-identical
    /// to a fault-unaware build.
    pub fn is_noop(&self) -> bool {
        self.drop_permille == 0
            && self.dup_permille == 0
            && self.delay_permille == 0
            && self.corrupt_permille == 0
            && (self.tick_cycles == 0
                || (self.line_flip_permille == 0 && self.gi_storm_permille == 0))
            && self.recovery.is_none()
    }

    /// True when any per-message injector is live.
    pub fn perturbs_messages(&self) -> bool {
        self.drop_permille > 0
            || self.dup_permille > 0
            || self.delay_permille > 0
            || self.corrupt_permille > 0
    }

    /// True when the background fault tick should run.
    pub fn ticks(&self) -> bool {
        self.tick_cycles > 0 && (self.line_flip_permille > 0 || self.gi_storm_permille > 0)
    }

    /// Stable textual form for content-addressed cache keys.
    pub fn key(&self) -> String {
        let rec = match &self.recovery {
            Some(r) => r.key(),
            None => "off".to_string(),
        };
        format!(
            "s{}|d{}|u{}|y{}x{}|c{}|f{}|g{}|t{}|rec={}",
            self.seed,
            self.drop_permille,
            self.dup_permille,
            self.delay_permille,
            self.delay_cycles,
            self.corrupt_permille,
            self.line_flip_permille,
            self.gi_storm_permille,
            self.tick_cycles,
            rec
        )
    }

    /// Raw draw on `stream` at counter `n`: uniform `u64`.
    #[inline]
    pub fn draw(&self, stream: u64, n: u64) -> u64 {
        mix(self.seed, stream, n)
    }

    /// Permille draw on `stream` at counter `n`: true with probability
    /// `permille / 1000`.
    #[inline]
    fn hit(&self, stream: u64, n: u64, permille: u16) -> bool {
        permille > 0 && self.draw(stream, n) % 1000 < u64::from(permille)
    }

    /// Transport fate of the `n`-th faultable message. The classes are
    /// drawn in priority order (drop ≻ duplicate ≻ delay) from
    /// independent streams, so enabling one class never changes the
    /// decisions of another at the same counter.
    pub fn fate(&self, n: u64) -> Fate {
        if self.hit(stream::DROP, n, self.drop_permille) {
            Fate::Drop
        } else if self.hit(stream::DUP, n, self.dup_permille) {
            Fate::Duplicate
        } else if self.hit(stream::DELAY, n, self.delay_permille) {
            Fate::Delay(self.delay_cycles)
        } else {
            Fate::Deliver
        }
    }

    /// Bit to flip in the `n`-th corruptible payload, if the corruption
    /// draw hits. The index is over the 512 bits of the block.
    pub fn corrupt_bit(&self, n: u64) -> Option<u32> {
        if self.hit(stream::CORRUPT, n, self.corrupt_permille) {
            Some((self.draw(stream::CORRUPT_BIT, n) % 512) as u32)
        } else {
            None
        }
    }

    /// Line-flip decision for core `core` at tick `tick`: which
    /// (resident-line draw, bit) to flip, if the draw hits. The line
    /// draw is reduced modulo the number of resident lines by the cache.
    pub fn line_flip(&self, tick: u64, core: usize) -> Option<(u64, u32)> {
        let n = tick.wrapping_mul(0x10001).wrapping_add(core as u64);
        if self.hit(stream::LINE_FLIP, n, self.line_flip_permille) {
            let at = self.draw(stream::LINE_FLIP_AT, n);
            Some((at >> 9, (at % 512) as u32))
        } else {
            None
        }
    }

    /// GI-storm decision for core `core` at tick `tick`.
    pub fn gi_storm(&self, tick: u64, core: usize) -> bool {
        let n = tick.wrapping_mul(0x10001).wrapping_add(core as u64);
        self.hit(stream::GI_STORM, n, self.gi_storm_permille)
    }
}

/// Counter-based splitmix64: a stateless PRNG draw fully determined by
/// `(seed, stream, n)`.
#[inline]
pub fn mix(seed: u64, stream: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(n.wrapping_mul(0x94d049bb133111eb))
        .wrapping_add(0x2545f4914f6cdd1d);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// True if the injector may drop or duplicate this message.
///
/// Exactly the request/grant loop: L1→Dir requests (the requestor's
/// retry timer recovers a loss) and Dir→L1 grants (`Data`/`UpgAck` —
/// the same timer plus the directory's retained-grant resend recover
/// it). Every other class rides the modeled-reliable virtual channel.
/// Note `Data` is droppable only *from the directory*: an L1→L1 owner
/// forward (`FwdGets` relay) has no requestor-side timeout that could
/// distinguish it from a directory grant loss, and retrying the
/// original request would be suppressed as a duplicate at the
/// directory — so owner forwards are not on the faultable surface.
pub fn droppable<D>(src: Endpoint, payload: &PayloadOf<D>) -> bool {
    match payload {
        PayloadOf::Gets | PayloadOf::Getx | PayloadOf::Upgrade => matches!(src, Endpoint::L1(_)),
        PayloadOf::Data { .. } | PayloadOf::UpgAck => matches!(src, Endpoint::Dir(_)),
        _ => false,
    }
}

/// True if the injector may flip payload bits in this message (setting
/// the taint bit): demand fills from the directory and DRAM fills to
/// the directory — the two hops where a receiver-side detect-and-refetch
/// protocol exists.
pub fn corruptible<D>(src: Endpoint, payload: &PayloadOf<D>) -> bool {
    match payload {
        PayloadOf::Data { .. } => matches!(src, Endpoint::Dir(_)),
        PayloadOf::MemData { .. } => matches!(src, Endpoint::Mem(_)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        let f = FaultConfig::default();
        assert!(f.is_noop());
        assert!(!f.perturbs_messages());
        assert!(!f.ticks());
        for n in 0..1000 {
            assert_eq!(f.fate(n), Fate::Deliver);
            assert_eq!(f.corrupt_bit(n), None);
        }
    }

    #[test]
    fn draws_are_counter_based_and_order_free() {
        let f = FaultConfig {
            seed: 42,
            drop_permille: 100,
            dup_permille: 100,
            corrupt_permille: 50,
            ..FaultConfig::default()
        };
        // Same (seed, counter) → same decision, regardless of call order.
        let forward: Vec<_> = (0..64).map(|n| f.fate(n)).collect();
        let backward: Vec<_> = (0..64).rev().map(|n| f.fate(n)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Different seeds decorrelate.
        let g = FaultConfig { seed: 43, ..f };
        assert_ne!(
            (0..256).map(|n| f.fate(n)).collect::<Vec<_>>(),
            (0..256).map(|n| g.fate(n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rates_are_roughly_honored() {
        let f = FaultConfig {
            seed: 7,
            drop_permille: 250,
            ..FaultConfig::default()
        };
        let drops = (0..10_000).filter(|&n| f.fate(n) == Fate::Drop).count();
        assert!((2000..3000).contains(&drops), "drop count {drops}");
    }

    #[test]
    fn enabling_one_class_does_not_move_another() {
        // Drop decisions at each counter are identical whether or not
        // duplication is also enabled (independent streams).
        let a = FaultConfig {
            seed: 9,
            drop_permille: 200,
            ..FaultConfig::default()
        };
        let b = FaultConfig {
            dup_permille: 500,
            ..a
        };
        for n in 0..2000 {
            assert_eq!(a.fate(n) == Fate::Drop, b.fate(n) == Fate::Drop);
        }
    }

    #[test]
    fn fault_surface_is_source_restricted() {
        use crate::msg::Grant;
        use ghostwriter_mem::BlockData;
        let d = BlockData::zeroed();
        let data = PayloadOf::Data {
            data: d,
            grant: Grant::Shared,
        };
        // Grants are droppable from the directory, not from an L1 owner
        // forward (that channel has no requestor-side recovery).
        assert!(droppable(Endpoint::Dir(0), &data));
        assert!(!droppable(Endpoint::L1(1), &data));
        assert!(droppable(Endpoint::L1(0), &PayloadOf::<BlockData>::Gets));
        // Completion and ack traffic rides the reliable channel.
        assert!(!droppable(
            Endpoint::L1(0),
            &PayloadOf::<BlockData>::Unblock
        ));
        assert!(!droppable(Endpoint::L1(0), &PayloadOf::<BlockData>::InvAck));
        assert!(!droppable(Endpoint::Dir(0), &PayloadOf::<BlockData>::Inv));
        // Corruption: directory fills and DRAM fills only.
        assert!(corruptible(Endpoint::Dir(0), &data));
        assert!(!corruptible(Endpoint::L1(1), &data));
        assert!(corruptible(
            Endpoint::Mem(0),
            &PayloadOf::MemData { data: d }
        ));
        assert!(!corruptible(
            Endpoint::L1(0),
            &PayloadOf::DataToDir {
                data: d,
                xfer: crate::msg::OwnerXfer::Dropped
            }
        ));
    }

    #[test]
    fn keys_are_stable_and_distinguishing() {
        let base = FaultConfig::default();
        assert_eq!(base.key(), "s0|d0|u0|y0x0|c0|f0|g0|t0|rec=off");
        let mut with = base;
        with.drop_permille = 5;
        with.recovery = Some(RecoveryParams::default());
        assert_eq!(with.key(), "s0|d5|u0|y0x0|c0|f0|g0|t0|rec=r8,t400,b2,n0");
        assert_ne!(base.key(), with.key());
    }
}
