//! In-simulator cycle-attribution profiler.
//!
//! When enabled (see [`crate::Machine::enable_profiling`]), the engine
//! charges every simulated cycle to the phase — and the component —
//! whose event advanced the clock to it, and samples host wall-clock
//! time per phase. Two invariants make the numbers trustworthy:
//!
//! 1. **Exact cycle reconciliation.** Each batch of same-cycle events
//!    popped from the event queue charges the clock advance (the delta
//!    from the previous batch) to the phase of the batch's *first*
//!    event; later events in the batch charge zero cycles but still
//!    count. The main loop ends at the final thread's finishing fetch,
//!    whose time is the report's `cycles`, so the per-phase cycle
//!    counters sum to exactly the machine's cycle count. Post-run drain
//!    activity (in-flight writebacks past the last finish) is tracked
//!    separately as `drain_cycles` and excluded from the reconciled
//!    total, mirroring the report.
//!
//! 2. **Zero cost when disabled.** The engine holds an
//!    `Option<Box<Profiler>>`; with profiling off nothing in the hot
//!    path reads the wall clock or touches these counters, and no
//!    statistic surfaced in stats JSON depends on the profiler — runs
//!    with the profiler compiled in but off are byte-identical.
//!
//! Wall-clock attribution is *sampled*: every [`SAMPLE_PERIOD`]-th
//! occurrence of a phase is timed with `std::time::Instant` and the
//! total is estimated by scaling. Sampling keeps the profiled run's
//! overhead low enough that the attribution ranking still reflects the
//! unprofiled hot path.

use std::time::Instant;

use crate::json::Json;

/// Every how many phase occurrences one wall-clock sample is taken.
pub const SAMPLE_PERIOD: u64 = 64;

/// Where a popped event (and the cycles it advanced the clock by) is
/// charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Stepping a workload thread and dispatching its L1 access.
    CoreStep = 0,
    /// Delivering a protocol message to an L1 controller.
    L1Dispatch = 1,
    /// Delivering a protocol message to a directory bank.
    DirDispatch = 2,
    /// Delivering a request to a memory controller / DRAM.
    Memory = 3,
    /// Periodic maintenance events (GI timeout sweeps, context
    /// switches) and event-queue bookkeeping.
    QueueChurn = 4,
    /// Route computation and message injection (`send`). Routing is
    /// never a heap event, so it charges no simulated cycles of its
    /// own — a message's flight time lands in the phase of the
    /// delivery it delays — but it counts events (messages sent),
    /// accumulates their latency cycles as an overlap metric, and is
    /// sampled for wall time like every other phase.
    Routing = 5,
}

/// Number of phases (array size).
pub const NUM_PHASES: usize = 6;

/// Phases in report order.
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::CoreStep,
    Phase::L1Dispatch,
    Phase::DirDispatch,
    Phase::Memory,
    Phase::QueueChurn,
    Phase::Routing,
];

impl Phase {
    /// Stable snake_case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CoreStep => "core_step",
            Phase::L1Dispatch => "l1_dispatch",
            Phase::DirDispatch => "dir_dispatch",
            Phase::Memory => "memory",
            Phase::QueueChurn => "queue_churn",
            Phase::Routing => "routing",
        }
    }
}

/// Counters for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseCounters {
    /// Events charged to this phase.
    pub events: u64,
    /// Simulated cycles charged to this phase (batch-leader deltas).
    /// For [`Phase::Routing`] this is instead the sum of per-message
    /// delivery latencies — an overlap metric, excluded from the
    /// reconciled total.
    pub cycles: u64,
    /// Wall-clock nanoseconds measured across `wall_samples` samples.
    pub wall_ns: u64,
    /// Number of wall-clock samples taken.
    pub wall_samples: u64,
}

impl PhaseCounters {
    /// Estimated total wall nanoseconds for the phase: measured sample
    /// time scaled by the events-per-sample ratio.
    pub fn est_wall_ns(&self) -> u64 {
        if self.wall_samples == 0 {
            return 0;
        }
        let per_sample = self.wall_ns as f64 / self.wall_samples as f64;
        (per_sample * self.events as f64) as u64
    }
}

/// The finished attribution report, attached to
/// [`crate::machine::FinishedRun::profile`] when profiling was on.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-phase counters, indexed by `Phase as usize`.
    pub phases: [PhaseCounters; NUM_PHASES],
    /// Per-core cycles (core stepping + L1 dispatch + maintenance on
    /// that core), same charging rule as the phases.
    pub core_cycles: Vec<u64>,
    /// Per-core event counts.
    pub core_events: Vec<u64>,
    /// Per-directory-bank cycles.
    pub bank_cycles: Vec<u64>,
    /// Per-directory-bank event counts.
    pub bank_events: Vec<u64>,
    /// Cycles charged to memory controllers.
    pub mem_cycles: u64,
    /// Simulated cycles spent in the post-completion drain (in-flight
    /// writebacks after the last thread finished); not part of the
    /// reconciled total, mirroring the report's `cycles`.
    pub drain_cycles: u64,
    /// Events dispatched during the drain.
    pub drain_events: u64,
}

impl Profile {
    /// Sum of the reconciled per-phase cycle counters (everything
    /// except the routing overlap metric). Equals the report's
    /// `cycles` by construction.
    pub fn attributed_cycles(&self) -> u64 {
        ALL_PHASES
            .iter()
            .filter(|p| **p != Phase::Routing)
            .map(|p| self.phases[*p as usize].cycles)
            .sum()
    }

    /// The report as JSON: phases ranked by estimated wall time
    /// (descending), per-component tables, and the reconciliation
    /// totals.
    pub fn to_json(&self) -> Json {
        let mut ranked: Vec<Phase> = ALL_PHASES.to_vec();
        ranked.sort_by_key(|p| std::cmp::Reverse(self.phases[*p as usize].est_wall_ns()));
        let mut phases = Vec::new();
        for p in ranked {
            let c = &self.phases[p as usize];
            let mut o = Json::obj();
            o.push("phase", Json::Str(p.name().into()));
            o.push("events", Json::U64(c.events));
            o.push("cycles", Json::U64(c.cycles));
            o.push("wall_ns_sampled", Json::U64(c.wall_ns));
            o.push("wall_samples", Json::U64(c.wall_samples));
            o.push("wall_ns_est", Json::U64(c.est_wall_ns()));
            phases.push(o);
        }
        let mut j = Json::obj();
        j.push("phases", Json::Arr(phases));
        j.push("attributed_cycles", Json::U64(self.attributed_cycles()));
        j.push("drain_cycles", Json::U64(self.drain_cycles));
        j.push("drain_events", Json::U64(self.drain_events));
        j.push(
            "core_cycles",
            Json::Arr(self.core_cycles.iter().map(|&c| Json::U64(c)).collect()),
        );
        j.push(
            "core_events",
            Json::Arr(self.core_events.iter().map(|&c| Json::U64(c)).collect()),
        );
        j.push(
            "bank_cycles",
            Json::Arr(self.bank_cycles.iter().map(|&c| Json::U64(c)).collect()),
        );
        j.push(
            "bank_events",
            Json::Arr(self.bank_events.iter().map(|&c| Json::U64(c)).collect()),
        );
        j.push("mem_cycles", Json::U64(self.mem_cycles));
        j
    }
}

/// The live profiler the engine threads through its hot path.
///
/// All methods are `#[inline]`; the engine only calls them behind an
/// `Option` check, so the disabled path costs one branch per event.
#[derive(Debug, Default)]
pub struct Profiler {
    profile: Profile,
    /// Stack of in-flight wall spans: `None` entries are occurrences
    /// that were not due for sampling. Spans nest (a dispatch span
    /// encloses the routing spans of the messages it sends), so wall
    /// estimates are *inclusive* — a child's time also counts toward
    /// its parent's phase.
    open_spans: Vec<Option<(Phase, Instant)>>,
    /// True while the engine is in the post-completion drain.
    draining: bool,
}

impl Profiler {
    /// Creates a profiler for a machine with `cores` cores/banks.
    pub fn new(cores: usize) -> Self {
        Self {
            profile: Profile {
                core_cycles: vec![0; cores],
                core_events: vec![0; cores],
                bank_cycles: vec![0; cores],
                bank_events: vec![0; cores],
                ..Profile::default()
            },
            open_spans: Vec::with_capacity(4),
            draining: false,
        }
    }

    /// Switches cycle charging to the drain counters.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Charges `delta` cycles to `phase` (and the event itself); the
    /// engine passes the clock advance for a batch's first event and
    /// zero for the rest.
    #[inline]
    pub fn event(&mut self, phase: Phase, component: Component, delta: u64) {
        if self.draining {
            self.profile.drain_cycles += delta;
            self.profile.drain_events += 1;
            return;
        }
        let c = &mut self.profile.phases[phase as usize];
        c.events += 1;
        c.cycles += delta;
        match component {
            Component::Core(i) => {
                self.profile.core_events[i] += 1;
                self.profile.core_cycles[i] += delta;
            }
            Component::Bank(i) => {
                self.profile.bank_events[i] += 1;
                self.profile.bank_cycles[i] += delta;
            }
            Component::Mem => self.profile.mem_cycles += delta,
        }
    }

    /// Records a routed message and its delivery latency (overlap
    /// metric; charges no reconciled cycles).
    #[inline]
    pub fn route(&mut self, latency: u64) {
        if self.draining {
            return;
        }
        let c = &mut self.profile.phases[Phase::Routing as usize];
        c.events += 1;
        c.cycles += latency;
    }

    /// Opens a wall-clock span for `phase`, reading the clock only when
    /// this occurrence is due for sampling. Every call must be paired
    /// with an [`Profiler::end_span`].
    #[inline]
    pub fn begin_span(&mut self, phase: Phase) {
        let c = &self.profile.phases[phase as usize];
        // `events` counts occurrences already recorded; sample the
        // first and then every SAMPLE_PERIOD-th occurrence of a phase.
        let due = c.events.is_multiple_of(SAMPLE_PERIOD);
        self.open_spans.push(due.then(|| (phase, Instant::now())));
    }

    /// Closes the innermost span opened by [`Profiler::begin_span`].
    #[inline]
    pub fn end_span(&mut self) {
        if let Some(Some((phase, start))) = self.open_spans.pop() {
            let ns = start.elapsed().as_nanos() as u64;
            let c = &mut self.profile.phases[phase as usize];
            c.wall_ns += ns;
            c.wall_samples += 1;
        }
    }

    /// Consumes the profiler into its report.
    pub fn finish(self) -> Profile {
        self.profile
    }
}

/// The component a cycle/event is charged to.
#[derive(Clone, Copy, Debug)]
pub enum Component {
    /// Core `i` and its private L1.
    Core(usize),
    /// Directory bank `i`.
    Bank(usize),
    /// A memory controller.
    Mem,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_accumulate_per_phase_and_component() {
        let mut p = Profiler::new(2);
        p.event(Phase::CoreStep, Component::Core(0), 10);
        p.event(Phase::L1Dispatch, Component::Core(1), 5);
        p.event(Phase::L1Dispatch, Component::Core(1), 0);
        p.event(Phase::DirDispatch, Component::Bank(0), 7);
        p.route(42);
        let prof = p.finish();
        assert_eq!(prof.phases[Phase::CoreStep as usize].cycles, 10);
        assert_eq!(prof.phases[Phase::L1Dispatch as usize].events, 2);
        assert_eq!(prof.phases[Phase::L1Dispatch as usize].cycles, 5);
        assert_eq!(prof.core_cycles, vec![10, 5]);
        assert_eq!(prof.bank_cycles, vec![7, 0]);
        // Routing latency is an overlap metric, not attributed cycles.
        assert_eq!(prof.phases[Phase::Routing as usize].cycles, 42);
        assert_eq!(prof.attributed_cycles(), 22);
        assert_eq!(
            prof.core_cycles.iter().sum::<u64>() + prof.bank_cycles.iter().sum::<u64>(),
            22
        );
    }

    #[test]
    fn drain_events_are_kept_out_of_the_reconciled_total() {
        let mut p = Profiler::new(1);
        p.event(Phase::CoreStep, Component::Core(0), 3);
        p.begin_drain();
        p.event(Phase::DirDispatch, Component::Bank(0), 9);
        let prof = p.finish();
        assert_eq!(prof.attributed_cycles(), 3);
        assert_eq!(prof.drain_cycles, 9);
        assert_eq!(prof.drain_events, 1);
        assert_eq!(prof.bank_events, vec![0]);
    }

    #[test]
    fn wall_sampling_scales_to_event_count() {
        let mut p = Profiler::new(1);
        for _ in 0..(2 * SAMPLE_PERIOD) {
            p.begin_span(Phase::CoreStep);
            p.end_span();
            p.event(Phase::CoreStep, Component::Core(0), 1);
        }
        let prof = p.finish();
        let c = &prof.phases[Phase::CoreStep as usize];
        assert_eq!(c.wall_samples, 2);
        assert_eq!(c.events, 2 * SAMPLE_PERIOD);
        // The estimate extrapolates sampled time across all events.
        assert!(c.est_wall_ns() >= c.wall_ns);
    }

    #[test]
    fn report_json_parses_and_ranks() {
        let mut p = Profiler::new(1);
        p.event(Phase::CoreStep, Component::Core(0), 4);
        let j = p.finish().to_json();
        let text = j.to_pretty();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(
            back.field("attributed_cycles").unwrap().as_u64().unwrap(),
            4
        );
        assert_eq!(
            back.field("phases").unwrap().as_arr().unwrap().len(),
            NUM_PHASES
        );
    }
}
