//! Simulation statistics and the end-of-run report.
//!
//! Every quantity the paper's evaluation section plots is collected here:
//! coherence traffic by message class (Fig. 8), approximate-state service
//! counters (Fig. 7), energy events (Fig. 9), cycle counts (Figs. 1/10),
//! and the store value-similarity histogram (Fig. 2).

use ghostwriter_energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use ghostwriter_noc::{MessageKind, TrafficStats};

use crate::proto::Coverage;
use crate::scribe::SimilarityHistogram;

/// Raw counters accumulated during a run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    // ---- instruction stream ----
    /// Loads issued by all cores.
    pub loads: u64,
    /// Conventional stores issued (including scribbles demoted outside
    /// approximate regions or under the MESI baseline).
    pub stores: u64,
    /// Scribbles issued inside an active approximate region.
    pub scribbles: u64,
    /// Explicit compute cycles charged via `ctx.work`.
    pub work_cycles: u64,
    /// Barrier episodes.
    pub barriers: u64,

    // ---- L1 behaviour ----
    /// Loads that hit in the L1 (any readable state, including GS/GI).
    pub l1_load_hits: u64,
    /// Loads that missed (GETS issued).
    pub l1_load_misses: u64,
    /// Stores/scribbles serviced without a coherence transaction.
    pub l1_store_hits: u64,
    /// Stores/scribbles that took a coherence transaction
    /// (GETX or UPGRADE).
    pub l1_store_misses: u64,

    // ---- Ghostwriter counters (Fig. 7) ----
    /// Scribbles on an S block that passed the d-check: `S → GS`.
    pub serviced_by_gs: u64,
    /// Stores (or failed scribbles) on an S block: conventional UPGRADE.
    pub upgrades_from_s: u64,
    /// Scribbles on a tag-present Invalid block that passed: `I → GI`.
    pub serviced_by_gi: u64,
    /// Stores (or failed scribbles) on a tag-present Invalid block:
    /// conventional GETX.
    pub stores_on_invalid_tagged: u64,
    /// Subsequent store/scribble hits on GS blocks.
    pub gs_hits: u64,
    /// Load hits on GI blocks (stale reads).
    pub gi_load_hits: u64,
    /// Store/scribble hits on GI blocks (hidden writes).
    pub gi_store_hits: u64,
    /// Conventional stores on GS blocks that published via UPGRADE.
    pub upgrades_from_gs: u64,
    /// GS blocks returned to I by a remote invalidation (updates lost).
    pub gs_invalidations: u64,
    /// GI blocks returned to I by the periodic timeout (updates lost).
    pub gi_timeouts: u64,
    /// GI windows ended early by a failed scribble falling back to a
    /// conventional GETX (updates lost, store published).
    pub gi_breaks: u64,
    /// GS/GI blocks evicted by replacement (updates lost).
    pub approx_evictions: u64,

    // ---- protocol family (MOESI/MOSI/MESIF) ----
    /// GETS serviced by a dirty owner that retained ownership
    /// (MOESI/MOSI `O`): the L2 fill was elided — the dirty-sharing
    /// writeback elision.
    pub wb_elisions: u64,
    /// GETS serviced by the clean forwarder (MESIF `F`) without
    /// touching memory.
    pub clean_forwards: u64,

    // ---- memory system ----
    /// DRAM block reads / writes.
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// L2 recalls (inclusive-victim invalidations of L1 copies).
    pub l2_recalls: u64,

    // ---- fault injection & recovery (`core::fault`) ----
    // All zero in fault-free runs. Deliberately *not* added to
    // `stats_io::for_each_stats_counter!` — record JSON stays
    // byte-identical; campaigns surface these via `RunRecord.extra`.
    /// Request resends driven by the L1 retry timeout.
    pub retries: u64,
    /// Request resends driven by a directory conflict NACK.
    pub nack_retries: u64,
    /// Stale/duplicate grants dropped by sequence-number suppression.
    pub stale_replies: u64,
    /// Duplicate requests the directory suppressed without a resend.
    pub dup_reqs_dropped: u64,
    /// Duplicate requests answered by resending the retained grant.
    pub grant_resends: u64,
    /// Fills NACKed by the directory (nack_on_conflict policy).
    pub conflict_nacks: u64,
    /// Tainted fills absorbed into the approximate dataflow.
    pub corrupt_fills_absorbed: u64,
    /// Tainted fills quarantined and refetched (precise data).
    pub corrupt_fills_refetched: u64,
    /// Tainted DRAM fills the directory discarded and refetched.
    pub corrupt_mem_refetches: u64,
    /// Messages the injector dropped / duplicated / delayed / corrupted.
    pub faults_dropped: u64,
    pub faults_duplicated: u64,
    pub faults_delayed: u64,
    pub faults_corrupted: u64,
    /// Resident-line bits flipped by the SEU injector.
    pub faults_line_flips: u64,
    /// GI timeout sweeps forced by the storm injector.
    pub gi_storms: u64,

    // ---- figures ----
    /// NoC traffic by message class.
    pub traffic: TrafficStats,
    /// Per-event energy counts.
    pub energy_events: EnergyEvents,
    /// Fig. 2 store value-similarity histogram.
    pub similarity: SimilarityHistogram,

    // ---- observability ----
    /// Per-row transition-table hit counters (`core::proto`). Not
    /// serialized into records: coverage reports which table rows a run
    /// exercised, it is not part of the run's result.
    pub coverage: Coverage,
}

impl Stats {
    /// Fraction (0..=1) of stores that would have missed on a Shared
    /// block but were serviced by `GS` — the paper's Fig. 7a ("store/
    /// scribble hits on GS", §4.1): GS entries plus subsequent GS hits,
    /// over those plus the conventional upgrades.
    pub fn gs_service_fraction(&self) -> f64 {
        let serviced = self.serviced_by_gs + self.gs_hits;
        ratio(
            serviced,
            serviced + self.upgrades_from_s + self.upgrades_from_gs,
        )
    }

    /// Fraction of stores that would have missed on an Invalid
    /// (tag-present) block but were serviced by `GI` — Fig. 7b: GI
    /// entries plus store hits on GI, over those plus conventional
    /// stores on invalid-tagged blocks.
    pub fn gi_service_fraction(&self) -> f64 {
        let serviced = self.serviced_by_gi + self.gi_store_hits;
        ratio(serviced, serviced + self.stores_on_invalid_tagged)
    }

    /// All demand accesses that reached the L1.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_load_hits + self.l1_load_misses + self.l1_store_hits + self.l1_store_misses
    }

    /// Demand misses (coherence transactions started).
    pub fn l1_misses(&self) -> u64 {
        self.l1_load_misses + self.l1_store_misses
    }
}

impl Stats {
    /// Folds `other` into `self` (used to combine per-core and global
    /// statistics into the run total).
    pub fn merge_from(&mut self, other: &Stats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.scribbles += other.scribbles;
        self.work_cycles += other.work_cycles;
        self.barriers += other.barriers;
        self.l1_load_hits += other.l1_load_hits;
        self.l1_load_misses += other.l1_load_misses;
        self.l1_store_hits += other.l1_store_hits;
        self.l1_store_misses += other.l1_store_misses;
        self.serviced_by_gs += other.serviced_by_gs;
        self.upgrades_from_s += other.upgrades_from_s;
        self.serviced_by_gi += other.serviced_by_gi;
        self.stores_on_invalid_tagged += other.stores_on_invalid_tagged;
        self.gs_hits += other.gs_hits;
        self.gi_load_hits += other.gi_load_hits;
        self.gi_store_hits += other.gi_store_hits;
        self.upgrades_from_gs += other.upgrades_from_gs;
        self.gs_invalidations += other.gs_invalidations;
        self.gi_timeouts += other.gi_timeouts;
        self.gi_breaks += other.gi_breaks;
        self.approx_evictions += other.approx_evictions;
        self.wb_elisions += other.wb_elisions;
        self.clean_forwards += other.clean_forwards;
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.l2_recalls += other.l2_recalls;
        self.retries += other.retries;
        self.nack_retries += other.nack_retries;
        self.stale_replies += other.stale_replies;
        self.dup_reqs_dropped += other.dup_reqs_dropped;
        self.grant_resends += other.grant_resends;
        self.conflict_nacks += other.conflict_nacks;
        self.corrupt_fills_absorbed += other.corrupt_fills_absorbed;
        self.corrupt_fills_refetched += other.corrupt_fills_refetched;
        self.corrupt_mem_refetches += other.corrupt_mem_refetches;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_delayed += other.faults_delayed;
        self.faults_corrupted += other.faults_corrupted;
        self.faults_line_flips += other.faults_line_flips;
        self.gi_storms += other.gi_storms;
        self.traffic.merge(&other.traffic);
        self.energy_events.merge(&other.energy_events);
        self.similarity.merge(&other.similarity);
        self.coverage.merge(&other.coverage);
    }
}

/// Per-core activity summary (derived from each core's L1 statistics).
#[derive(Clone, Debug, Default)]
pub struct CoreSummary {
    /// Instructions issued by the core (loads + stores + scribbles).
    pub ops: u64,
    /// L1 demand hits.
    pub l1_hits: u64,
    /// L1 demand misses (coherence transactions).
    pub l1_misses: u64,
    /// Stores serviced by the approximate states (entries + hits).
    pub approx_serviced: u64,
    /// Cycle at which the core's thread finished.
    pub finish_cycle: u64,
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The report produced by [`crate::machine::Machine::run`].
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total simulated cycles (latest core finish time).
    pub cycles: u64,
    /// Per-core finish times.
    pub core_finish: Vec<u64>,
    /// Raw counters (whole machine).
    pub stats: Stats,
    /// Per-core activity summaries (loads/stores/hits/misses per core).
    pub per_core: Vec<CoreSummary>,
    /// Energy model evaluated over the run's events.
    pub energy: EnergyBreakdown,
}

impl SimReport {
    /// Builds a report, evaluating `model` over the collected events.
    pub fn new(cycles: u64, core_finish: Vec<u64>, stats: Stats, model: &EnergyModel) -> Self {
        let energy = model.evaluate(&stats.energy_events);
        Self {
            cycles,
            core_finish,
            stats,
            per_core: Vec::new(),
            energy,
        }
    }

    /// Attaches per-core summaries (set by the machine).
    pub fn with_per_core(mut self, per_core: Vec<CoreSummary>) -> Self {
        self.per_core = per_core;
        self
    }

    /// Load-imbalance factor: latest finish time over the mean finish
    /// time (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.core_finish.is_empty() {
            return 1.0;
        }
        let max = *self.core_finish.iter().max().expect("nonempty") as f64;
        let mean = self.core_finish.iter().sum::<u64>() as f64 / self.core_finish.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Speedup of this run relative to `baseline` in percent
    /// (the paper's Fig. 10: `(t_base / t_this - 1) × 100`).
    pub fn speedup_percent_vs(&self, baseline: &SimReport) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (baseline.cycles as f64 / self.cycles as f64 - 1.0) * 100.0
    }

    /// Coherence traffic of this run normalized to `baseline`
    /// (Fig. 8 bar height).
    pub fn normalized_traffic_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.stats.traffic.total();
        if b == 0 {
            return 1.0;
        }
        self.stats.traffic.total() as f64 / b as f64
    }

    /// Per-class normalized traffic (each class normalized to the
    /// *baseline total*, so the stacked classes sum to
    /// [`SimReport::normalized_traffic_vs`]).
    pub fn normalized_traffic_by_class_vs(&self, baseline: &SimReport) -> Vec<(MessageKind, f64)> {
        let b = baseline.stats.traffic.total().max(1) as f64;
        MessageKind::ALL
            .iter()
            .map(|&k| (k, self.stats.traffic.count(k) as f64 / b))
            .collect()
    }

    /// Percent dynamic energy saved vs `baseline` (Fig. 9).
    pub fn energy_saved_percent_vs(&self, baseline: &SimReport) -> f64 {
        self.energy.percent_saved_vs(&baseline.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_from_sums_counters() {
        let mut a = Stats {
            loads: 3,
            serviced_by_gs: 2,
            dram_reads: 1,
            ..Default::default()
        };
        let b = Stats {
            loads: 4,
            serviced_by_gs: 5,
            gi_timeouts: 7,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(a.loads, 7);
        assert_eq!(a.serviced_by_gs, 7);
        assert_eq!(a.gi_timeouts, 7);
        assert_eq!(a.dram_reads, 1);
    }

    #[test]
    fn imbalance_math() {
        let mut r = report(100, Stats::default());
        r.core_finish = vec![100, 100, 100, 100];
        assert!((r.imbalance() - 1.0).abs() < 1e-12);
        r.core_finish = vec![50, 150];
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
    }

    fn report(cycles: u64, stats: Stats) -> SimReport {
        SimReport::new(cycles, vec![cycles], stats, &EnergyModel::default())
    }

    #[test]
    fn service_fractions() {
        let s = Stats {
            serviced_by_gs: 30,
            upgrades_from_s: 70,
            serviced_by_gi: 5,
            stores_on_invalid_tagged: 15,
            ..Default::default()
        };
        assert!((s.gs_service_fraction() - 0.30).abs() < 1e-12);
        assert!((s.gi_service_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn service_fraction_zero_when_no_events() {
        let s = Stats::default();
        assert_eq!(s.gs_service_fraction(), 0.0);
        assert_eq!(s.gi_service_fraction(), 0.0);
    }

    #[test]
    fn speedup_math() {
        let base = report(2000, Stats::default());
        let fast = report(1600, Stats::default());
        assert!((fast.speedup_percent_vs(&base) - 25.0).abs() < 1e-9);
        assert!((base.speedup_percent_vs(&base)).abs() < 1e-9);
    }

    #[test]
    fn normalized_traffic_classes_sum_to_total() {
        use ghostwriter_noc::Mesh;
        let mesh = Mesh::with_paper_timing(2, 2);
        let mut base_stats = Stats::default();
        for _ in 0..10 {
            base_stats.traffic.record(
                &mesh,
                MessageKind::Getx,
                ghostwriter_noc::NodeId(0),
                ghostwriter_noc::NodeId(1),
            );
        }
        let mut gw_stats = Stats::default();
        for _ in 0..6 {
            gw_stats.traffic.record(
                &mesh,
                MessageKind::Getx,
                ghostwriter_noc::NodeId(0),
                ghostwriter_noc::NodeId(1),
            );
        }
        let base = report(100, base_stats);
        let gw = report(100, gw_stats);
        let split = gw.normalized_traffic_by_class_vs(&base);
        let sum: f64 = split.iter().map(|(_, v)| v).sum();
        assert!((sum - gw.normalized_traffic_vs(&base)).abs() < 1e-12);
        assert!((sum - 0.6).abs() < 1e-12);
    }

    #[test]
    fn l1_access_accounting() {
        let s = Stats {
            l1_load_hits: 10,
            l1_load_misses: 2,
            l1_store_hits: 5,
            l1_store_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.l1_accesses(), 20);
        assert_eq!(s.l1_misses(), 5);
    }
}
