//! Coherence protocol messages.
//!
//! All protocol traffic — L1 requests, directory commands, data transfers,
//! acknowledgements and memory-controller messages — travels as [`Msg`]
//! values routed over the mesh by the machine, which records each one in
//! the Fig. 8 traffic statistics.

use ghostwriter_mem::{BlockAddr, BlockData};
use ghostwriter_noc::MessageKind;

/// A protocol endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Endpoint {
    /// Private L1 cache of core `i` (tile `i`).
    L1(usize),
    /// Home L2 bank / directory slice `b` (tile `b`).
    Dir(usize),
    /// Memory controller `m` (at mesh corner `m`).
    Mem(usize),
}

/// What permission a directory data/ack response grants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Grant {
    /// Read-only copy; others may share.
    Shared,
    /// Read-only copy, no other sharers (silent upgrade to M allowed).
    Exclusive,
    /// Read-write copy.
    Modified,
    /// Read-only copy designated as the clean forwarder (MESIF `F`):
    /// the holder answers future `FwdGets` for the block.
    Forward,
}

/// What the former owner did with its copy when answering a
/// `FwdGets`/`FwdGetx` — the directory uses this to rebuild its sharer
/// tracking without a second round trip.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OwnerXfer {
    /// The owner invalidated (FwdGetx) or answered from its writeback
    /// buffer — it holds no copy.
    Dropped,
    /// The owner downgraded to a clean Shared copy (MESI/MSI FwdGets).
    ToShared,
    /// The owner kept a dirty Owned copy (MOESI/MOSI FwdGets): the
    /// directory must keep it the distinguished owner and may elide the
    /// L2 fill — the dirty-sharing writeback elision.
    ToOwned,
}

/// Message bodies. The comments give the sender → receiver direction.
#[derive(Clone, Debug, Hash)]
pub enum Payload {
    // ---- L1 → directory requests ----
    /// Read-share request (load miss).
    Gets,
    /// Read-exclusive request (store miss).
    Getx,
    /// S → M permission upgrade (store hit on a shared block).
    Upgrade,
    /// Clean shared-copy eviction notice (no ack).
    PutS,
    /// Clean exclusive-copy eviction (acked with `WbAck`).
    PutE,
    /// Dirty writeback (acked with `WbAck`).
    PutM { data: BlockData },

    // ---- directory → L1 commands ----
    /// Invalidate your copy and ack the directory.
    Inv,
    /// You own this block: send the data to the directory and downgrade
    /// to Shared.
    FwdGets,
    /// You own this block: send the data to the directory and invalidate.
    FwdGetx,
    /// Demand data with a permission grant.
    Data { data: BlockData, grant: Grant },
    /// Your `Upgrade` succeeded: you now hold M.
    UpgAck,
    /// Your `PutM`/`PutE` completed; release the writeback buffer entry.
    WbAck,

    // ---- L1 → directory responses ----
    /// Invalidation acknowledgement.
    InvAck,
    /// Owner's reply to `FwdGets`/`FwdGetx`. `xfer` records what the
    /// owner did with its own copy (dropped it, downgraded to Shared,
    /// or retained dirty ownership under MOESI/MOSI).
    DataToDir { data: BlockData, xfer: OwnerXfer },
    /// `FwdGets` bounced: the MESIF forwarder had already evicted its
    /// clean copy (a `PutS` is in flight). The copy was clean, so the
    /// directory serves the requestor from the valid L2 block instead.
    FwdNack,
    /// Transaction complete; the directory may service the next queued
    /// request for this block.
    Unblock,

    // ---- directory ↔ memory controller ----
    /// Fetch a block from DRAM.
    MemRead,
    /// DRAM fill data.
    MemData { data: BlockData },
    /// Write a block back to DRAM (no ack).
    MemWrite { data: BlockData },
}

/// A routed protocol message.
#[derive(Clone, Debug, Hash)]
pub struct Msg {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub block: BlockAddr,
    pub payload: Payload,
}

impl Payload {
    /// The paper's Fig. 8 traffic class for this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Payload::Gets => MessageKind::Gets,
            Payload::Getx => MessageKind::Getx,
            Payload::Upgrade => MessageKind::Upgrade,
            Payload::Data { .. }
            | Payload::DataToDir { .. }
            | Payload::PutM { .. }
            | Payload::MemData { .. }
            | Payload::MemWrite { .. } => MessageKind::Data,
            Payload::PutS
            | Payload::PutE
            | Payload::Inv
            | Payload::FwdGets
            | Payload::FwdGetx
            | Payload::UpgAck
            | Payload::WbAck
            | Payload::InvAck
            | Payload::FwdNack
            | Payload::Unblock
            | Payload::MemRead => MessageKind::Other,
        }
    }

    /// Short wire name used by the protocol trace example.
    pub fn name(&self) -> &'static str {
        match self {
            Payload::Gets => "GETS",
            Payload::Getx => "GETX",
            Payload::Upgrade => "UPGRADE",
            Payload::PutS => "PUTS",
            Payload::PutE => "PUTE",
            Payload::PutM { .. } => "PUTM",
            Payload::Inv => "INV",
            Payload::FwdGets => "FWD_GETS",
            Payload::FwdGetx => "FWD_GETX",
            Payload::Data { .. } => "DATA",
            Payload::UpgAck => "UPG_ACK",
            Payload::WbAck => "WB_ACK",
            Payload::InvAck => "INV_ACK",
            Payload::FwdNack => "FWD_NACK",
            Payload::DataToDir { .. } => "DATA_TO_DIR",
            Payload::Unblock => "UNBLOCK",
            Payload::MemRead => "MEM_READ",
            Payload::MemData { .. } => "MEM_DATA",
            Payload::MemWrite { .. } => "MEM_WRITE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_classes_match_fig8_buckets() {
        assert_eq!(Payload::Gets.kind(), MessageKind::Gets);
        assert_eq!(Payload::Getx.kind(), MessageKind::Getx);
        assert_eq!(Payload::Upgrade.kind(), MessageKind::Upgrade);
        assert_eq!(
            Payload::Data {
                data: BlockData::zeroed(),
                grant: Grant::Shared
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(
            Payload::PutM {
                data: BlockData::zeroed()
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(Payload::Inv.kind(), MessageKind::Other);
        assert_eq!(Payload::InvAck.kind(), MessageKind::Other);
        assert_eq!(Payload::Unblock.kind(), MessageKind::Other);
        assert_eq!(Payload::MemRead.kind(), MessageKind::Other);
        assert_eq!(
            Payload::MemData {
                data: BlockData::zeroed()
            }
            .kind(),
            MessageKind::Data
        );
    }
}
