//! Coherence protocol messages.
//!
//! All protocol traffic — L1 requests, directory commands, data transfers,
//! acknowledgements and memory-controller messages — travels as [`Msg`]
//! values routed over the mesh by the machine, which records each one in
//! the Fig. 8 traffic statistics.

use ghostwriter_mem::{BlockAddr, BlockData};
use ghostwriter_noc::MessageKind;

/// A protocol endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Endpoint {
    /// Private L1 cache of core `i` (tile `i`).
    L1(usize),
    /// Home L2 bank / directory slice `b` (tile `b`).
    Dir(usize),
    /// Memory controller `m` (at mesh corner `m`).
    Mem(usize),
}

/// What permission a directory data/ack response grants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Grant {
    /// Read-only copy; others may share.
    Shared,
    /// Read-only copy, no other sharers (silent upgrade to M allowed).
    Exclusive,
    /// Read-write copy.
    Modified,
    /// Read-only copy designated as the clean forwarder (MESIF `F`):
    /// the holder answers future `FwdGets` for the block.
    Forward,
}

/// What the former owner did with its copy when answering a
/// `FwdGets`/`FwdGetx` — the directory uses this to rebuild its sharer
/// tracking without a second round trip.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OwnerXfer {
    /// The owner invalidated (FwdGetx) or answered from its writeback
    /// buffer — it holds no copy.
    Dropped,
    /// The owner downgraded to a clean Shared copy (MESI/MSI FwdGets).
    ToShared,
    /// The owner kept a dirty Owned copy (MOESI/MOSI FwdGets): the
    /// directory must keep it the distinguished owner and may elide the
    /// L2 fill — the dirty-sharing writeback elision.
    ToOwned,
}

/// Transport envelope riding on every message: a per-transaction
/// sequence number (duplicate/stale-reply suppression) and a taint bit
/// (the fault injector's stand-in for a detectable ECC/checksum
/// mismatch on the carried block).
///
/// With recovery disabled every message carries the default tag
/// (`seq = 0`, `tainted = false`), so hashes, fingerprints and the
/// checker's state partition are exactly what they were before the tag
/// existed as a *varying* quantity — zero-fault runs stay byte-stable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct WireTag {
    /// Requestor-assigned transaction sequence number (0 = untagged).
    pub seq: u32,
    /// Set when the fault injector corrupted the carried data in a way
    /// the receiver can detect (models an ECC/checksum mismatch).
    pub tainted: bool,
}

impl WireTag {
    /// A tag carrying only a sequence number.
    pub fn seq(seq: u32) -> Self {
        WireTag {
            seq,
            tainted: false,
        }
    }
}

/// Opaque index of an in-flight data block in a [`DataPool`].
///
/// A `DataRef` is a *transport* handle, not part of the logical message:
/// two runs (or two checker states) may assign different slot indices to
/// the same logical traffic. Anything that compares or hashes messages
/// must resolve the ref to its block first — see
/// `System::fingerprint` in `harness.rs`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DataRef(u32);

/// Side pool of the 64-byte blocks carried by in-flight data messages.
///
/// The control-plane form of a message ([`CtlMsg`]) stores a [`DataRef`]
/// instead of embedding the block, so the message arena and the event
/// queue move small fixed-size records and zero-data messages (INV,
/// acks, forwards) are genuinely zero-data. Slots are recycled the
/// moment a message is resolved back to its logical form, so the pool
/// never outgrows the peak number of in-flight data-carrying messages.
#[derive(Clone, Debug, Default)]
pub struct DataPool {
    slots: Vec<Option<BlockData>>,
    free: Vec<u32>,
}

impl DataPool {
    /// Interns `data`, returning its slot handle.
    pub fn alloc(&mut self, data: BlockData) -> DataRef {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(data);
                DataRef(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("data pool overflow");
                self.slots.push(Some(data));
                DataRef(slot)
            }
        }
    }

    /// Consumes the slot, returning its block and recycling the slot.
    pub fn take(&mut self, r: DataRef) -> BlockData {
        let data = self.slots[r.0 as usize]
            .take()
            .expect("data slot consumed twice");
        self.free.push(r.0);
        data
    }

    /// Reads the slot without consuming it (fingerprinting, peeking).
    pub fn get(&self, r: DataRef) -> &BlockData {
        self.slots[r.0 as usize]
            .as_ref()
            .expect("data slot already consumed")
    }

    /// Number of live (unresolved) data blocks.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the pool's high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Message bodies, generic over how block data is carried: the logical
/// form ([`Payload`]) embeds the 64-byte block inline; the control-plane
/// form ([`PayloadCtl`]) references a [`DataPool`] slot instead. The
/// comments give the sender → receiver direction.
#[derive(Clone, Debug, Hash)]
pub enum PayloadOf<D> {
    // ---- L1 → directory requests ----
    /// Read-share request (load miss).
    Gets,
    /// Read-exclusive request (store miss).
    Getx,
    /// S → M permission upgrade (store hit on a shared block).
    Upgrade,
    /// Clean shared-copy eviction notice (no ack).
    PutS,
    /// Clean exclusive-copy eviction (acked with `WbAck`).
    PutE,
    /// Dirty writeback (acked with `WbAck`).
    PutM { data: D },

    // ---- directory → L1 commands ----
    /// Invalidate your copy and ack the directory.
    Inv,
    /// You own this block: send the data to the directory and downgrade
    /// to Shared.
    FwdGets,
    /// You own this block: send the data to the directory and invalidate.
    FwdGetx,
    /// Demand data with a permission grant.
    Data { data: D, grant: Grant },
    /// Your `Upgrade` succeeded: you now hold M.
    UpgAck,
    /// Your `PutM`/`PutE` completed; release the writeback buffer entry.
    WbAck,

    // ---- L1 → directory responses ----
    /// Invalidation acknowledgement.
    InvAck,
    /// Owner's reply to `FwdGets`/`FwdGetx`. `xfer` records what the
    /// owner did with its own copy (dropped it, downgraded to Shared,
    /// or retained dirty ownership under MOESI/MOSI).
    DataToDir { data: D, xfer: OwnerXfer },
    /// `FwdGets` bounced: the MESIF forwarder had already evicted its
    /// clean copy (a `PutS` is in flight). The copy was clean, so the
    /// directory serves the requestor from the valid L2 block instead.
    FwdNack,
    /// Transaction complete; the directory may service the next queued
    /// request for this block.
    Unblock,

    // ---- directory ↔ memory controller ----
    /// Fetch a block from DRAM.
    MemRead,
    /// DRAM fill data.
    MemData { data: D },
    /// Write a block back to DRAM (no ack).
    MemWrite { data: D },
}

/// The logical payload: block data carried inline.
pub type Payload = PayloadOf<BlockData>;

/// The control-plane payload: block data referenced by pool slot.
pub type PayloadCtl = PayloadOf<DataRef>;

/// A routed protocol message, generic like [`PayloadOf`] over how block
/// data is carried.
#[derive(Clone, Debug, Hash)]
pub struct MsgOf<D> {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub block: BlockAddr,
    pub payload: PayloadOf<D>,
    /// Transport envelope (sequence number + taint bit). Always
    /// [`WireTag::default()`] when recovery is disabled.
    pub tag: WireTag,
}

/// A logical protocol message (inline data) — what controllers produce
/// and consume.
pub type Msg = MsgOf<BlockData>;

/// A control-plane message (data by [`DataRef`]) — what transports
/// store: the machine's message arena and the harness's virtual
/// network.
pub type CtlMsg = MsgOf<DataRef>;

impl Msg {
    /// Interns the payload's data (if any) into `pool`, yielding the
    /// small fixed-size control record transports store.
    pub fn intern(self, pool: &mut DataPool) -> CtlMsg {
        let payload = match self.payload {
            Payload::PutM { data } => PayloadCtl::PutM {
                data: pool.alloc(data),
            },
            Payload::Data { data, grant } => PayloadCtl::Data {
                data: pool.alloc(data),
                grant,
            },
            Payload::DataToDir { data, xfer } => PayloadCtl::DataToDir {
                data: pool.alloc(data),
                xfer,
            },
            Payload::MemData { data } => PayloadCtl::MemData {
                data: pool.alloc(data),
            },
            Payload::MemWrite { data } => PayloadCtl::MemWrite {
                data: pool.alloc(data),
            },
            Payload::Gets => PayloadCtl::Gets,
            Payload::Getx => PayloadCtl::Getx,
            Payload::Upgrade => PayloadCtl::Upgrade,
            Payload::PutS => PayloadCtl::PutS,
            Payload::PutE => PayloadCtl::PutE,
            Payload::Inv => PayloadCtl::Inv,
            Payload::FwdGets => PayloadCtl::FwdGets,
            Payload::FwdGetx => PayloadCtl::FwdGetx,
            Payload::UpgAck => PayloadCtl::UpgAck,
            Payload::WbAck => PayloadCtl::WbAck,
            Payload::InvAck => PayloadCtl::InvAck,
            Payload::FwdNack => PayloadCtl::FwdNack,
            Payload::Unblock => PayloadCtl::Unblock,
            Payload::MemRead => PayloadCtl::MemRead,
        };
        CtlMsg {
            src: self.src,
            dst: self.dst,
            block: self.block,
            payload,
            tag: self.tag,
        }
    }
}

impl CtlMsg {
    /// Resolves back to the logical message, consuming (and recycling)
    /// the data slot. The inverse of [`Msg::intern`].
    pub fn resolve(self, pool: &mut DataPool) -> Msg {
        let payload = self.payload.resolve_with(|r| pool.take(r));
        Msg {
            src: self.src,
            dst: self.dst,
            block: self.block,
            payload,
            tag: self.tag,
        }
    }

    /// The logical message this record denotes, *without* consuming the
    /// data slot — for fingerprinting and fault-injection peeking,
    /// where the message stays in flight.
    pub fn logical(&self, pool: &DataPool) -> Msg {
        let payload = self.payload.clone().resolve_with(|r| *pool.get(r));
        Msg {
            src: self.src,
            dst: self.dst,
            block: self.block,
            payload,
            tag: self.tag,
        }
    }
}

impl PayloadCtl {
    /// Maps each data slot through `take`, producing the logical form.
    fn resolve_with(self, mut take: impl FnMut(DataRef) -> BlockData) -> Payload {
        match self {
            PayloadCtl::PutM { data } => Payload::PutM { data: take(data) },
            PayloadCtl::Data { data, grant } => Payload::Data {
                data: take(data),
                grant,
            },
            PayloadCtl::DataToDir { data, xfer } => Payload::DataToDir {
                data: take(data),
                xfer,
            },
            PayloadCtl::MemData { data } => Payload::MemData { data: take(data) },
            PayloadCtl::MemWrite { data } => Payload::MemWrite { data: take(data) },
            PayloadCtl::Gets => Payload::Gets,
            PayloadCtl::Getx => Payload::Getx,
            PayloadCtl::Upgrade => Payload::Upgrade,
            PayloadCtl::PutS => Payload::PutS,
            PayloadCtl::PutE => Payload::PutE,
            PayloadCtl::Inv => Payload::Inv,
            PayloadCtl::FwdGets => Payload::FwdGets,
            PayloadCtl::FwdGetx => Payload::FwdGetx,
            PayloadCtl::UpgAck => Payload::UpgAck,
            PayloadCtl::WbAck => Payload::WbAck,
            PayloadCtl::InvAck => Payload::InvAck,
            PayloadCtl::FwdNack => Payload::FwdNack,
            PayloadCtl::Unblock => Payload::Unblock,
            PayloadCtl::MemRead => Payload::MemRead,
        }
    }
}

impl<D> PayloadOf<D> {
    /// The paper's Fig. 8 traffic class for this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            PayloadOf::Gets => MessageKind::Gets,
            PayloadOf::Getx => MessageKind::Getx,
            PayloadOf::Upgrade => MessageKind::Upgrade,
            PayloadOf::Data { .. }
            | PayloadOf::DataToDir { .. }
            | PayloadOf::PutM { .. }
            | PayloadOf::MemData { .. }
            | PayloadOf::MemWrite { .. } => MessageKind::Data,
            PayloadOf::PutS
            | PayloadOf::PutE
            | PayloadOf::Inv
            | PayloadOf::FwdGets
            | PayloadOf::FwdGetx
            | PayloadOf::UpgAck
            | PayloadOf::WbAck
            | PayloadOf::InvAck
            | PayloadOf::FwdNack
            | PayloadOf::Unblock
            | PayloadOf::MemRead => MessageKind::Other,
        }
    }

    /// Short wire name used by the protocol trace example.
    pub fn name(&self) -> &'static str {
        match self {
            PayloadOf::Gets => "GETS",
            PayloadOf::Getx => "GETX",
            PayloadOf::Upgrade => "UPGRADE",
            PayloadOf::PutS => "PUTS",
            PayloadOf::PutE => "PUTE",
            PayloadOf::PutM { .. } => "PUTM",
            PayloadOf::Inv => "INV",
            PayloadOf::FwdGets => "FWD_GETS",
            PayloadOf::FwdGetx => "FWD_GETX",
            PayloadOf::Data { .. } => "DATA",
            PayloadOf::UpgAck => "UPG_ACK",
            PayloadOf::WbAck => "WB_ACK",
            PayloadOf::InvAck => "INV_ACK",
            PayloadOf::FwdNack => "FWD_NACK",
            PayloadOf::DataToDir { .. } => "DATA_TO_DIR",
            PayloadOf::Unblock => "UNBLOCK",
            PayloadOf::MemRead => "MEM_READ",
            PayloadOf::MemData { .. } => "MEM_DATA",
            PayloadOf::MemWrite { .. } => "MEM_WRITE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_classes_match_fig8_buckets() {
        assert_eq!(Payload::Gets.kind(), MessageKind::Gets);
        assert_eq!(Payload::Getx.kind(), MessageKind::Getx);
        assert_eq!(Payload::Upgrade.kind(), MessageKind::Upgrade);
        assert_eq!(
            Payload::Data {
                data: BlockData::zeroed(),
                grant: Grant::Shared
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(
            Payload::PutM {
                data: BlockData::zeroed()
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(Payload::Inv.kind(), MessageKind::Other);
        assert_eq!(Payload::InvAck.kind(), MessageKind::Other);
        assert_eq!(Payload::Unblock.kind(), MessageKind::Other);
        assert_eq!(Payload::MemRead.kind(), MessageKind::Other);
        assert_eq!(
            Payload::MemData {
                data: BlockData::zeroed()
            }
            .kind(),
            MessageKind::Data
        );
    }
}
