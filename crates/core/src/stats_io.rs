//! JSON serialization for [`Stats`] (the experiment engine's cached
//! record payload).
//!
//! The format is a flat object per sub-structure, written through the
//! canonical [`crate::json`] writer so identical statistics always
//! produce identical bytes. Every counter is a `u64` field; the reader
//! is strict (a missing or mistyped field is an error, not a default),
//! so schema drift between writer and cached files is detected rather
//! than silently zero-filled.

use ghostwriter_energy::EnergyEvents;
use ghostwriter_noc::{MessageKind, TrafficStats};

use crate::json::{Json, JsonError};
use crate::scribe::SimilarityHistogram;
use crate::stats::Stats;

/// Applies a macro to every plain `u64` counter field of [`Stats`], in
/// declaration order. Serialization, deserialization and the round-trip
/// tests all expand this one list, so adding a `Stats` field only
/// requires extending it here (the strict reader turns a forgotten
/// update into a test failure, not silent data loss).
macro_rules! for_each_stats_counter {
    ($m:ident) => {
        $m!(
            loads,
            stores,
            scribbles,
            work_cycles,
            barriers,
            l1_load_hits,
            l1_load_misses,
            l1_store_hits,
            l1_store_misses,
            serviced_by_gs,
            upgrades_from_s,
            serviced_by_gi,
            stores_on_invalid_tagged,
            gs_hits,
            gi_load_hits,
            gi_store_hits,
            upgrades_from_gs,
            gs_invalidations,
            gi_timeouts,
            gi_breaks,
            approx_evictions,
            dram_reads,
            dram_writes,
            l2_recalls
        );
    };
}

macro_rules! for_each_energy_event {
    ($m:ident) => {
        $m!(
            l1_reads,
            l1_writes,
            l1_tag_probes,
            l2_reads,
            l2_writes,
            l2_tag_probes,
            dram_reads,
            dram_writes,
            router_flits,
            link_flit_hops
        );
    };
}

impl Stats {
    /// Serializes every counter into a canonical JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        macro_rules! put {
            ($($f:ident),*) => { $( obj.push(stringify!($f), Json::U64(self.$f)); )* };
        }
        for_each_stats_counter!(put);

        let mut traffic = Json::obj();
        for kind in MessageKind::ALL {
            traffic.push(kind.label(), Json::U64(self.traffic.count(kind)));
        }
        traffic.push("flit_hops", Json::U64(self.traffic.flit_hops()));
        traffic.push("router_flits", Json::U64(self.traffic.router_flits()));
        obj.push("traffic", traffic);

        let mut energy = Json::obj();
        macro_rules! put_energy {
            ($($f:ident),*) => { $( energy.push(stringify!($f), Json::U64(self.energy_events.$f)); )* };
        }
        for_each_energy_event!(put_energy);
        obj.push("energy_events", energy);

        let counts: Vec<Json> = (0..=64u32)
            .map(|d| Json::U64(self.similarity.count_at(d)))
            .collect();
        obj.push("similarity", Json::Arr(counts));
        obj
    }

    /// Strictly reconstructs statistics from [`Stats::to_json`] output.
    pub fn from_json(doc: &Json) -> Result<Stats, JsonError> {
        let mut s = Stats::default();
        macro_rules! take {
            ($($f:ident),*) => { $( s.$f = doc.field(stringify!($f))?.as_u64()?; )* };
        }
        for_each_stats_counter!(take);

        let traffic = doc.field("traffic")?;
        let mut kind_counts = [0u64; 5];
        for (i, kind) in MessageKind::ALL.iter().enumerate() {
            kind_counts[i] = traffic.field(kind.label())?.as_u64()?;
        }
        s.traffic = TrafficStats::from_raw(
            |kind| {
                let i = MessageKind::ALL
                    .iter()
                    .position(|k| *k == kind)
                    .expect("ALL");
                kind_counts[i]
            },
            traffic.field("flit_hops")?.as_u64()?,
            traffic.field("router_flits")?.as_u64()?,
        );

        let energy = doc.field("energy_events")?;
        let mut ev = EnergyEvents::default();
        macro_rules! take_energy {
            ($($f:ident),*) => { $( ev.$f = energy.field(stringify!($f))?.as_u64()?; )* };
        }
        for_each_energy_event!(take_energy);
        s.energy_events = ev;

        let sim = doc.field("similarity")?.as_arr()?;
        if sim.len() != 65 {
            return Err(JsonError {
                pos: 0,
                msg: format!("similarity histogram needs 65 bins, got {}", sim.len()),
            });
        }
        let mut counts = [0u64; 65];
        for (slot, v) in counts.iter_mut().zip(sim) {
            *slot = v.as_u64()?;
        }
        s.similarity = SimilarityHistogram::from_counts(counts);
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostwriter_noc::{Mesh, NodeId};

    fn exercised_stats() -> Stats {
        let mesh = Mesh::with_paper_timing(2, 2);
        let mut s = Stats {
            loads: 0, // edge: zero survives
            stores: u64::MAX,
            scribbles: 3,
            serviced_by_gs: 1 << 60,
            gi_timeouts: 7,
            ..Default::default()
        };
        s.energy_events.l1_reads = u64::MAX;
        s.energy_events.link_flit_hops = 12;
        s.traffic
            .record(&mesh, MessageKind::Data, NodeId(0), NodeId(3));
        s.traffic
            .record(&mesh, MessageKind::Getx, NodeId(1), NodeId(2));
        s.similarity.record(10, 10, 32);
        s.similarity.record(0, u64::MAX, 64);
        s
    }

    #[test]
    fn round_trip_preserves_every_counter() {
        let s = exercised_stats();
        let text = s.to_json().to_pretty();
        let back = Stats::from_json(&Json::parse(&text).unwrap()).unwrap();
        // Canonical writer ⇒ byte-identical re-serialization is the
        // strongest whole-struct equality we have (Stats is not PartialEq).
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(back.stores, u64::MAX);
        assert_eq!(back.serviced_by_gs, 1 << 60);
        assert_eq!(back.traffic.count(MessageKind::Data), 1);
        assert_eq!(back.traffic.flit_hops(), s.traffic.flit_hops());
        assert_eq!(back.energy_events.l1_reads, u64::MAX);
        assert_eq!(back.similarity.total(), 2);
        assert_eq!(back.similarity.count_at(64), 1);
    }

    #[test]
    fn default_stats_round_trip() {
        let text = Stats::default().to_json().to_pretty();
        let back = Stats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(back.l1_accesses(), 0);
    }

    #[test]
    fn missing_field_is_an_error_not_a_default() {
        let mut doc = exercised_stats().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "gi_timeouts");
        }
        let err = Stats::from_json(&doc).unwrap_err();
        assert!(err.msg.contains("gi_timeouts"), "{err}");
    }

    #[test]
    fn truncated_similarity_is_rejected() {
        let mut doc = exercised_stats().to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "similarity" {
                    *v = Json::Arr(vec![Json::U64(1); 64]);
                }
            }
        }
        assert!(Stats::from_json(&doc).is_err());
    }
}
