//! The *scribe* comparator (paper §3.4, Fig. 6).
//!
//! In hardware this is a column of XNOR equality comparators beside the L1
//! write register: on a `scribble` store it compares the incoming word `W`
//! with the word `B` currently in the cache block and raises `approx` when
//! they agree in every bit above the programmer-chosen `d` least-significant
//! bits. The comparison runs in parallel with the tag check, so it is off
//! the critical path.
//!
//! This module is the functional model: bit-wise `d`-distance (the paper's
//! definition, from Wong et al., ref. 57) plus an *arithmetic* comparator
//! variant the paper sketches as future work (§3.4), used by the ablation
//! benches.

/// How the scribe decides two words are "approximately similar".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum ScribePolicy {
    /// The paper's bit-wise d-distance: values match if all bits above the
    /// `d` least-significant bits are identical.
    #[default]
    Bitwise,
    /// Arithmetic distance (paper §3.4 future work): values match if their
    /// absolute difference as `width`-bit unsigned integers is `< 2^d`.
    /// Catches pairs like -1/0 or 127/128 that bit-wise similarity misses.
    Arithmetic,
}

/// Smallest `d` such that `old >> d == new >> d` within a `width_bits`-wide
/// word; `0` means the values are identical (a silent store).
///
/// ```
/// use ghostwriter_core::scribe::bit_distance;
/// assert_eq!(bit_distance(124, 127, 8), 2);  // the paper's example
/// assert_eq!(bit_distance(127, 128, 8), 8);  // arithmetically close, bit-wise far
/// assert_eq!(bit_distance(42, 42, 32), 0);   // silent store
/// ```
#[inline]
pub fn bit_distance(old: u64, new: u64, width_bits: u32) -> u32 {
    debug_assert!(matches!(width_bits, 8 | 16 | 32 | 64));
    let mask = if width_bits == 64 {
        u64::MAX
    } else {
        (1u64 << width_bits) - 1
    };
    let diff = (old ^ new) & mask;
    64 - diff.leading_zeros()
}

/// Arithmetic distance between two `width_bits`-wide unsigned words,
/// wrapping (so 0 and MAX are distance 1).
#[inline]
pub fn arithmetic_distance(old: u64, new: u64, width_bits: u32) -> u64 {
    let mask = if width_bits == 64 {
        u64::MAX
    } else {
        (1u64 << width_bits) - 1
    };
    let a = old & mask;
    let b = new & mask;
    let fwd = a.wrapping_sub(b) & mask;
    let bwd = b.wrapping_sub(a) & mask;
    fwd.min(bwd)
}

impl ScribePolicy {
    /// The `approx` signal: true if a scribble writing `new` over `old`
    /// may proceed without coherence actions at the given `d`.
    #[inline]
    pub fn within(self, old: u64, new: u64, width_bits: u32, d: u32) -> bool {
        match self {
            ScribePolicy::Bitwise => bit_distance(old, new, width_bits) <= d,
            ScribePolicy::Arithmetic => {
                if d >= width_bits {
                    return true;
                }
                arithmetic_distance(old, new, width_bits) < (1u64 << d)
            }
        }
    }
}

/// Cumulative histogram of observed store d-distances (paper Fig. 2).
///
/// Index `i` counts stores whose new value had bit-distance exactly `i`
/// from the value it overwrote; `cumulative_fraction(d)` is the paper's
/// P(distance ≤ d).
///
/// ```
/// use ghostwriter_core::SimilarityHistogram;
/// let mut h = SimilarityHistogram::new();
/// h.record(10, 10, 32); // silent store
/// h.record(8, 9, 32);   // 1-distance
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.cumulative_fraction(0), 0.5);
/// assert_eq!(h.cumulative_fraction(1), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct SimilarityHistogram {
    counts: [u64; 65],
    total: u64,
}

impl Default for SimilarityHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; 65],
            total: 0,
        }
    }

    /// Records one overwritten value.
    #[inline]
    pub fn record(&mut self, old: u64, new: u64, width_bits: u32) {
        let d = bit_distance(old, new, width_bits);
        self.counts[d as usize] += 1;
        self.total += 1;
    }

    /// Number of stores recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reconstructs a histogram from per-distance counts (the experiment
    /// engine's JSON deserializer); the total is rederived.
    pub fn from_counts(counts: [u64; 65]) -> Self {
        let total = counts.iter().sum();
        Self { counts, total }
    }

    /// Raw count at exactly distance `d`.
    pub fn count_at(&self, d: u32) -> u64 {
        self.counts[d as usize]
    }

    /// P(distance ≤ d): the paper's Fig. 2 y-axis.
    pub fn cumulative_fraction(&self, d: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts[..=(d as usize)].iter().sum();
        cum as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &SimilarityHistogram) {
        for i in 0..65 {
            self.counts[i] += other.counts[i];
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // 124 (0111_1100) vs 127 (0111_1111): differ in last two bits.
        assert_eq!(bit_distance(124, 127, 8), 2);
        // 127 vs 128: arithmetically adjacent, bit-wise completely
        // different (8 bits).
        assert_eq!(bit_distance(127, 128, 8), 8);
        // 121 (111_1001) vs 125 (111_1101): 3-distance per the paper.
        assert_eq!(bit_distance(121, 125, 8), 3);
    }

    #[test]
    fn zero_distance_is_identity() {
        assert_eq!(bit_distance(42, 42, 32), 0);
        assert!(ScribePolicy::Bitwise.within(42, 42, 32, 0));
        assert!(!ScribePolicy::Bitwise.within(42, 43, 32, 0));
    }

    #[test]
    fn width_masks_high_bits() {
        // Differences above the access width are invisible.
        let old = 0xFF00_0000_0000_0012u64;
        let new = 0x0000_0000_0000_0010u64;
        assert_eq!(bit_distance(old, new, 8), 2);
        assert_eq!(bit_distance(old, new, 64), 64);
    }

    #[test]
    fn bitwise_within_monotone_in_d() {
        let old = 0b1011_0110u64;
        let new = 0b1011_0001u64; // distance 3
        assert_eq!(bit_distance(old, new, 8), 3);
        for d in 0..3 {
            assert!(!ScribePolicy::Bitwise.within(old, new, 8, d));
        }
        for d in 3..=8 {
            assert!(ScribePolicy::Bitwise.within(old, new, 8, d));
        }
    }

    #[test]
    fn arithmetic_catches_wraparound_neighbours() {
        // -1 vs 0 as 16-bit values: bit-wise hopeless, arithmetic trivial.
        let minus_one = 0xFFFFu64;
        assert_eq!(bit_distance(minus_one, 0, 16), 16);
        assert_eq!(arithmetic_distance(minus_one, 0, 16), 1);
        assert!(ScribePolicy::Arithmetic.within(minus_one, 0, 16, 1));
        assert!(!ScribePolicy::Arithmetic.within(minus_one, 0, 16, 0));
        // 127 vs 128 likewise.
        assert!(ScribePolicy::Arithmetic.within(127, 128, 8, 1));
        assert!(!ScribePolicy::Bitwise.within(127, 128, 8, 7));
    }

    #[test]
    fn arithmetic_d_at_width_accepts_all() {
        assert!(ScribePolicy::Arithmetic.within(0, 0xFF, 8, 8));
    }

    #[test]
    fn float_similarity_lives_in_mantissa() {
        // Two floats differing only far down the mantissa are similar.
        let a = 1000.0_f32.to_bits() as u64;
        let b = 1000.001_f32.to_bits() as u64;
        assert!(bit_distance(a, b, 32) <= 8);
        // Very different magnitudes are not.
        let c = (-5.0_f32).to_bits() as u64;
        assert!(bit_distance(a, c, 32) > 8);
    }

    #[test]
    fn histogram_cumulative_fractions() {
        let mut h = SimilarityHistogram::new();
        h.record(10, 10, 32); // d = 0
        h.record(8, 9, 32); // d = 1
        h.record(0, 0b10000, 32); // d = 5
        assert_eq!(h.total(), 3);
        assert!((h.cumulative_fraction(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(4) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(5) - 1.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = SimilarityHistogram::new();
        let mut b = SimilarityHistogram::new();
        a.record(1, 1, 8);
        b.record(1, 2, 8);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count_at(0), 1);
        assert_eq!(a.count_at(2), 1);
    }

    #[test]
    fn empty_histogram_fraction_is_zero() {
        assert_eq!(SimilarityHistogram::new().cumulative_fraction(64), 0.0);
    }
}
