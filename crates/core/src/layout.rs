//! Typed views over simulated memory.
//!
//! Workloads address the simulated memory in raw bytes; these small
//! wrappers add element indexing, bounds checks and the right
//! load/store/scribble width, so kernels read like array code:
//!
//! ```
//! use ghostwriter_core::layout::ArrayI32;
//! use ghostwriter_core::{Machine, MachineConfig, Protocol};
//!
//! let mut m = Machine::new(MachineConfig::small(1, Protocol::Mesi));
//! let xs = ArrayI32::alloc(&mut m, 8);
//! for (i, v) in [5, -3, 7, 0, 1, 2, 4, 6].iter().enumerate() {
//!     m.backdoor_write_i32s(xs.addr(i), &[*v]);
//! }
//! m.add_thread(move |ctx| async move {
//!     let mut sum = 0;
//!     for i in 0..xs.len() {
//!         sum += xs.load(&ctx, i).await;
//!     }
//!     xs.store(&ctx, 0, sum).await;
//! });
//! let run = m.run();
//! assert_eq!(run.read_i32(xs.addr(0)), 22);
//! ```

use ghostwriter_mem::Addr;

use crate::ctx::ThreadCtx;
use crate::machine::Machine;

macro_rules! array_view {
    ($name:ident, $ty:ty, $size:expr, $load:ident, $store:ident, $scribble:ident, $doc:expr) => {
        #[doc = $doc]
        ///
        /// The view is `Copy`, so it moves freely into thread closures.
        /// Allocation is block-padded (the paper's compiler pads annotated
        /// structures, §3.1); use [`Self::packed`] over a raw allocation
        /// when false sharing *is* the point.
        #[derive(Clone, Copy, Debug)]
        pub struct $name {
            base: Addr,
            len: usize,
        }

        impl $name {
            /// Allocates a block-padded array of `len` elements.
            pub fn alloc(m: &mut Machine, len: usize) -> Self {
                let base = m.alloc_padded(($size * len) as u64);
                Self { base, len }
            }

            /// Wraps an existing (e.g. deliberately packed) region.
            pub fn packed(base: Addr, len: usize) -> Self {
                Self { base, len }
            }

            /// Element count.
            #[allow(clippy::len_without_is_empty)]
            pub fn len(&self) -> usize {
                self.len
            }

            /// Base address of the array.
            pub fn base(&self) -> Addr {
                self.base
            }

            /// Address of element `i`.
            pub fn addr(&self, i: usize) -> Addr {
                assert!(i < self.len, "index {i} out of bounds ({})", self.len);
                self.base.add(($size * i) as u64)
            }

            /// Loads element `i` through the simulated hierarchy.
            pub async fn load(&self, ctx: &ThreadCtx, i: usize) -> $ty {
                ctx.$load(self.addr(i)).await
            }

            /// Conventional store to element `i`.
            pub async fn store(&self, ctx: &ThreadCtx, i: usize, v: $ty) {
                ctx.$store(self.addr(i), v).await;
            }

            /// Approximate store to element `i`.
            pub async fn scribble(&self, ctx: &ThreadCtx, i: usize, v: $ty) {
                ctx.$scribble(self.addr(i), v).await;
            }
        }
    };
}

array_view!(
    ArrayI32,
    i32,
    4,
    load_i32,
    store_i32,
    scribble_i32,
    "A simulated `[i32]`."
);
array_view!(
    ArrayU32,
    u32,
    4,
    load_u32,
    store_u32,
    scribble_u32,
    "A simulated `[u32]`."
);
array_view!(
    ArrayF32,
    f32,
    4,
    load_f32,
    store_f32,
    scribble_f32,
    "A simulated `[f32]` (bit-pattern accurate)."
);
array_view!(
    ArrayI64,
    i64,
    8,
    load_i64,
    store_i64,
    scribble_i64,
    "A simulated `[i64]`."
);
array_view!(
    ArrayF64,
    f64,
    8,
    load_f64,
    store_f64,
    scribble_f64,
    "A simulated `[f64]` (bit-pattern accurate)."
);
array_view!(
    ArrayU8,
    u8,
    1,
    load_u8,
    store_u8,
    scribble_u8,
    "A simulated `[u8]`."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    #[test]
    fn round_trip_all_views() {
        let mut m = Machine::new(MachineConfig::small(1, Protocol::Mesi));
        let a = ArrayI32::alloc(&mut m, 4);
        let b = ArrayF64::alloc(&mut m, 4);
        let c = ArrayU8::alloc(&mut m, 4);
        m.add_thread(move |ctx| async move {
            a.store(&ctx, 3, -77).await;
            b.store(&ctx, 2, 2.5).await;
            c.store(&ctx, 1, 200).await;
            assert_eq!(a.load(&ctx, 3).await, -77);
            assert_eq!(b.load(&ctx, 2).await, 2.5);
            assert_eq!(c.load(&ctx, 1).await, 200);
        });
        let run = m.run();
        assert_eq!(run.read_i32(a.addr(3)), -77);
        assert_eq!(run.read_f64(b.addr(2)), 2.5);
    }

    #[test]
    fn packed_views_share_blocks() {
        let mut m = Machine::new(MachineConfig::small(1, Protocol::Mesi));
        let base = m.alloc_padded(64);
        let view = ArrayU32::packed(base, 16);
        assert_eq!(view.addr(0).block(), view.addr(15).block());
    }

    #[test]
    fn alloc_is_block_padded() {
        let mut m = Machine::new(MachineConfig::small(1, Protocol::Mesi));
        let a = ArrayU8::alloc(&mut m, 3);
        let b = ArrayU8::alloc(&mut m, 3);
        assert_ne!(
            a.addr(0).block(),
            b.addr(0).block(),
            "views must not share blocks"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_are_checked() {
        let mut m = Machine::new(MachineConfig::small(1, Protocol::Mesi));
        let a = ArrayI32::alloc(&mut m, 2);
        a.addr(2);
    }
}
