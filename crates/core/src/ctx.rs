//! The workload-facing thread API.
//!
//! A [`ThreadCtx`] is handed to each workload body; every `async` method
//! is one simulated instruction — awaiting it suspends the workload until
//! the engine has simulated the operation and resumes the core with the
//! result. Loads/stores go through the simulated memory hierarchy (and
//! therefore the coherence protocol); `scribble_*` are the paper's
//! approximate stores, which take effect only inside an
//! `approx_begin`/`approx_end` region; `work` charges pure compute cycles.
//!
//! Floats travel as raw bit patterns, so the scribe comparator sees exactly
//! the bits a hardware implementation would.

use std::rc::Rc;

use ghostwriter_mem::Addr;
use ghostwriter_sim::OpCell;

use crate::op::{OpKind, ThreadOp, ThreadReply};

/// Per-thread handle to the simulated machine. Owned by the workload
/// future; each method awaits one engine round trip.
pub struct ThreadCtx {
    cell: Rc<OpCell<ThreadOp, ThreadReply>>,
    tid: usize,
}

macro_rules! int_accessors {
    ($load:ident, $store:ident, $scribble:ident, $ty:ty, $size:expr) => {
        /// Loads a value of this width.
        pub async fn $load(&self, addr: Addr) -> $ty {
            self.access(addr, $size, OpKind::Load, 0).await as $ty
        }
        /// Conventional (always coherent) store.
        pub async fn $store(&self, addr: Addr, value: $ty) {
            self.access(addr, $size, OpKind::Store, value as u64).await;
        }
        /// Approximate store: behaves per the Ghostwriter protocol inside
        /// an approximate region, degrades to a conventional store outside
        /// one (or under the MESI baseline).
        pub async fn $scribble(&self, addr: Addr, value: $ty) {
            self.access(addr, $size, OpKind::Scribble, value as u64)
                .await;
        }
    };
}

impl ThreadCtx {
    /// Wraps a resumable-core op cell (called by the machine, not by
    /// workloads).
    pub(crate) fn new(cell: Rc<OpCell<ThreadOp, ThreadReply>>, tid: usize) -> Self {
        Self { cell, tid }
    }

    /// This thread's id (== the core it runs on).
    pub fn tid(&self) -> usize {
        self.tid
    }

    async fn access(&self, addr: Addr, size: u8, kind: OpKind, value: u64) -> u64 {
        self.cell
            .call(ThreadOp::Access {
                addr: addr.0,
                size,
                kind,
                value,
            })
            .await
    }

    int_accessors!(load_u8, store_u8, scribble_u8, u8, 1);
    int_accessors!(load_u16, store_u16, scribble_u16, u16, 2);
    int_accessors!(load_u32, store_u32, scribble_u32, u32, 4);
    int_accessors!(load_u64, store_u64, scribble_u64, u64, 8);

    /// Loads a signed 32-bit value.
    pub async fn load_i32(&self, addr: Addr) -> i32 {
        self.load_u32(addr).await as i32
    }
    /// Stores a signed 32-bit value.
    pub async fn store_i32(&self, addr: Addr, value: i32) {
        self.store_u32(addr, value as u32).await;
    }
    /// Scribbles a signed 32-bit value.
    pub async fn scribble_i32(&self, addr: Addr, value: i32) {
        self.scribble_u32(addr, value as u32).await;
    }
    /// Loads a signed 64-bit value.
    pub async fn load_i64(&self, addr: Addr) -> i64 {
        self.load_u64(addr).await as i64
    }
    /// Stores a signed 64-bit value.
    pub async fn store_i64(&self, addr: Addr, value: i64) {
        self.store_u64(addr, value as u64).await;
    }
    /// Scribbles a signed 64-bit value.
    pub async fn scribble_i64(&self, addr: Addr, value: i64) {
        self.scribble_u64(addr, value as u64).await;
    }

    /// Loads an `f32` (bit-pattern accurate).
    pub async fn load_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.load_u32(addr).await)
    }
    /// Stores an `f32`.
    pub async fn store_f32(&self, addr: Addr, value: f32) {
        self.store_u32(addr, value.to_bits()).await;
    }
    /// Scribbles an `f32` — under Ghostwriter, small d-distances reach
    /// only the low mantissa bits (paper §3.4).
    pub async fn scribble_f32(&self, addr: Addr, value: f32) {
        self.scribble_u32(addr, value.to_bits()).await;
    }
    /// Loads an `f64`.
    pub async fn load_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.load_u64(addr).await)
    }
    /// Stores an `f64`.
    pub async fn store_f64(&self, addr: Addr, value: f64) {
        self.store_u64(addr, value.to_bits()).await;
    }
    /// Scribbles an `f64`.
    pub async fn scribble_f64(&self, addr: Addr, value: f64) {
        self.scribble_u64(addr, value.to_bits()).await;
    }

    /// Charges `cycles` of compute time on this core (models the ALU work
    /// between memory accesses).
    pub async fn work(&self, cycles: u64) {
        self.cell.call(ThreadOp::Work(cycles)).await;
    }

    /// Blocks until every live thread reaches a barrier (engine-level;
    /// costs `barrier_cost` cycles but no coherence traffic, DESIGN.md
    /// §7.5).
    pub async fn barrier(&self) {
        self.cell.call(ThreadOp::Barrier).await;
    }

    /// Enters an approximate region with the given d-distance — the
    /// paper's `approx_dist(d)` + `approx_begin(...)` pragmas (`setaprx`).
    /// Subsequent scribbles may transition blocks to `GS`/`GI`.
    pub async fn approx_begin(&self, d: u8) {
        assert!(d < 64, "d-distance must fit the widest access");
        self.cell.call(ThreadOp::ApproxBegin { d }).await;
    }

    /// Leaves the approximate region — the paper's `approx_end` pragma
    /// (`endaprx`). Blocks already in `GS`/`GI` are *not* flushed (paper
    /// §3.1); only new transitions are disabled.
    pub async fn approx_end(&self) {
        self.cell.call(ThreadOp::ApproxEnd).await;
    }
}
