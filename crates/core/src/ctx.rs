//! The workload-facing thread API.
//!
//! A [`ThreadCtx`] is handed to each workload closure; every method is one
//! simulated instruction. Loads/stores go through the simulated memory
//! hierarchy (and therefore the coherence protocol); `scribble_*` are the
//! paper's approximate stores, which take effect only inside an
//! `approx_begin`/`approx_end` region; `work` charges pure compute cycles.
//!
//! Floats travel as raw bit patterns, so the scribe comparator sees exactly
//! the bits a hardware implementation would.

use ghostwriter_mem::Addr;
use ghostwriter_sim::ThreadPort;

use crate::op::{OpKind, ThreadOp, ThreadReply};

/// Per-thread handle to the simulated machine.
pub struct ThreadCtx<'a> {
    port: &'a ThreadPort<ThreadOp, ThreadReply>,
}

macro_rules! int_accessors {
    ($load:ident, $store:ident, $scribble:ident, $ty:ty, $size:expr) => {
        /// Loads a value of this width.
        pub fn $load(&self, addr: Addr) -> $ty {
            self.access(addr, $size, OpKind::Load, 0) as $ty
        }
        /// Conventional (always coherent) store.
        pub fn $store(&self, addr: Addr, value: $ty) {
            self.access(addr, $size, OpKind::Store, value as u64);
        }
        /// Approximate store: behaves per the Ghostwriter protocol inside
        /// an approximate region, degrades to a conventional store outside
        /// one (or under the MESI baseline).
        pub fn $scribble(&self, addr: Addr, value: $ty) {
            self.access(addr, $size, OpKind::Scribble, value as u64);
        }
    };
}

impl<'a> ThreadCtx<'a> {
    /// Wraps a harness port (called by the machine, not by workloads).
    pub fn new(port: &'a ThreadPort<ThreadOp, ThreadReply>) -> Self {
        Self { port }
    }

    /// This thread's id (== the core it runs on).
    pub fn tid(&self) -> usize {
        self.port.tid()
    }

    fn access(&self, addr: Addr, size: u8, kind: OpKind, value: u64) -> u64 {
        self.port.call(ThreadOp::Access {
            addr: addr.0,
            size,
            kind,
            value,
        })
    }

    int_accessors!(load_u8, store_u8, scribble_u8, u8, 1);
    int_accessors!(load_u16, store_u16, scribble_u16, u16, 2);
    int_accessors!(load_u32, store_u32, scribble_u32, u32, 4);
    int_accessors!(load_u64, store_u64, scribble_u64, u64, 8);

    /// Loads a signed 32-bit value.
    pub fn load_i32(&self, addr: Addr) -> i32 {
        self.load_u32(addr) as i32
    }
    /// Stores a signed 32-bit value.
    pub fn store_i32(&self, addr: Addr, value: i32) {
        self.store_u32(addr, value as u32);
    }
    /// Scribbles a signed 32-bit value.
    pub fn scribble_i32(&self, addr: Addr, value: i32) {
        self.scribble_u32(addr, value as u32);
    }
    /// Loads a signed 64-bit value.
    pub fn load_i64(&self, addr: Addr) -> i64 {
        self.load_u64(addr) as i64
    }
    /// Stores a signed 64-bit value.
    pub fn store_i64(&self, addr: Addr, value: i64) {
        self.store_u64(addr, value as u64);
    }
    /// Scribbles a signed 64-bit value.
    pub fn scribble_i64(&self, addr: Addr, value: i64) {
        self.scribble_u64(addr, value as u64);
    }

    /// Loads an `f32` (bit-pattern accurate).
    pub fn load_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.load_u32(addr))
    }
    /// Stores an `f32`.
    pub fn store_f32(&self, addr: Addr, value: f32) {
        self.store_u32(addr, value.to_bits());
    }
    /// Scribbles an `f32` — under Ghostwriter, small d-distances reach
    /// only the low mantissa bits (paper §3.4).
    pub fn scribble_f32(&self, addr: Addr, value: f32) {
        self.scribble_u32(addr, value.to_bits());
    }
    /// Loads an `f64`.
    pub fn load_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.load_u64(addr))
    }
    /// Stores an `f64`.
    pub fn store_f64(&self, addr: Addr, value: f64) {
        self.store_u64(addr, value.to_bits());
    }
    /// Scribbles an `f64`.
    pub fn scribble_f64(&self, addr: Addr, value: f64) {
        self.scribble_u64(addr, value.to_bits());
    }

    /// Charges `cycles` of compute time on this core (models the ALU work
    /// between memory accesses).
    pub fn work(&self, cycles: u64) {
        self.port.call(ThreadOp::Work(cycles));
    }

    /// Blocks until every live thread reaches a barrier (engine-level;
    /// costs `barrier_cost` cycles but no coherence traffic, DESIGN.md
    /// §7.5).
    pub fn barrier(&self) {
        self.port.call(ThreadOp::Barrier);
    }

    /// Enters an approximate region with the given d-distance — the
    /// paper's `approx_dist(d)` + `approx_begin(...)` pragmas (`setaprx`).
    /// Subsequent scribbles may transition blocks to `GS`/`GI`.
    pub fn approx_begin(&self, d: u8) {
        assert!(d < 64, "d-distance must fit the widest access");
        self.port.call(ThreadOp::ApproxBegin { d });
    }

    /// Leaves the approximate region — the paper's `approx_end` pragma
    /// (`endaprx`). Blocks already in `GS`/`GI` are *not* flushed (paper
    /// §3.1); only new transitions are disabled.
    pub fn approx_end(&self) {
        self.port.call(ThreadOp::ApproxEnd);
    }
}
