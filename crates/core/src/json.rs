//! Hand-rolled, dependency-free JSON reader/writer.
//!
//! The offline build policy forbids serde (DESIGN.md §8), but the
//! experiment engine needs a durable on-disk format for [`crate::Stats`]
//! records. This module implements the subset of JSON the workspace
//! needs: objects (order-preserving), arrays, strings, booleans, null,
//! and numbers split into unsigned/signed integers and finite floats so
//! `u64` counters round-trip exactly (an `f64` mantissa cannot hold
//! `u64::MAX`).
//!
//! The writer is canonical: a given [`Json`] value always serializes to
//! the same byte sequence (object fields keep insertion order, floats
//! use Rust's shortest round-trip formatting), which is what lets the
//! result cache promise byte-identical hits and lets golden tests diff
//! snapshots textually.

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (preserves full `u64` precision).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Finite float; the writer rejects NaN/inf.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Order-preserving object (no duplicate-key checking; the writer
    /// emits fields in insertion order).
    Obj(Vec<(String, Json)>),
}

/// A parse or schema error with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input (0 for schema errors on parsed values).
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(pos: usize, msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        pos,
        msg: msg.into(),
    })
}

impl Json {
    /// Convenience constructor for an object under construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects (builder
    /// misuse, not data-dependent).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a schema error on absence.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            pos: 0,
            msg: format!("missing field `{key}`"),
        })
    }

    /// Unsigned integer view (accepts exact non-negative `I64` too).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match *self {
            Json::U64(v) => Ok(v),
            Json::I64(v) if v >= 0 => Ok(v as u64),
            ref other => err(0, format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// Float view (integers widen; `u64` values above 2^53 lose
    /// precision here, so counters should be read with [`Json::as_u64`]).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match *self {
            Json::F64(v) => Ok(v),
            Json::U64(v) => Ok(v as f64),
            Json::I64(v) => Ok(v as f64),
            ref other => err(0, format!("expected number, got {other:?}")),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(0, format!("expected string, got {other:?}")),
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(0, format!("expected array, got {other:?}")),
        }
    }

    /// Serializes canonically with 2-space indentation and a trailing
    /// newline (the cache-file format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes canonically on one line (used inside checksums).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                assert!(v.is_finite(), "JSON cannot represent NaN/inf");
                // `{:?}` is Rust's shortest representation that parses
                // back to the identical f64.
                out.push_str(&format!("{v:?}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(pos, "trailing characters after document");
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|n| n + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match inner {
            Some(n) => {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
            }
        }
        item(out, i, inner);
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(n));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        err(*pos, format!("expected `{}`", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err(*pos, "unexpected end of input"),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(*pos, format!("expected `{lit}`"))
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return err(*pos, "expected `,` or `}`"),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(*pos, "expected `,` or `]`"),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or_else(|| JsonError {
                            pos: *pos,
                            msg: "truncated \\u escape".into(),
                        })?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).unwrap_or("x"), 16)
                            .map_err(|_| JsonError {
                                pos: *pos,
                                msg: "bad \\u escape".into(),
                            })?;
                        // Surrogate pairs are not needed by our own
                        // writer; reject rather than mis-decode.
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return err(*pos, "unpaired surrogate in \\u escape"),
                        }
                        *pos += 4;
                    }
                    _ => return err(*pos, "bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    pos: *pos,
                    msg: "invalid utf-8".into(),
                })?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    if text.is_empty() || text == "-" {
        return err(start, "expected a number");
    }
    if is_float {
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            _ => err(start, format!("bad float `{text}`")),
        }
    } else if let Some(neg) = text.strip_prefix('-') {
        match neg.parse::<i64>() {
            Ok(v) => Ok(Json::I64(-v)),
            Err(_) => err(start, format!("integer out of range `{text}`")),
        }
    } else {
        match text.parse::<u64>() {
            Ok(v) => Ok(Json::U64(v)),
            Err(_) => err(start, format!("integer out of range `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_edge_integers() {
        for v in [0u64, 1, 2_u64.pow(53) + 1, u64::MAX] {
            let text = Json::U64(v).to_compact();
            assert_eq!(Json::parse(&text).unwrap(), Json::U64(v), "value {v}");
        }
        let text = Json::I64(i64::MIN + 1).to_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::I64(i64::MIN + 1));
    }

    #[test]
    fn round_trips_floats_exactly() {
        for v in [0.0f64, -0.5, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX] {
            let text = Json::F64(v).to_compact();
            match Json::parse(&text).unwrap() {
                Json::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "value {v}"),
                // 0.0 serializes as "0.0" so it always stays a float.
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn writer_rejects_nan() {
        Json::F64(f64::NAN).to_compact();
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let text = Json::Str(s.into()).to_compact();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.into()));
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn object_order_is_preserved() {
        let mut o = Json::obj();
        o.push("z", Json::U64(1)).push("a", Json::U64(2));
        let text = o.to_compact();
        assert_eq!(text, r#"{"z": 1, "a": 2}"#);
        assert_eq!(Json::parse(&text).unwrap(), o);
    }

    #[test]
    fn pretty_and_compact_parse_identically() {
        let mut o = Json::obj();
        o.push(
            "xs",
            Json::Arr(vec![Json::U64(1), Json::Null, Json::Bool(true)]),
        );
        o.push("nested", {
            let mut n = Json::obj();
            n.push("f", Json::F64(2.5));
            n
        });
        assert_eq!(
            Json::parse(&o.to_pretty()).unwrap(),
            Json::parse(&o.to_compact()).unwrap()
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "{} junk",
            "nan",
            "18446744073709551616",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_report_schema_errors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x"}"#).unwrap();
        assert_eq!(doc.field("n").unwrap().as_u64().unwrap(), 3);
        assert!(doc.field("missing").is_err());
        assert!(doc.field("s").unwrap().as_u64().is_err());
        assert_eq!(doc.field("s").unwrap().as_str().unwrap(), "x");
    }
}
