//! The private L1 cache controller: baseline MESI states plus the
//! Ghostwriter approximate states `GS` and `GI` (paper Fig. 3).
//!
//! The controller is written in the *outbox* style: it never talks to the
//! network or the core directly, it returns a list of [`L1Out`] actions for
//! the machine to perform. That keeps every transition unit-testable
//! without building a whole machine.
//!
//! State glossary (stable states; `I` always means *tag present, data
//! stale* — a fully absent block simply has no line):
//!
//! | state | permissions | directory view |
//! |-------|-------------|----------------|
//! | `I`   | none        | not a sharer   |
//! | `S`   | read        | sharer         |
//! | `E`   | read (+silent write→M) | owner |
//! | `M`   | read/write  | owner          |
//! | `O`   | read (dirty; MOESI/MOSI) | distinguished owner + sharers |
//! | `F`   | read (clean forwarder; MESIF) | designated data source |
//! | `GS`  | read/write *locally* (hidden) | still a sharer |
//! | `GI`  | read/write *locally* (hidden) | not tracked |
//!
//! Transient states: `IS_D` (GETS outstanding), `IM_AD` (GETX outstanding),
//! `SM_A` (UPGRADE outstanding; demoted to `IM_AD` if invalidated while
//! waiting, in which case the directory answers with data instead).

use ghostwriter_mem::{
    Addr, BlockAddr, BlockData, Line, LookupResult, ProbedWay, SetAssocCache, WayLookup,
};

use crate::config::{BaseProtocol, GiStorePolicy};
use crate::fault::RecoveryParams;
use crate::msg::{Endpoint, Grant, Msg, OwnerXfer, Payload, WireTag};
use crate::proto::{Controller, Homing, L1RowId, L1RowSet, ProtocolError};
use crate::scribe::ScribePolicy;
use crate::stats::Stats;

/// L1 coherence states (Fig. 3 plus the standard directory-protocol
/// transients).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum L1State {
    /// Tag present, data stale, no permissions.
    I,
    /// Shared, read-only.
    S,
    /// Exclusive clean, silent upgrade to M permitted.
    E,
    /// Modified, read/write.
    M,
    /// MOESI/MOSI Owned: dirty but shared read-only; this cache is the
    /// distinguished owner and sources the data for later readers,
    /// eliding the L2 fill.
    O,
    /// MESIF Forward: clean shared read-only; this cache is the
    /// designated forwarder and answers later `FwdGets` instead of L2.
    F,
    /// Ghostwriter: locally modified *shared* block, hidden from the
    /// global view; still on the directory's sharer list.
    Gs,
    /// Ghostwriter: locally modified *invalid* block, hidden from the
    /// global view; untracked, reaped by the periodic timeout.
    Gi,
    /// GETS outstanding.
    IsD,
    /// GETX outstanding (also UPGRADE after losing the race).
    ImAd,
    /// UPGRADE outstanding.
    SmA,
}

/// A demand access from the core.
#[derive(Clone, Copy, Debug, Hash)]
pub struct CoreReq {
    pub addr: Addr,
    /// Access width in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// Store value (ignored for loads).
    pub value: u64,
    pub kind: AccessKind,
}

/// Demand access flavours. The machine resolves a thread's `scribble` into
/// `Scribble { d }` only when the core's approximate region is active and
/// the protocol is Ghostwriter; otherwise it arrives as `Store`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessKind {
    Load,
    Store,
    Scribble { d: u8 },
}

impl AccessKind {
    fn is_store_like(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// Ghostwriter knobs for the L1 (None = baseline MESI).
#[derive(Clone, Copy, Debug, Hash)]
pub struct GwParams {
    pub scribe: ScribePolicy,
    pub enable_gs: bool,
    pub enable_gi: bool,
    pub gi_stores: GiStorePolicy,
    /// §3.5 error bound: max hidden writes before a forced publish.
    pub max_hidden_writes: Option<u32>,
}

/// Actions the machine must perform on the controller's behalf.
#[derive(Debug)]
pub enum L1Out {
    /// The outstanding demand access completed with this (load) value.
    Reply { value: u64 },
    /// Send a protocol message.
    Send(Msg),
}

#[derive(Clone, Copy, Debug, Hash)]
struct L1Meta {
    state: L1State,
    /// Hidden (GS/GI) writes since the line's last coherent sync; drives
    /// the optional §3.5 error bound.
    hidden_writes: u32,
}

impl L1Meta {
    fn new(state: L1State) -> Self {
        Self {
            state,
            hidden_writes: 0,
        }
    }
}

/// Writeback-buffer entry: holds an evicted E/M/O block until the
/// directory acknowledges the PUT, and answers forwards that race with
/// the eviction.
#[derive(Clone, Debug, Hash)]
struct WbEntry {
    data: BlockData,
}

/// Writeback-buffer capacity, in entries. An entry lives for one
/// PUT→WB_ACK round trip and the in-order core issues at most one miss
/// (and thus one eviction chain) at a time, so the steady-state
/// occupancy is tiny; 16 gives generous slack for ack backlog while
/// keeping the buffer a fixed-width array the hot path scans linearly.
pub const WB_BUFFER_WAYS: usize = 16;

/// Why a writeback-buffer insertion was refused.
enum WbInsertError {
    /// The block already has a buffered writeback (double eviction).
    Duplicate,
    /// All [`WB_BUFFER_WAYS`] entries are occupied.
    Full,
}

/// Fixed-capacity writeback buffer: a small inline vector scanned
/// linearly. With at most [`WB_BUFFER_WAYS`] entries a scan beats the
/// former per-block `HashMap` on every lookup the hot path makes.
#[derive(Clone, Debug, Default)]
struct WbBuffer {
    entries: Vec<(BlockAddr, WbEntry)>,
}

impl WbBuffer {
    fn get(&self, block: BlockAddr) -> Option<&WbEntry> {
        self.entries
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, e)| e)
    }

    fn insert(&mut self, block: BlockAddr, entry: WbEntry) -> Result<(), WbInsertError> {
        if self.entries.iter().any(|(b, _)| *b == block) {
            return Err(WbInsertError::Duplicate);
        }
        if self.entries.len() >= WB_BUFFER_WAYS {
            return Err(WbInsertError::Full);
        }
        self.entries.push((block, entry));
        Ok(())
    }

    fn remove(&mut self, block: BlockAddr) -> Option<WbEntry> {
        let i = self.entries.iter().position(|(b, _)| *b == block)?;
        Some(self.entries.swap_remove(i).1)
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn drain(&mut self) -> impl Iterator<Item = (BlockAddr, WbEntry)> + '_ {
        self.entries.drain(..)
    }
}

/// What an L1 answers a directory forward with.
enum FwdReply {
    /// The block's bytes plus what the holder did with its own copy.
    Data { data: BlockData, xfer: OwnerXfer },
    /// MESIF only: the clean F copy is already gone (`FwdNack`).
    Nack,
}

/// The per-core L1 data-cache controller.
///
/// `Clone` snapshots the full architectural state — the model checker
/// forks a controller at every branching point of its search.
#[derive(Clone)]
pub struct L1Cache {
    core: usize,
    cache: SetAssocCache<L1Meta>,
    /// The single outstanding demand miss (in-order blocking core).
    pending: Option<CoreReq>,
    wb_buffer: WbBuffer,
    gw: Option<GwParams>,
    collect_similarity: bool,
    homing: Homing,
    /// The live transition-table subset for this configuration
    /// (`core::proto`): MESI/ablation variants are row deltas, and the
    /// guards below consult this set instead of config flags.
    rows: L1RowSet,
    /// Row deleted by a checker mutation (`delete-row:<name>`); firing
    /// it raises a [`ProtocolError`].
    disabled: Option<L1RowId>,
    /// Fault-recovery knobs. `None` (the default) keeps the recovery
    /// rows dead and every outgoing message on the default wire tag, so
    /// fault-free hashes and fingerprints are untouched.
    recovery: Option<RecoveryParams>,
    /// Next transaction sequence number to assign (starts at 1; 0 is
    /// the untagged sentinel). Only advanced when recovery is on.
    next_seq: u32,
    /// Sequence number of the outstanding transaction (0 = none).
    cur_seq: u32,
    /// Request payload of the outstanding transaction (`Gets`/`Getx`/
    /// `Upgrade`), kept so timeouts and NACKs can resend it verbatim.
    cur_req: Option<Payload>,
    /// Retries already spent on the outstanding transaction.
    retries_used: u32,
}

impl std::hash::Hash for L1Cache {
    /// Architectural-state hash for the model checker's visited set.
    ///
    /// `collect_similarity` only gates write-only statistics and `rows`/
    /// `disabled` are fixed per configuration (derived from `gw` and the
    /// mutation under test); none can diverge between two states of one
    /// search, so they are excluded.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.core.hash(state);
        self.cache.hash(state);
        self.pending.hash(state);
        let mut wb: Vec<_> = self.wb_buffer.entries.iter().collect();
        wb.sort_by_key(|(b, _)| *b);
        wb.hash(state);
        self.gw.hash(state);
        self.homing.hash(state);
        // The recovery bookkeeping is architectural *only* when recovery
        // is configured; hashing it conditionally keeps every recovery-
        // off hash byte-identical to the pre-recovery implementation.
        if self.recovery.is_some() {
            self.next_seq.hash(state);
            self.cur_seq.hash(state);
            self.cur_req.hash(state);
            self.retries_used.hash(state);
        }
    }
}

/// Home L2 bank of a block: low-order interleave across banks.
pub fn home_bank(block: BlockAddr, banks: usize) -> usize {
    Homing::new(banks).home(block)
}

impl L1Cache {
    /// Builds an L1 with `sets × ways` lines for core `core` in a machine
    /// with `banks` L2 banks.
    pub fn new(
        core: usize,
        sets: usize,
        ways: usize,
        banks: usize,
        base: BaseProtocol,
        gw: Option<GwParams>,
        collect_similarity: bool,
    ) -> Self {
        Self {
            core,
            cache: SetAssocCache::new(sets, ways),
            pending: None,
            wb_buffer: WbBuffer::default(),
            gw,
            collect_similarity,
            homing: Homing::new(banks),
            rows: L1RowSet::for_config(base, gw.as_ref()),
            disabled: None,
            recovery: None,
            next_seq: 1,
            cur_seq: 0,
            cur_req: None,
            retries_used: 0,
        }
    }

    /// Enables the fault-recovery rows: outgoing requests are sequence-
    /// tagged, stale/duplicate grants are dropped instead of being
    /// protocol errors, tainted fills are absorbed or refetched, and
    /// [`L1Cache::retry_pending_into`] becomes live.
    pub fn set_recovery(&mut self, params: RecoveryParams) {
        self.recovery = Some(params);
    }

    /// Sequence number of the outstanding transaction, if recovery is on
    /// and a demand miss is in flight. The machine's retry timer keys on
    /// this to detect that the transaction it armed for is still stuck.
    pub fn pending_seq(&self) -> Option<u32> {
        match (&self.recovery, &self.pending) {
            (Some(_), Some(_)) if self.cur_seq != 0 => Some(self.cur_seq),
            _ => None,
        }
    }

    /// Retries already spent on the outstanding transaction (drives the
    /// machine's exponential backoff).
    pub fn retries_used(&self) -> u32 {
        self.retries_used
    }

    /// Block of the outstanding demand miss, if any (pairs with
    /// [`L1Cache::pending_seq`] so the harness can ask the block's home
    /// bank whether a resend would make progress).
    pub fn pending_block(&self) -> Option<BlockAddr> {
        self.pending.as_ref().map(|r| r.addr.block())
    }

    /// Fault-injection hook for the defensive-row unit tests: plants a
    /// line for `block` in an arbitrary coherence state without going
    /// through a demand access, the way a corrupted or byzantine
    /// controller would leave it. `pending` and the writeback buffer
    /// stay untouched, so the otherwise-unreachable `Reach::Never`
    /// rows (e.g. a demand access against a transient line with no
    /// outstanding request) can be exercised and asserted to produce a
    /// typed [`ProtocolError`], not a panic.
    pub fn force_line(&mut self, block: BlockAddr, state: L1State) {
        let way = match self.cache.lookup_for_insert(block) {
            LookupResult::Hit { way }
            | LookupResult::Free { way }
            | LookupResult::Victim { way, .. } => way,
        };
        self.cache
            .insert_at(way, block, L1Meta::new(state), BlockData::zeroed());
    }

    /// Deletes the named table row (checker mutation support): the next
    /// time the row fires, the controller reports a [`ProtocolError`]
    /// instead of transitioning. Returns false for names that are not L1
    /// rows.
    pub fn disable_row(&mut self, name: &str) -> bool {
        match L1RowId::by_name(name) {
            Some(id) => {
                self.disabled = Some(id);
                true
            }
            None => false,
        }
    }

    fn ctl(&self) -> Controller {
        Controller::L1 { core: self.core }
    }

    /// Single owner of the modeled tag-probe energy charge (paper energy
    /// model): the sites that *model* a tag-array probe — transaction-
    /// starting misses and incoming invalidations — all charge through
    /// here. The modeled count is deliberately decoupled from the number
    /// of physical [`SetAssocCache`] lookups the way-threaded
    /// implementation performs, so layout refactors cannot drift the
    /// energy statistics.
    #[inline]
    fn charge_tag_probe(stats: &mut Stats) {
        stats.energy_events.l1_tag_probes += 1;
    }

    /// Table dispatch: records the row hit in the coverage counters and
    /// refuses to fire a row deleted by a checker mutation.
    fn row(&self, id: L1RowId, stats: &mut Stats) -> Result<(), ProtocolError> {
        stats.coverage.l1[id as usize] += 1;
        if self.disabled == Some(id) {
            return Err(ProtocolError::row(
                self.ctl(),
                id.name(),
                "row deleted by mutation",
            ));
        }
        Ok(())
    }

    /// An error (`Reach::Never`) row fired: record the hit and build the
    /// protocol error the caller returns.
    fn error(&self, id: L1RowId, stats: &mut Stats, detail: impl Into<String>) -> ProtocolError {
        stats.coverage.l1[id as usize] += 1;
        ProtocolError::row(self.ctl(), id.name(), detail)
    }

    /// Core index of this L1.
    pub fn core(&self) -> usize {
        self.core
    }

    /// True while a demand miss is outstanding (core blocked).
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Physical tag lookups performed by this controller's cache array
    /// (tests only; see [`SetAssocCache::phys_lookups`]). Counts every
    /// lookup entry point including memo hits, so "one lookup per
    /// access" is a real claim about the way-threaded paths.
    #[cfg(debug_assertions)]
    pub fn phys_lookups(&self) -> u64 {
        self.cache.phys_lookups()
    }

    /// Coherence state of `block`, if resident (for tests and tracing).
    pub fn state_of(&self, block: BlockAddr) -> Option<L1State> {
        self.cache.get(block).map(|l| l.meta.state)
    }

    /// Hidden-write count of `block`, if resident (for the model
    /// checker's §3.5 error-bound invariant).
    pub fn hidden_writes_of(&self, block: BlockAddr) -> Option<u32> {
        self.cache.get(block).map(|l| l.meta.hidden_writes)
    }

    /// Word currently stored at `addr` in this cache, if resident
    /// (for tests: observes hidden GS/GI values).
    pub fn peek_word(&self, addr: Addr, size: usize) -> Option<u64> {
        self.cache
            .get(addr.block())
            .map(|l| l.data.read_word(addr.offset(), size))
    }

    fn msg(&self, block: BlockAddr, payload: Payload) -> Msg {
        let dst = Endpoint::Dir(self.homing.home(block));
        Msg {
            src: Endpoint::L1(self.core),
            dst,
            block,
            payload,
            tag: WireTag::default(),
        }
    }

    /// Opens a coherence transaction: records the pending demand access
    /// and emits its request. With recovery on the request is stamped
    /// with a fresh sequence number and its payload retained so timeouts
    /// and conflict NACKs can resend it verbatim; with recovery off this
    /// is exactly the former two-line `pending = ...; Send(...)` idiom.
    fn start_txn(
        &mut self,
        req: CoreReq,
        block: BlockAddr,
        payload: Payload,
        out: &mut Vec<L1Out>,
    ) {
        let mut msg = self.msg(block, payload.clone());
        if self.recovery.is_some() {
            self.cur_seq = self.next_seq;
            // Wrap past 0: sequence 0 is the untagged sentinel.
            self.next_seq = match self.next_seq.wrapping_add(1) {
                0 => 1,
                n => n,
            };
            self.cur_req = Some(payload);
            self.retries_used = 0;
            msg.tag = WireTag::seq(self.cur_seq);
        }
        self.pending = Some(req);
        out.push(L1Out::Send(msg));
    }

    /// Resends the outstanding request with its original sequence number
    /// (same transaction, not a new one). Charges the given retry row:
    /// `retry_resend` for timeouts, `req_nacked` for conflict NACKs.
    fn resend_pending(
        &mut self,
        row: L1RowId,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        self.row(row, stats)?;
        let block = self
            .pending
            .as_ref()
            .expect("resend with a pending transaction")
            .addr
            .block();
        let payload = self.cur_req.clone().expect("request payload recorded");
        let mut msg = self.msg(block, payload);
        msg.tag = WireTag::seq(self.cur_seq);
        out.push(L1Out::Send(msg));
        Ok(())
    }

    /// Closes the outstanding transaction's recovery bookkeeping (the
    /// grant landed). No-op state with recovery off.
    fn complete_txn(&mut self) {
        self.cur_seq = 0;
        self.cur_req = None;
        self.retries_used = 0;
    }

    /// Retry-timeout entry point (machine `RetryCheck`, checker `r{core}`
    /// action): resends the outstanding request, or raises the typed
    /// `retry_exhausted` error once the budget is spent. Returns `false`
    /// (no-op) if recovery is off or no transaction is outstanding —
    /// a stale timer, not an error.
    pub fn retry_pending_into(
        &mut self,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<bool, ProtocolError> {
        let Some(rec) = self.recovery else {
            return Ok(false);
        };
        if self.pending.is_none() || self.cur_seq == 0 {
            return Ok(false);
        }
        if self.retries_used >= rec.max_retries {
            return Err(self.error(
                L1RowId::RetryExhausted,
                stats,
                format!(
                    "transaction seq {} lost after {} retries",
                    self.cur_seq, self.retries_used
                ),
            ));
        }
        self.retries_used += 1;
        stats.retries += 1;
        self.resend_pending(L1RowId::RetryResend, stats, out)?;
        Ok(true)
    }

    /// Fault-injection hook (SEU model): flips `bit` of the `nth`
    /// resident stable line's data, wrapping `nth` over the resident
    /// population. Transient lines are skipped — their data is garbage
    /// awaiting a fill. Returns false if nothing is resident.
    pub fn corrupt_resident(&mut self, nth: u64, bit: u32) -> bool {
        let stable = |s: L1State| {
            matches!(
                s,
                L1State::S
                    | L1State::E
                    | L1State::M
                    | L1State::O
                    | L1State::F
                    | L1State::Gs
                    | L1State::Gi
            )
        };
        let count = self.cache.iter().filter(|l| stable(l.meta.state)).count();
        if count == 0 {
            return false;
        }
        let idx = (nth % count as u64) as usize;
        let line = self
            .cache
            .iter_mut()
            .filter(|l| stable(l.meta.state))
            .nth(idx)
            .expect("indexed within resident count");
        let bit = bit as usize % (line.data.as_bytes().len() * 8);
        line.data.as_bytes_mut()[bit / 8] ^= 1 << (bit % 8);
        true
    }

    /// Handles a demand access from the core. Returns either a same-cycle
    /// `Reply` (hit) or the messages of a coherence transaction (miss);
    /// in the latter case the core blocks until the fill completes.
    ///
    /// `Err` means the transition table has no row for what happened — a
    /// protocol error the harness surfaces as a violation.
    pub fn access(&mut self, req: CoreReq, stats: &mut Stats) -> Result<Vec<L1Out>, ProtocolError> {
        let mut out = Vec::new();
        self.access_into(req, stats, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`L1Cache::access`]: appends outputs to
    /// `out` instead of returning a fresh `Vec`. The simulation kernel
    /// calls this with a reused scratch buffer.
    pub fn access_into(
        &mut self,
        req: CoreReq,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        assert!(
            self.pending.is_none(),
            "core {} issued a second outstanding access",
            self.core
        );
        match req.kind {
            AccessKind::Load => stats.loads += 1,
            AccessKind::Store => stats.stores += 1,
            AccessKind::Scribble { .. } => stats.scribbles += 1,
        }
        let block = req.addr.block();
        let offset = req.addr.offset();
        let size = req.size as usize;
        assert!(
            req.addr.fits_in_block(size),
            "access at {:?} size {} crosses a block boundary",
            req.addr,
            size
        );

        // One physical tag lookup classifies the whole access; the
        // resulting token is threaded through every helper below.
        let way = match self.cache.lookup_way(block) {
            WayLookup::Hit(w) => {
                // Similarity profiling (Fig. 2): every store-like access
                // that finds the block's tag compares the incoming word
                // with the word it overwrites, irrespective of coherence
                // state.
                if req.kind.is_store_like() && self.collect_similarity {
                    let old = self.cache.line_at(w).data.read_word(offset, size);
                    stats.similarity.record(old, req.value, (size * 8) as u32);
                }
                let state = self.cache.line_at(w).meta.state;
                return self.access_tagged(req, w, state, stats, out);
            }
            WayLookup::Free { way } => way,
            WayLookup::Victim(v) => {
                // True miss into a full set: evict through the victim's
                // token, then reuse its way for the fill.
                let way = v.way();
                let line = self.cache.remove_at(v);
                self.evict(line, stats, out)?;
                way
            }
        };

        // True miss: no tag. The line is allocated below and the
        // transaction starts.
        Self::charge_tag_probe(stats);
        let (row, state, payload) = if req.kind.is_store_like() {
            (L1RowId::MissStore, L1State::ImAd, Payload::Getx)
        } else {
            (L1RowId::MissLoad, L1State::IsD, Payload::Gets)
        };
        self.row(row, stats)?;
        if req.kind.is_store_like() {
            stats.l1_store_misses += 1;
        } else {
            stats.l1_load_misses += 1;
        }
        self.cache
            .insert_at(way, block, L1Meta::new(state), BlockData::zeroed());
        self.start_txn(req, block, payload, out);
        Ok(())
    }

    /// Demand access when the block's tag is present in state `state`;
    /// `w` is the line's probe token from the access's single physical
    /// tag lookup.
    fn access_tagged(
        &mut self,
        req: CoreReq,
        w: ProbedWay,
        state: L1State,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        let block = req.addr.block();
        let offset = req.addr.offset();
        let size = req.size as usize;
        let width = (size * 8) as u32;

        // Whether a scribble passes the scribe comparator against the
        // word currently in the block (stale or not).
        let scribble_pass = |line_data: &BlockData, d: u8, gw: &GwParams| {
            gw.scribe.within(
                line_data.read_word(offset, size),
                req.value,
                width,
                d as u32,
            )
        };
        // §3.5 error bound: once a line has accumulated `max_hidden_writes`
        // hidden updates without a coherent resync, force the next
        // scribble down the conventional path (publishing / refetching).
        let bound_ok = |meta: &L1Meta, gw: &GwParams| match gw.max_hidden_writes {
            Some(bound) => meta.hidden_writes < bound,
            None => true,
        };

        match req.kind {
            AccessKind::Load => match state {
                L1State::S | L1State::E | L1State::M | L1State::Gs => {
                    self.row(L1RowId::LoadHit, stats)?;
                    stats.l1_load_hits += 1;
                    stats.energy_events.l1_reads += 1;
                    self.cache.touch_at(w);
                    let v = self.cache.line_at(w).data.read_word(offset, size);
                    {
                        out.push(L1Out::Reply { value: v });
                        Ok(())
                    }
                }
                L1State::O | L1State::F => {
                    let row = if state == L1State::O {
                        L1RowId::LoadHitOwned
                    } else {
                        L1RowId::LoadHitFwd
                    };
                    self.row(row, stats)?;
                    stats.l1_load_hits += 1;
                    stats.energy_events.l1_reads += 1;
                    self.cache.touch_at(w);
                    let v = self.cache.line_at(w).data.read_word(offset, size);
                    {
                        out.push(L1Out::Reply { value: v });
                        Ok(())
                    }
                }
                L1State::Gi => {
                    self.row(L1RowId::LoadHitGi, stats)?;
                    stats.l1_load_hits += 1;
                    stats.gi_load_hits += 1;
                    stats.energy_events.l1_reads += 1;
                    self.cache.touch_at(w);
                    let v = self.cache.line_at(w).data.read_word(offset, size);
                    {
                        out.push(L1Out::Reply { value: v });
                        Ok(())
                    }
                }
                L1State::I => {
                    // Coherence (or capacity-invalidated) load miss.
                    self.row(L1RowId::LoadInvalid, stats)?;
                    stats.l1_load_misses += 1;
                    Self::charge_tag_probe(stats);
                    self.cache.line_at_mut(w).meta.state = L1State::IsD;
                    {
                        self.start_txn(req, block, Payload::Gets, out);
                        Ok(())
                    }
                }
                t => Err(self.error(
                    L1RowId::LoadTransient,
                    stats,
                    format!("load while transient {t:?}"),
                )),
            },

            AccessKind::Store | AccessKind::Scribble { .. } => {
                let d = match req.kind {
                    AccessKind::Scribble { d } => Some(d),
                    _ => None,
                };
                match state {
                    L1State::M => {
                        self.row(L1RowId::StoreHitM, stats)?;
                        self.write_hit(w, offset, size, req.value, stats);
                        {
                            out.push(L1Out::Reply { value: 0 });
                            Ok(())
                        }
                    }
                    L1State::E => {
                        self.row(L1RowId::StoreHitE, stats)?;
                        self.write_hit(w, offset, size, req.value, stats);
                        self.cache.line_at_mut(w).meta.state = L1State::M;
                        {
                            out.push(L1Out::Reply { value: 0 });
                            Ok(())
                        }
                    }
                    L1State::O | L1State::F => {
                        // Both are read-only shared states: publishing a
                        // store goes down the conventional UPGRADE path
                        // (scribbles included — an O line is already
                        // dirty-global, an F line is a clean copy, so
                        // neither admits a hidden GS entry).
                        let row = if state == L1State::O {
                            L1RowId::UpgradeFromO
                        } else {
                            L1RowId::UpgradeFromF
                        };
                        self.row(row, stats)?;
                        stats.upgrades_from_s += 1;
                        stats.l1_store_misses += 1;
                        Self::charge_tag_probe(stats);
                        self.cache.line_at_mut(w).meta.state = L1State::SmA;
                        {
                            self.start_txn(req, block, Payload::Upgrade, out);
                            Ok(())
                        }
                    }
                    L1State::Gi => {
                        // Fig. 3/Fig. 5: loads, conventional stores and
                        // *passing* scribbles hit on a GI block (hidden
                        // local writes). What a *failing* scribble does is
                        // policy (see GiStorePolicy): under `Capture` it
                        // hits like any store (Fig. 3's Store self-loop);
                        // under `Fallback` it "falls back to the
                        // conventional coherence mechanisms" (§3.1) and
                        // issues a GETX, ending the hidden window (the
                        // fetched coherent data overwrites the forfeited
                        // local updates).
                        let gw = self.gw;
                        let pass = match (d, &gw) {
                            // A failing scribble only breaks the window
                            // when the GI-break row is live (Fallback);
                            // under Capture the table deletes it and the
                            // scribble is captured like a store.
                            (Some(d), Some(gw)) => {
                                bound_ok(&self.cache.line_at(w).meta, gw)
                                    && (!self.rows.contains(L1RowId::GiBreak)
                                        || scribble_pass(&self.cache.line_at(w).data, d, gw))
                            }
                            // Conventional store: Fig. 3 Store self-loop.
                            (None, _) => true,
                            (Some(_), None) => {
                                return Err(ProtocolError::internal(
                                    self.ctl(),
                                    format!("GI line {block:?} without GW params"),
                                ))
                            }
                        };
                        if pass {
                            self.row(L1RowId::GiStoreHit, stats)?;
                            stats.gi_store_hits += 1;
                            self.write_hit(w, offset, size, req.value, stats);
                            self.cache.line_at_mut(w).meta.hidden_writes += 1;
                            {
                                out.push(L1Out::Reply { value: 0 });
                                Ok(())
                            }
                        } else {
                            self.row(L1RowId::GiBreak, stats)?;
                            stats.stores_on_invalid_tagged += 1;
                            stats.l1_store_misses += 1;
                            Self::charge_tag_probe(stats);
                            stats.gi_breaks += 1;
                            self.cache.line_at_mut(w).meta.state = L1State::ImAd;
                            {
                                self.start_txn(req, block, Payload::Getx, out);
                                Ok(())
                            }
                        }
                    }
                    L1State::S => {
                        // The S→GS entry row is a table delta: removed
                        // under the baseline and the no-GS ablation.
                        let gw = self.gw;
                        let pass = self.rows.contains(L1RowId::EnterGs)
                            && matches!((d, &gw), (Some(d), Some(gw))
                                if bound_ok(&self.cache.line_at(w).meta, gw)
                                && scribble_pass(&self.cache.line_at(w).data, d, gw));
                        if pass {
                            // S → GS: write locally, no coherence actions.
                            self.row(L1RowId::EnterGs, stats)?;
                            stats.serviced_by_gs += 1;
                            self.write_hit(w, offset, size, req.value, stats);
                            let meta = &mut self.cache.line_at_mut(w).meta;
                            meta.state = L1State::Gs;
                            meta.hidden_writes += 1;
                            {
                                out.push(L1Out::Reply { value: 0 });
                                Ok(())
                            }
                        } else {
                            // Conventional path: UPGRADE.
                            self.row(L1RowId::UpgradeFromS, stats)?;
                            stats.upgrades_from_s += 1;
                            stats.l1_store_misses += 1;
                            Self::charge_tag_probe(stats);
                            self.cache.line_at_mut(w).meta.state = L1State::SmA;
                            {
                                self.start_txn(req, block, Payload::Upgrade, out);
                                Ok(())
                            }
                        }
                    }
                    L1State::Gs => {
                        let gw = self.gw;
                        let pass = matches!((d, &gw), (Some(d), Some(gw))
                            if bound_ok(&self.cache.line_at(w).meta, gw)
                            && scribble_pass(&self.cache.line_at(w).data, d, gw));
                        if pass {
                            self.row(L1RowId::GsHit, stats)?;
                            stats.gs_hits += 1;
                            self.write_hit(w, offset, size, req.value, stats);
                            self.cache.line_at_mut(w).meta.hidden_writes += 1;
                            {
                                out.push(L1Out::Reply { value: 0 });
                                Ok(())
                            }
                        } else {
                            // Conventional store from GS publishes the
                            // locally modified block via UPGRADE (Fig. 3:
                            // GS --Store/UPGRADE--> M).
                            self.row(L1RowId::UpgradeFromGs, stats)?;
                            stats.upgrades_from_gs += 1;
                            stats.l1_store_misses += 1;
                            Self::charge_tag_probe(stats);
                            self.cache.line_at_mut(w).meta.state = L1State::SmA;
                            {
                                self.start_txn(req, block, Payload::Upgrade, out);
                                Ok(())
                            }
                        }
                    }
                    L1State::I => {
                        // The I→GI entry row is a table delta: removed
                        // under the baseline and the no-GI ablation.
                        let gw = self.gw;
                        let pass = self.rows.contains(L1RowId::EnterGi)
                            && matches!((d, &gw), (Some(d), Some(gw))
                                if bound_ok(&self.cache.line_at(w).meta, gw)
                                && scribble_pass(&self.cache.line_at(w).data, d, gw));
                        if pass {
                            // I → GI: write over the stale data, no GETX.
                            self.row(L1RowId::EnterGi, stats)?;
                            stats.serviced_by_gi += 1;
                            self.write_hit(w, offset, size, req.value, stats);
                            let meta = &mut self.cache.line_at_mut(w).meta;
                            meta.state = L1State::Gi;
                            meta.hidden_writes += 1;
                            {
                                out.push(L1Out::Reply { value: 0 });
                                Ok(())
                            }
                        } else {
                            self.row(L1RowId::StoreInvalid, stats)?;
                            stats.stores_on_invalid_tagged += 1;
                            stats.l1_store_misses += 1;
                            Self::charge_tag_probe(stats);
                            self.cache.line_at_mut(w).meta.state = L1State::ImAd;
                            {
                                self.start_txn(req, block, Payload::Getx, out);
                                Ok(())
                            }
                        }
                    }
                    t => Err(self.error(
                        L1RowId::StoreTransient,
                        stats,
                        format!("store while transient {t:?}"),
                    )),
                }
            }
        }
    }

    fn write_hit(
        &mut self,
        w: ProbedWay,
        offset: usize,
        size: usize,
        value: u64,
        stats: &mut Stats,
    ) {
        stats.l1_store_hits += 1;
        stats.energy_events.l1_writes += 1;
        self.cache.touch_at(w);
        self.cache
            .line_at_mut(w)
            .data
            .write_word(offset, size, value);
    }

    /// Buffers an evicted dirty/exclusive block until its PUT is acked.
    /// Capacity exhaustion and double eviction are typed protocol errors,
    /// not panics — the checker's mutation sweeps drive both.
    fn wb_insert(&mut self, victim: BlockAddr, data: BlockData) -> Result<(), ProtocolError> {
        self.wb_buffer
            .insert(victim, WbEntry { data })
            .map_err(|e| {
                ProtocolError::internal(
                    self.ctl(),
                    match e {
                        WbInsertError::Duplicate => {
                            format!("double eviction of {victim:?}: writeback already buffered")
                        }
                        WbInsertError::Full => format!(
                            "writeback buffer full ({WB_BUFFER_WAYS} entries) evicting {victim:?}"
                        ),
                    },
                )
            })
    }

    /// Evicts the already-removed victim `line` per its state, appending
    /// any protocol messages. The caller removes the line through its
    /// probe token so no extra tag lookup happens here.
    fn evict(
        &mut self,
        line: Line<L1Meta>,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        let victim = line.block;
        match line.meta.state {
            L1State::M => {
                self.row(L1RowId::EvictM, stats)?;
                stats.energy_events.l1_reads += 1;
                self.wb_insert(victim, line.data)?;
                out.push(L1Out::Send(
                    self.msg(victim, Payload::PutM { data: line.data }),
                ));
            }
            L1State::O => {
                // Owned is dirty: the eviction is a writeback, exactly
                // like M (the directory refills L2 from it).
                self.row(L1RowId::EvictO, stats)?;
                stats.energy_events.l1_reads += 1;
                self.wb_insert(victim, line.data)?;
                out.push(L1Out::Send(
                    self.msg(victim, Payload::PutM { data: line.data }),
                ));
            }
            L1State::E => {
                self.row(L1RowId::EvictE, stats)?;
                self.wb_insert(victim, line.data)?;
                out.push(L1Out::Send(self.msg(victim, Payload::PutE)));
            }
            L1State::F => {
                // Forward is clean and L2 is valid: a plain PUTS. A
                // FwdGets racing this eviction is bounced with FWD_NACK
                // (`fwd_gets_stale`) and served from L2.
                self.row(L1RowId::EvictF, stats)?;
                out.push(L1Out::Send(self.msg(victim, Payload::PutS)));
            }
            L1State::S => {
                self.row(L1RowId::EvictS, stats)?;
                out.push(L1Out::Send(self.msg(victim, Payload::PutS)));
            }
            L1State::Gs => {
                // Scribbled updates are forfeited (paper §3.5); tell the
                // directory we are no longer a sharer.
                self.row(L1RowId::EvictGs, stats)?;
                stats.approx_evictions += 1;
                out.push(L1Out::Send(self.msg(victim, Payload::PutS)));
            }
            L1State::Gi => {
                // Untracked: drop silently, updates forfeited.
                self.row(L1RowId::EvictGi, stats)?;
                stats.approx_evictions += 1;
            }
            L1State::I => self.row(L1RowId::EvictI, stats)?,
            t => {
                return Err(self.error(
                    L1RowId::EvictTransient,
                    stats,
                    format!("transient line {t:?} chosen as victim"),
                ))
            }
        }
        Ok(())
    }

    /// Handles a protocol message addressed to this L1.
    ///
    /// `Err` means the transition table has no row for `(state, payload)`
    /// — a protocol error the harness surfaces as a violation.
    pub fn handle_msg(&mut self, msg: Msg, stats: &mut Stats) -> Result<Vec<L1Out>, ProtocolError> {
        let mut out = Vec::new();
        self.handle_msg_into(msg, stats, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`L1Cache::handle_msg`]: appends outputs
    /// to `out` instead of returning a fresh `Vec`.
    pub fn handle_msg_into(
        &mut self,
        msg: Msg,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        let block = msg.block;
        let dir = msg.src;
        match msg.payload {
            Payload::Inv => {
                Self::charge_tag_probe(stats);
                let w = self.cache.probe_way(block);
                let row = match w.map(|t| self.cache.line_at(t).meta.state) {
                    Some(L1State::S) => L1RowId::InvSharer,
                    // MOESI: a GETX by one of our sharers invalidates the
                    // owner too — the upgrading sharer holds identical
                    // bytes, so the dirty data is not lost.
                    Some(L1State::O) => L1RowId::InvOwned,
                    Some(L1State::F) => L1RowId::InvFwd,
                    Some(L1State::Gs) => L1RowId::InvGs,
                    // UPGRADE lost the race: the directory will answer
                    // it with data; wait in IM_AD.
                    Some(L1State::SmA) => L1RowId::InvSmA,
                    // Our own GETS/GETX is queued behind the
                    // invalidating transaction; the INV targeted the
                    // copy we since dropped (or the tag is gone
                    // entirely). Ack and keep waiting.
                    Some(L1State::IsD | L1State::ImAd | L1State::I) | None => L1RowId::InvStale,
                    Some(t @ (L1State::E | L1State::M | L1State::Gi)) => {
                        return Err(self.error(
                            L1RowId::InvWriter,
                            stats,
                            format!("INV in state {t:?}"),
                        ))
                    }
                };
                self.row(row, stats)?;
                match row {
                    L1RowId::InvSharer | L1RowId::InvOwned | L1RowId::InvFwd => {
                        self.cache.line_at_mut(w.unwrap()).meta.state = L1State::I
                    }
                    L1RowId::InvGs => {
                        self.cache.line_at_mut(w.unwrap()).meta.state = L1State::I;
                        stats.gs_invalidations += 1;
                    }
                    L1RowId::InvSmA => {
                        self.cache.line_at_mut(w.unwrap()).meta.state = L1State::ImAd
                    }
                    _ => {}
                }
                out.push(L1Out::Send(Msg {
                    src: Endpoint::L1(self.core),
                    dst: dir,
                    block,
                    payload: Payload::InvAck,
                    tag: WireTag::default(),
                }));
                Ok(())
            }
            Payload::FwdGets => {
                let payload = match self.forward_data(block, true, stats)? {
                    FwdReply::Data { data, xfer } => Payload::DataToDir { data, xfer },
                    FwdReply::Nack => Payload::FwdNack,
                };
                out.push(L1Out::Send(Msg {
                    src: Endpoint::L1(self.core),
                    dst: dir,
                    block,
                    payload,
                    tag: WireTag::default(),
                }));
                Ok(())
            }
            Payload::FwdGetx => {
                let payload = match self.forward_data(block, false, stats)? {
                    FwdReply::Data { data, xfer } => {
                        debug_assert_eq!(xfer, OwnerXfer::Dropped);
                        Payload::DataToDir { data, xfer }
                    }
                    FwdReply::Nack => {
                        return Err(ProtocolError::internal(
                            self.ctl(),
                            format!("FWD_GETX for {block:?} answered with a NACK"),
                        ))
                    }
                };
                out.push(L1Out::Send(Msg {
                    src: Endpoint::L1(self.core),
                    dst: dir,
                    block,
                    payload,
                    tag: WireTag::default(),
                }));
                Ok(())
            }
            Payload::Data { data, grant } => {
                // Recovery: a grant that cannot belong to the outstanding
                // transaction (no pending miss, wrong block, stale or
                // duplicate sequence number) is an *expected* artifact of
                // retries and duplication — drop it instead of raising
                // the data_unexpected protocol error.
                if self.recovery.is_some() {
                    let matches_pending = self
                        .pending
                        .as_ref()
                        .is_some_and(|r| r.addr.block() == block)
                        && msg.tag.seq == self.cur_seq;
                    if !matches_pending {
                        self.row(L1RowId::StaleReplyDrop, stats)?;
                        stats.stale_replies += 1;
                        return Ok(());
                    }
                    if msg.tag.tainted {
                        let approx = matches!(
                            self.pending.as_ref().expect("matched above").kind,
                            AccessKind::Scribble { .. }
                        );
                        if approx {
                            // Graceful degradation: the requestor is an
                            // error-tolerant scribble, so the corrupted
                            // fill flows into the approximate dataflow
                            // and is charged to the application's error
                            // budget (visible in the NRMSE curves).
                            self.row(L1RowId::CorruptFillAbsorb, stats)?;
                            stats.corrupt_fills_absorbed += 1;
                        } else {
                            // Precise data: quarantine the tainted block
                            // (it never becomes architecturally visible)
                            // and refetch under the same sequence number.
                            stats.corrupt_fills_refetched += 1;
                            self.resend_pending(L1RowId::CorruptFillRefetch, stats, out)?;
                            return Ok(());
                        }
                    }
                }
                let req = match self.pending.take() {
                    Some(req) => req,
                    None => {
                        return Err(self.error(
                            L1RowId::DataUnexpected,
                            stats,
                            format!("DATA for {block:?} with no pending miss"),
                        ))
                    }
                };
                if req.addr.block() != block {
                    return Err(self.error(
                        L1RowId::DataUnexpected,
                        stats,
                        format!("DATA for {block:?} while missing on {:?}", req.addr.block()),
                    ));
                }
                let w = self.cache.probe_way(block);
                let row = match (w.map(|t| self.cache.line_at(t).meta.state), grant) {
                    (Some(L1State::IsD), Grant::Shared) => L1RowId::DataFillShared,
                    (Some(L1State::IsD), Grant::Exclusive) => L1RowId::DataFillExcl,
                    (Some(L1State::IsD), Grant::Forward)
                        if self.rows.contains(L1RowId::DataFillFwd) =>
                    {
                        L1RowId::DataFillFwd
                    }
                    (Some(L1State::ImAd | L1State::SmA), Grant::Modified) => L1RowId::DataFillM,
                    (t, g) => {
                        return Err(self.error(
                            L1RowId::DataUnexpected,
                            stats,
                            format!("DATA with grant {g:?} in state {t:?}"),
                        ))
                    }
                };
                self.row(row, stats)?;
                stats.energy_events.l1_writes += 1; // line fill
                let w = w.expect("miss line allocated");
                let line = self.cache.line_at_mut(w);
                line.meta.hidden_writes = 0;
                line.data = data;
                let value = match row {
                    L1RowId::DataFillShared => {
                        line.meta.state = L1State::S;
                        line.data.read_word(req.addr.offset(), req.size as usize)
                    }
                    L1RowId::DataFillExcl => {
                        line.meta.state = L1State::E;
                        line.data.read_word(req.addr.offset(), req.size as usize)
                    }
                    L1RowId::DataFillFwd => {
                        line.meta.state = L1State::F;
                        line.data.read_word(req.addr.offset(), req.size as usize)
                    }
                    _ => {
                        line.data
                            .write_word(req.addr.offset(), req.size as usize, req.value);
                        line.meta.state = L1State::M;
                        0
                    }
                };
                self.cache.touch_at(w);
                self.complete_txn();
                out.push(L1Out::Send(Msg {
                    src: Endpoint::L1(self.core),
                    dst: dir,
                    block,
                    payload: Payload::Unblock,
                    tag: WireTag::default(),
                }));
                out.push(L1Out::Reply { value });
                Ok(())
            }
            Payload::UpgAck => {
                // Recovery: same stale/duplicate suppression as DATA
                // (UPG_ACK carries no data, so there is no taint path).
                if self.recovery.is_some() {
                    let matches_pending = self
                        .pending
                        .as_ref()
                        .is_some_and(|r| r.addr.block() == block)
                        && msg.tag.seq == self.cur_seq;
                    if !matches_pending {
                        self.row(L1RowId::StaleReplyDrop, stats)?;
                        stats.stale_replies += 1;
                        return Ok(());
                    }
                }
                let req = match self.pending.take() {
                    Some(req) => req,
                    None => {
                        return Err(self.error(
                            L1RowId::UpgAckUnexpected,
                            stats,
                            format!("UPG_ACK for {block:?} with no pending"),
                        ))
                    }
                };
                if req.addr.block() != block {
                    return Err(self.error(
                        L1RowId::UpgAckUnexpected,
                        stats,
                        format!(
                            "UPG_ACK for {block:?} while missing on {:?}",
                            req.addr.block()
                        ),
                    ));
                }
                let w = self.cache.probe_way(block);
                match w.map(|t| self.cache.line_at(t).meta.state) {
                    Some(L1State::SmA) => {}
                    t => {
                        return Err(self.error(
                            L1RowId::UpgAckUnexpected,
                            stats,
                            format!("UPG_ACK in state {t:?} (outside SM_A)"),
                        ))
                    }
                }
                self.row(L1RowId::UpgAck, stats)?;
                stats.energy_events.l1_writes += 1;
                let w = w.expect("upgrading line present");
                let line = self.cache.line_at_mut(w);
                // Keep the (possibly scribbled) block contents and apply
                // the store: the locally modified data is published —
                // a coherent resync for the §3.5 error bound.
                line.data
                    .write_word(req.addr.offset(), req.size as usize, req.value);
                line.meta.state = L1State::M;
                line.meta.hidden_writes = 0;
                self.cache.touch_at(w);
                self.complete_txn();
                out.push(L1Out::Send(Msg {
                    src: Endpoint::L1(self.core),
                    dst: dir,
                    block,
                    payload: Payload::Unblock,
                    tag: WireTag::default(),
                }));
                out.push(L1Out::Reply { value: 0 });
                Ok(())
            }
            Payload::WbAck => match self.wb_buffer.remove(block) {
                Some(_) => {
                    self.row(L1RowId::WbAck, stats)?;
                    Ok(())
                }
                None => Err(self.error(
                    L1RowId::WbAckUnexpected,
                    stats,
                    format!("WB_ACK for {block:?} without buffer entry"),
                )),
            },
            // Recovery: the directory NACKed our request (conflict —
            // every way of its L2 set was pinned). Resend it under the
            // same sequence number. Without recovery (or without a
            // matching outstanding request) a dir→L1 FWD_NACK remains
            // the l1_unexpected_msg protocol error below.
            Payload::FwdNack
                if self.recovery.is_some()
                    && self
                        .pending
                        .as_ref()
                        .is_some_and(|r| r.addr.block() == block) =>
            {
                stats.nack_retries += 1;
                self.resend_pending(L1RowId::ReqNacked, stats, out)?;
                Ok(())
            }
            ref p => Err(self.error(
                L1RowId::L1UnexpectedMsg,
                stats,
                format!("unexpected message {}", p.name()),
            )),
        }
    }

    /// Supplies block data for a directory forward, from the writeback
    /// buffer or the live line. `is_gets` is true for FWD_GETS.
    ///
    /// The buffer is consulted *first*: a pending PUT means the directory
    /// has not yet observed our eviction, so any forward necessarily
    /// targets that old ownership epoch — even if we have meanwhile begun
    /// a brand-new request on the same block (the line can legitimately
    /// sit in IS_D/IM_AD here, queued at the directory behind our PUT).
    ///
    /// The per-family rows decide what the holder does with its copy:
    /// a MESI/MSI owner downgrades to `S`, a MOESI/MOSI `M` owner keeps
    /// dirty ownership in `O`, a MESIF `F` holder forwards clean, and a
    /// MESIF holder that already evicted its clean copy bounces the
    /// forward with `FwdNack` so the directory serves from L2.
    fn forward_data(
        &mut self,
        block: BlockAddr,
        is_gets: bool,
        stats: &mut Stats,
    ) -> Result<FwdReply, ProtocolError> {
        if let Some(entry) = self.wb_buffer.get(block) {
            // The eviction raced with the forward; answer from the buffer
            // and let the queued PUT be acked as stale.
            let data = entry.data;
            #[cfg(debug_assertions)]
            if let Some(line) = self.cache.probe_way(block).map(|t| self.cache.line_at(t)) {
                debug_assert!(
                    matches!(line.meta.state, L1State::IsD | L1State::ImAd),
                    "core {}: unexpected state {:?} alongside a writeback buffer entry",
                    self.core,
                    line.meta.state
                );
            }
            self.row(L1RowId::FwdWbRace, stats)?;
            return Ok(FwdReply::Data {
                data,
                xfer: OwnerXfer::Dropped,
            });
        }
        let w = self.cache.probe_way(block);
        let state = w.map(|t| self.cache.line_at(t).meta.state);
        let (row, next, xfer) = match (state, is_gets) {
            // MOESI/MOSI: a dirty owner answers a read by *retaining*
            // ownership in O; the directory elides the L2 fill. When the
            // row is not live (MESI/MSI/MESIF), M downgrades to S and the
            // directory refills L2.
            (Some(L1State::M), true) if self.rows.contains(L1RowId::FwdGetsMToO) => {
                (L1RowId::FwdGetsMToO, L1State::O, OwnerXfer::ToOwned)
            }
            (Some(L1State::E | L1State::M), true) => {
                (L1RowId::FwdGetsOwner, L1State::S, OwnerXfer::ToShared)
            }
            (Some(L1State::O), true) => (L1RowId::FwdGetsO, L1State::O, OwnerXfer::ToOwned),
            // MESIF: the forwarder hands the F designation to the
            // requestor and keeps a plain shared copy.
            (Some(L1State::F), true) => (L1RowId::FwdGetsF, L1State::S, OwnerXfer::ToShared),
            // An O/F holder that is upgrading (SM_A) still has valid
            // data: forward it clean and stay put (FWD_GETS), or yield
            // the line and retry the queued UPGRADE as a GETX (FWD_GETX).
            (Some(L1State::SmA), true) if self.rows.contains(L1RowId::FwdGetsUpgrading) => {
                (L1RowId::FwdGetsUpgrading, L1State::SmA, OwnerXfer::ToShared)
            }
            (Some(L1State::SmA), false) if self.rows.contains(L1RowId::FwdGetxUpgrading) => {
                (L1RowId::FwdGetxUpgrading, L1State::ImAd, OwnerXfer::Dropped)
            }
            (Some(L1State::E | L1State::M | L1State::O), false) => {
                (L1RowId::FwdGetxOwner, L1State::I, OwnerXfer::Dropped)
            }
            // MESIF: our clean F copy is gone (PUTS in flight, or already
            // invalidated) — bounce so the directory serves from L2.
            (Some(L1State::I | L1State::IsD | L1State::ImAd) | None, true)
                if self.rows.contains(L1RowId::FwdGetsStale) =>
            {
                self.row(L1RowId::FwdGetsStale, stats)?;
                return Ok(FwdReply::Nack);
            }
            (Some(t), _) => {
                return Err(self.error(
                    L1RowId::FwdBadState,
                    stats,
                    format!("forward in state {t:?}"),
                ))
            }
            (None, _) => {
                return Err(self.error(
                    L1RowId::FwdBadState,
                    stats,
                    format!("forward for unknown block {block:?}"),
                ))
            }
        };
        self.row(row, stats)?;
        stats.energy_events.l1_reads += 1;
        let line = self.cache.line_at_mut(w.unwrap());
        let data = line.data;
        line.meta.state = next;
        Ok(FwdReply::Data { data, xfer })
    }

    /// Context-switch / thread-migration forfeit (paper §3.5): the
    /// approximate blocks are not tracked by the directory, so their
    /// hidden updates cannot be switched or migrated — both `GS` and
    /// `GI` lines revert to `I`. `GS` lines additionally leave the
    /// sharer list (PUTS), exactly as a descheduled thread's cache
    /// working set would be treated.
    pub fn context_switch_forfeit(
        &mut self,
        stats: &mut Stats,
    ) -> Result<Vec<L1Out>, ProtocolError> {
        let mut out = Vec::new();
        self.context_switch_forfeit_into(stats, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`L1Cache::context_switch_forfeit`].
    pub fn context_switch_forfeit_into(
        &mut self,
        stats: &mut Stats,
        out: &mut Vec<L1Out>,
    ) -> Result<(), ProtocolError> {
        let approx: Vec<(BlockAddr, L1State)> = self
            .cache
            .iter()
            .filter(|l| matches!(l.meta.state, L1State::Gs | L1State::Gi))
            .map(|l| (l.block, l.meta.state))
            .collect();
        for (block, state) in approx {
            let row = if state == L1State::Gs {
                L1RowId::CtxForfeitGs
            } else {
                L1RowId::CtxForfeitGi
            };
            self.row(row, stats)?;
            let line = self.cache.get_mut(block).unwrap();
            line.meta.state = L1State::I;
            line.meta.hidden_writes = 0;
            stats.approx_evictions += 1;
            if state == L1State::Gs {
                out.push(L1Out::Send(self.msg(block, Payload::PutS)));
            }
        }
        Ok(())
    }

    /// The periodic GI timeout (paper §3.2): returns every `GI` block to
    /// `I`, forfeiting its hidden updates. Runs once per `gi_timeout`
    /// cycles per controller.
    pub fn gi_timeout_sweep(&mut self, stats: &mut Stats) -> Result<(), ProtocolError> {
        let gi_blocks: Vec<BlockAddr> = self
            .cache
            .iter()
            .filter(|l| l.meta.state == L1State::Gi)
            .map(|l| l.block)
            .collect();
        for block in gi_blocks {
            self.row(L1RowId::GiTimeout, stats)?;
            self.cache.get_mut(block).unwrap().meta.state = L1State::I;
            stats.gi_timeouts += 1;
        }
        Ok(())
    }

    /// End-of-run functional flush: yields `(block, data)` for every line
    /// this cache *owns* (E/M) so the machine can build the final coherent
    /// memory image. GS/GI contents are forfeited, exactly as the protocol
    /// would forfeit them on invalidation/timeout.
    pub fn drain_owned(&mut self) -> Vec<(BlockAddr, BlockData)> {
        let mut owned = Vec::new();
        for line in self.cache.iter() {
            match line.meta.state {
                // O is dirty-shared: this cache is still the distinguished
                // owner and must contribute its bytes (L2 may be stale
                // after an elided fill). F is clean — L2 already matches.
                L1State::E | L1State::M | L1State::O => owned.push((line.block, line.data)),
                L1State::IsD | L1State::ImAd | L1State::SmA => {
                    panic!("flush with outstanding transaction on {:?}", line.block)
                }
                _ => {}
            }
        }
        // Writeback buffer entries are also unflushed owned data.
        for (block, entry) in self.wb_buffer.drain() {
            owned.push((block, entry.data));
        }
        owned
    }

    /// Every resident block and its coherence state (for the protocol
    /// tester's invariant checks).
    pub fn resident_blocks(&self) -> Vec<(BlockAddr, L1State)> {
        self.cache.iter().map(|l| (l.block, l.meta.state)).collect()
    }

    /// True if the writeback buffer still holds entries (in-flight PUTs).
    pub fn has_pending_writebacks(&self) -> bool {
        !self.wb_buffer.is_empty()
    }

    /// Number of resident lines in each Ghostwriter state `(GS, GI)`;
    /// used by tests and the trace example.
    pub fn approx_occupancy(&self) -> (usize, usize) {
        let mut gs = 0;
        let mut gi = 0;
        for line in self.cache.iter() {
            match line.meta.state {
                L1State::Gs => gs += 1,
                L1State::Gi => gi += 1,
                _ => {}
            }
        }
        (gs, gi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Grant;

    fn gw_params() -> Option<GwParams> {
        Some(GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: true,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        })
    }

    fn l1(gw: Option<GwParams>) -> (L1Cache, Stats) {
        (
            L1Cache::new(0, 8, 2, 1, BaseProtocol::Mesi, gw, true),
            Stats::default(),
        )
    }

    fn load(addr: u64) -> CoreReq {
        CoreReq {
            addr: Addr(addr),
            size: 4,
            value: 0,
            kind: AccessKind::Load,
        }
    }

    fn store(addr: u64, value: u64) -> CoreReq {
        CoreReq {
            addr: Addr(addr),
            size: 4,
            value,
            kind: AccessKind::Store,
        }
    }

    fn scribble(addr: u64, value: u64, d: u8) -> CoreReq {
        CoreReq {
            addr: Addr(addr),
            size: 4,
            value,
            kind: AccessKind::Scribble { d },
        }
    }

    fn dir_msg(block: BlockAddr, payload: Payload) -> Msg {
        Msg {
            src: Endpoint::Dir(0),
            dst: Endpoint::L1(0),
            block,
            payload,
            tag: WireTag::default(),
        }
    }

    fn expect_send<'a>(outs: &'a [L1Out], name: &str) -> &'a Msg {
        outs.iter()
            .find_map(|o| match o {
                L1Out::Send(m) if m.payload.name() == name => Some(m),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no {name} in {outs:?}"))
    }

    fn expect_reply(outs: &[L1Out]) -> u64 {
        outs.iter()
            .find_map(|o| match o {
                L1Out::Reply { value } => Some(*value),
                _ => None,
            })
            .expect("no reply")
    }

    /// Brings block of `addr` to the given stable state via the protocol.
    fn bring_to(cache: &mut L1Cache, stats: &mut Stats, addr: u64, target: L1State) {
        let block = Addr(addr).block();
        match target {
            L1State::S => {
                let outs = cache.access(load(addr), stats).unwrap();
                expect_send(&outs, "GETS");
                cache
                    .handle_msg(
                        dir_msg(
                            block,
                            Payload::Data {
                                data: BlockData::zeroed(),
                                grant: Grant::Shared,
                            },
                        ),
                        stats,
                    )
                    .unwrap();
            }
            L1State::E => {
                let outs = cache.access(load(addr), stats).unwrap();
                expect_send(&outs, "GETS");
                cache
                    .handle_msg(
                        dir_msg(
                            block,
                            Payload::Data {
                                data: BlockData::zeroed(),
                                grant: Grant::Exclusive,
                            },
                        ),
                        stats,
                    )
                    .unwrap();
            }
            L1State::M => {
                let outs = cache.access(store(addr, 7), stats).unwrap();
                expect_send(&outs, "GETX");
                cache
                    .handle_msg(
                        dir_msg(
                            block,
                            Payload::Data {
                                data: BlockData::zeroed(),
                                grant: Grant::Modified,
                            },
                        ),
                        stats,
                    )
                    .unwrap();
            }
            L1State::I => {
                bring_to(cache, stats, addr, L1State::S);
                cache
                    .handle_msg(dir_msg(block, Payload::Inv), stats)
                    .unwrap();
            }
            other => panic!("bring_to({other:?}) unsupported"),
        }
        assert_eq!(cache.state_of(block), Some(target));
    }

    /// Tentpole invariant of the way-threading refactor: each demand
    /// access performs exactly one physical tag lookup — on hit, true
    /// miss, and victim-eviction paths alike — because the probe token
    /// is threaded through every helper instead of re-probing.
    #[cfg(debug_assertions)]
    #[test]
    fn one_physical_tag_lookup_per_access() {
        let (mut c, mut s) = l1(gw_params());
        // Hit paths.
        bring_to(&mut c, &mut s, 0x1000, L1State::M);
        let base = c.phys_lookups();
        c.access(load(0x1000), &mut s).unwrap();
        assert_eq!(c.phys_lookups() - base, 1, "load hit");
        let base = c.phys_lookups();
        c.access(store(0x1000, 5), &mut s).unwrap();
        assert_eq!(c.phys_lookups() - base, 1, "store hit");
        // True miss into a free way.
        let base = c.phys_lookups();
        let outs = c.access(load(0x2040), &mut s).unwrap();
        expect_send(&outs, "GETS");
        assert_eq!(c.phys_lookups() - base, 1, "miss via free way");
        c.handle_msg(
            dir_msg(
                Addr(0x2040).block(),
                Payload::Data {
                    data: BlockData::zeroed(),
                    grant: Grant::Shared,
                },
            ),
            &mut s,
        )
        .unwrap();
        // Victim path: set 0 already holds 0x1000 (M); fill the second
        // way, then a third conflicting block must evict a dirty victim
        // (PUTM) — still one lookup for the whole access.
        bring_to(&mut c, &mut s, 0x1200, L1State::M);
        let base = c.phys_lookups();
        let outs = c.access(store(0x1400, 9), &mut s).unwrap();
        expect_send(&outs, "PUTM");
        expect_send(&outs, "GETX");
        assert_eq!(c.phys_lookups() - base, 1, "miss via victim eviction");
    }

    #[test]
    fn scribble_on_shared_within_d_enters_gs() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        // Block data is zero; writing 15 is within d=4.
        let outs = c.access(scribble(0x1000, 15, 4), &mut s).unwrap();
        assert_eq!(expect_reply(&outs), 0);
        assert_eq!(outs.len(), 1, "no coherence messages");
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::Gs));
        assert_eq!(c.peek_word(Addr(0x1000), 4), Some(15));
        assert_eq!(s.serviced_by_gs, 1);
        assert_eq!(s.upgrades_from_s, 0);
    }

    #[test]
    fn scribble_on_shared_beyond_d_falls_back_to_upgrade() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        // 0 -> 16 differs at bit 4: distance 5 > d=4.
        let outs = c.access(scribble(0x1000, 16, 4), &mut s).unwrap();
        expect_send(&outs, "UPGRADE");
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::SmA));
        assert_eq!(s.serviced_by_gs, 0);
        assert_eq!(s.upgrades_from_s, 1);
        // UPG_ACK completes the store and publishes M.
        let outs = c
            .handle_msg(dir_msg(Addr(0x1000).block(), Payload::UpgAck), &mut s)
            .unwrap();
        expect_send(&outs, "UNBLOCK");
        assert_eq!(expect_reply(&outs), 0);
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::M));
        assert_eq!(c.peek_word(Addr(0x1000), 4), Some(16));
    }

    #[test]
    fn conventional_store_on_shared_always_upgrades() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        let outs = c.access(store(0x1000, 1), &mut s).unwrap();
        expect_send(&outs, "UPGRADE");
        assert_eq!(s.upgrades_from_s, 1);
    }

    #[test]
    fn scribble_on_invalid_within_d_enters_gi() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x2000, L1State::I);
        let outs = c.access(scribble(0x2000, 3, 4), &mut s).unwrap();
        assert_eq!(outs.len(), 1, "no GETX: {outs:?}");
        assert_eq!(expect_reply(&outs), 0);
        assert_eq!(c.state_of(Addr(0x2000).block()), Some(L1State::Gi));
        assert_eq!(s.serviced_by_gi, 1);
    }

    #[test]
    fn scribble_on_invalid_beyond_d_sends_getx() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x2000, L1State::I);
        let outs = c.access(scribble(0x2000, 0xFFFF, 4), &mut s).unwrap();
        expect_send(&outs, "GETX");
        assert_eq!(s.serviced_by_gi, 0);
        assert_eq!(s.stores_on_invalid_tagged, 1);
    }

    #[test]
    fn gi_hits_loads_and_stores_until_timeout() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x2000, L1State::I);
        c.access(scribble(0x2000, 3, 4), &mut s).unwrap();
        // Fig. 3: Load, Store and Scribble all self-loop on GI.
        let v = expect_reply(&c.access(load(0x2000), &mut s).unwrap());
        assert_eq!(v, 3);
        c.access(store(0x2000, 100), &mut s).unwrap();
        assert_eq!(c.state_of(Addr(0x2000).block()), Some(L1State::Gi));
        assert_eq!(c.peek_word(Addr(0x2000), 4), Some(100));
        assert!(s.gi_load_hits >= 1 && s.gi_store_hits >= 1);
        // Timeout returns the block to I; the hidden update survives as
        // stale data but permissions are gone.
        c.gi_timeout_sweep(&mut s).unwrap();
        assert_eq!(c.state_of(Addr(0x2000).block()), Some(L1State::I));
        assert_eq!(s.gi_timeouts, 1);
        assert_eq!(c.peek_word(Addr(0x2000), 4), Some(100));
    }

    #[test]
    fn gs_invalidation_forfeits_updates() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        c.access(scribble(0x1000, 15, 4), &mut s).unwrap();
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::Gs));
        let outs = c
            .handle_msg(dir_msg(Addr(0x1000).block(), Payload::Inv), &mut s)
            .unwrap();
        expect_send(&outs, "INV_ACK");
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::I));
        assert_eq!(s.gs_invalidations, 1);
    }

    #[test]
    fn gs_conventional_store_publishes_scribbled_data() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        c.access(scribble(0x1000, 15, 4), &mut s).unwrap(); // hidden write at offset 0
        let outs = c.access(store(0x1004, 0xAB), &mut s).unwrap(); // different word
        expect_send(&outs, "UPGRADE");
        assert_eq!(s.upgrades_from_gs, 1);
        let outs = c
            .handle_msg(dir_msg(Addr(0x1000).block(), Payload::UpgAck), &mut s)
            .unwrap();
        expect_reply(&outs);
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::M));
        // Both the scribbled word and the new store are in the M block.
        assert_eq!(c.peek_word(Addr(0x1000), 4), Some(15));
        assert_eq!(c.peek_word(Addr(0x1004), 4), Some(0xAB));
    }

    #[test]
    fn inv_during_upgrade_demotes_to_imad_and_data_overwrites() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        let outs = c.access(store(0x1000, 5), &mut s).unwrap();
        expect_send(&outs, "UPGRADE");
        // Another core's GETX won the race: INV arrives mid-upgrade.
        let outs = c
            .handle_msg(dir_msg(Addr(0x1000).block(), Payload::Inv), &mut s)
            .unwrap();
        expect_send(&outs, "INV_ACK");
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::ImAd));
        // Directory answers the (converted) upgrade with fresh data.
        let mut fresh = BlockData::zeroed();
        fresh.write_word(4, 4, 0x77);
        let outs = c
            .handle_msg(
                dir_msg(
                    Addr(0x1000).block(),
                    Payload::Data {
                        data: fresh,
                        grant: Grant::Modified,
                    },
                ),
                &mut s,
            )
            .unwrap();
        expect_send(&outs, "UNBLOCK");
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::M));
        assert_eq!(c.peek_word(Addr(0x1000), 4), Some(5)); // store applied
        assert_eq!(c.peek_word(Addr(0x1004), 4), Some(0x77)); // fresh data
    }

    #[test]
    fn fwd_gets_downgrades_owner_and_supplies_data() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x3000, L1State::M);
        let outs = c
            .handle_msg(dir_msg(Addr(0x3000).block(), Payload::FwdGets), &mut s)
            .unwrap();
        let m = expect_send(&outs, "DATA_TO_DIR");
        match m.payload {
            Payload::DataToDir { xfer, ref data } => {
                assert_eq!(xfer, OwnerXfer::ToShared);
                assert_eq!(data.read_word(0, 4), 7); // store from bring_to
            }
            ref p => panic!("expected DATA_TO_DIR, got {}", p.name()),
        }
        assert_eq!(c.state_of(Addr(0x3000).block()), Some(L1State::S));
    }

    #[test]
    fn fwd_getx_invalidates_owner_but_keeps_stale_tag() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x3000, L1State::M);
        let outs = c
            .handle_msg(dir_msg(Addr(0x3000).block(), Payload::FwdGetx), &mut s)
            .unwrap();
        expect_send(&outs, "DATA_TO_DIR");
        // Tag + stale data stay resident: this is the GI opportunity.
        assert_eq!(c.state_of(Addr(0x3000).block()), Some(L1State::I));
        assert_eq!(c.peek_word(Addr(0x3000), 4), Some(7));
    }

    #[test]
    fn eviction_of_modified_block_uses_writeback_buffer() {
        let (mut c, mut s) = l1(gw_params());
        // Fill both ways of a set (blocks 0x0 and 8*64 = same set in
        // 8-set cache): set = block % 8.
        bring_to(&mut c, &mut s, 0, L1State::M);
        bring_to(&mut c, &mut s, 8 * 64, L1State::M);
        // Third block in the same set evicts the LRU (block 0).
        let outs = c.access(load(16 * 64), &mut s).unwrap();
        let putm = expect_send(&outs, "PUTM");
        assert_eq!(putm.block, Addr(0).block());
        expect_send(&outs, "GETS");
        // A forward racing the writeback is served from the buffer.
        let outs = c
            .handle_msg(dir_msg(Addr(0).block(), Payload::FwdGets), &mut s)
            .unwrap();
        let m = expect_send(&outs, "DATA_TO_DIR");
        assert!(matches!(
            m.payload,
            Payload::DataToDir {
                xfer: OwnerXfer::Dropped,
                ..
            }
        ));
        // WB_ACK clears the buffer.
        c.handle_msg(dir_msg(Addr(0).block(), Payload::WbAck), &mut s)
            .unwrap();
        assert!(s.coverage.l1_hits(L1RowId::FwdWbRace) > 0);
    }

    #[test]
    fn eviction_of_gs_forfeits_and_sends_puts() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0, L1State::S);
        c.access(scribble(0, 3, 4), &mut s).unwrap();
        assert_eq!(c.state_of(Addr(0).block()), Some(L1State::Gs));
        bring_to(&mut c, &mut s, 8 * 64, L1State::M);
        let outs = c.access(load(16 * 64), &mut s).unwrap();
        let puts = expect_send(&outs, "PUTS");
        assert_eq!(puts.block, Addr(0).block());
        assert_eq!(s.approx_evictions, 1);
        assert!(c.state_of(Addr(0).block()).is_none());
    }

    #[test]
    fn eviction_of_gi_is_silent() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0, L1State::I);
        c.access(scribble(0, 3, 4), &mut s).unwrap();
        assert_eq!(c.state_of(Addr(0).block()), Some(L1State::Gi));
        bring_to(&mut c, &mut s, 8 * 64, L1State::M);
        let outs = c.access(load(16 * 64), &mut s).unwrap();
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, L1Out::Send(m) if m.block == Addr(0).block())),
            "GI eviction must not notify the directory: {outs:?}"
        );
        assert_eq!(s.approx_evictions, 1);
        assert!(s.coverage.l1_hits(L1RowId::EvictGi) > 0);
    }

    #[test]
    fn context_switch_forfeits_gs_and_gi_lines() {
        let (mut c, mut s) = l1(gw_params());
        // Distinct sets so nothing evicts before the forfeit.
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        c.access(scribble(0x1000, 3, 4), &mut s).unwrap();
        bring_to(&mut c, &mut s, 0x1040, L1State::I);
        c.access(scribble(0x1040, 3, 4), &mut s).unwrap();
        bring_to(&mut c, &mut s, 0x1080, L1State::M);
        let outs = c.context_switch_forfeit(&mut s).unwrap();
        // The GS line notifies the directory; the GI line drops silently;
        // precise lines are untouched.
        let puts = expect_send(&outs, "PUTS");
        assert_eq!(puts.block, Addr(0x1000).block());
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::I));
        assert_eq!(c.state_of(Addr(0x1040).block()), Some(L1State::I));
        assert_eq!(c.state_of(Addr(0x1080).block()), Some(L1State::M));
        assert!(s.coverage.l1_hits(L1RowId::CtxForfeitGs) > 0);
        assert!(s.coverage.l1_hits(L1RowId::CtxForfeitGi) > 0);
    }

    #[test]
    fn scribble_under_mesi_params_never_approximates() {
        let (mut c, mut s) = l1(None);
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        let outs = c.access(scribble(0x1000, 3, 4), &mut s).unwrap();
        expect_send(&outs, "UPGRADE");
        assert_eq!(s.serviced_by_gs, 0);
    }

    #[test]
    fn gs_disabled_falls_back_even_within_d() {
        let (mut c, mut s) = l1(Some(GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: false,
            enable_gi: true,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        }));
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        let outs = c.access(scribble(0x1000, 3, 4), &mut s).unwrap();
        expect_send(&outs, "UPGRADE");
        assert_eq!(s.serviced_by_gs, 0);
    }

    #[test]
    fn gi_disabled_falls_back_even_within_d() {
        let (mut c, mut s) = l1(Some(GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: false,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        }));
        bring_to(&mut c, &mut s, 0x2000, L1State::I);
        let outs = c.access(scribble(0x2000, 3, 4), &mut s).unwrap();
        expect_send(&outs, "GETX");
        assert_eq!(s.serviced_by_gi, 0);
    }

    #[test]
    fn silent_store_is_zero_distance() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::S);
        // d = 0 admits only identical values (silent stores).
        let outs = c.access(scribble(0x1000, 0, 0), &mut s).unwrap();
        assert_eq!(expect_reply(&outs), 0);
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::Gs));
        assert_eq!(s.serviced_by_gs, 1);
    }

    #[test]
    fn store_on_exclusive_silently_upgrades() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x4000, L1State::E);
        let outs = c.access(store(0x4000, 9), &mut s).unwrap();
        assert_eq!(outs.len(), 1);
        expect_reply(&outs);
        assert_eq!(c.state_of(Addr(0x4000).block()), Some(L1State::M));
        assert_eq!(s.l1_store_hits, 1);
    }

    #[test]
    fn load_on_invalid_tag_refetches() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x1000, L1State::I);
        let outs = c.access(load(0x1000), &mut s).unwrap();
        expect_send(&outs, "GETS");
        assert_eq!(s.l1_load_misses, 2); // cold miss in bring_to + this one
    }

    #[test]
    fn similarity_histogram_records_overwrites() {
        let (mut c, mut s) = l1(gw_params());
        bring_to(&mut c, &mut s, 0x5000, L1State::M);
        // bring_to's store wrote 7 at offset 0.
        c.access(store(0x5000, 7), &mut s).unwrap(); // identical: d=0
        c.access(store(0x5000, 6), &mut s).unwrap(); // 7 -> 6: d=1
        assert_eq!(s.similarity.count_at(0), 1);
        assert_eq!(s.similarity.count_at(1), 1);
    }
}

#[cfg(test)]
mod error_bound_tests {
    use super::*;
    use crate::msg::Grant;

    fn bounded_l1(bound: u32) -> (L1Cache, Stats) {
        (
            L1Cache::new(
                0,
                8,
                2,
                1,
                BaseProtocol::Mesi,
                Some(GwParams {
                    scribe: ScribePolicy::Bitwise,
                    enable_gs: true,
                    enable_gi: true,
                    gi_stores: GiStorePolicy::Fallback,
                    max_hidden_writes: Some(bound),
                }),
                false,
            ),
            Stats::default(),
        )
    }

    fn scrib(addr: u64, value: u64) -> CoreReq {
        CoreReq {
            addr: Addr(addr),
            size: 4,
            value,
            kind: AccessKind::Scribble { d: 4 },
        }
    }

    fn to_shared(c: &mut L1Cache, s: &mut Stats, addr: u64) {
        let outs = c
            .access(
                CoreReq {
                    addr: Addr(addr),
                    size: 4,
                    value: 0,
                    kind: AccessKind::Load,
                },
                s,
            )
            .unwrap();
        assert!(matches!(outs[0], L1Out::Send(_)));
        c.handle_msg(
            Msg {
                src: Endpoint::Dir(0),
                dst: Endpoint::L1(0),
                block: Addr(addr).block(),
                payload: Payload::Data {
                    data: BlockData::zeroed(),
                    grant: Grant::Shared,
                },
                tag: WireTag::default(),
            },
            s,
        )
        .unwrap();
    }

    #[test]
    fn bound_forces_publication_after_n_hidden_writes() {
        let (mut c, mut s) = bounded_l1(2);
        to_shared(&mut c, &mut s, 0x1000);
        // Two hidden writes fit the budget...
        for v in [1u64, 2] {
            let outs = c.access(scrib(0x1000, v), &mut s).unwrap();
            assert!(
                matches!(outs[0], L1Out::Reply { .. }),
                "write {v} should be hidden"
            );
        }
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::Gs));
        // ...the third is forced down the conventional path.
        let outs = c.access(scrib(0x1000, 3), &mut s).unwrap();
        assert!(
            matches!(&outs[0], L1Out::Send(m) if m.payload.name() == "UPGRADE"),
            "bound must force an UPGRADE: {outs:?}"
        );
        assert_eq!(s.serviced_by_gs, 1);
        assert_eq!(s.gs_hits, 1);
    }

    #[test]
    fn budget_resets_after_coherent_resync() {
        let (mut c, mut s) = bounded_l1(1);
        to_shared(&mut c, &mut s, 0x1000);
        // First scribble hidden, second forced to publish.
        c.access(scrib(0x1000, 1), &mut s).unwrap();
        let outs = c.access(scrib(0x1000, 2), &mut s).unwrap();
        assert!(matches!(&outs[0], L1Out::Send(m) if m.payload.name() == "UPGRADE"));
        // Publication completes: budget is fresh again.
        c.handle_msg(
            Msg {
                src: Endpoint::Dir(0),
                dst: Endpoint::L1(0),
                block: Addr(0x1000).block(),
                payload: Payload::UpgAck,
                tag: WireTag::default(),
            },
            &mut s,
        )
        .unwrap();
        assert_eq!(c.state_of(Addr(0x1000).block()), Some(L1State::M));
        // Back to Shared (remote reader), scribble is hidden once more.
        c.handle_msg(
            Msg {
                src: Endpoint::Dir(0),
                dst: Endpoint::L1(0),
                block: Addr(0x1000).block(),
                payload: Payload::FwdGets,
                tag: WireTag::default(),
            },
            &mut s,
        )
        .unwrap();
        let outs = c.access(scrib(0x1000, 3), &mut s).unwrap();
        assert!(
            matches!(outs[0], L1Out::Reply { .. }),
            "budget should have reset: {outs:?}"
        );
        assert_eq!(s.serviced_by_gs, 2);
    }

    #[test]
    fn unbounded_config_never_forces() {
        let (mut c, mut s) = (
            L1Cache::new(
                0,
                8,
                2,
                1,
                BaseProtocol::Mesi,
                Some(GwParams {
                    scribe: ScribePolicy::Bitwise,
                    enable_gs: true,
                    enable_gi: true,
                    gi_stores: GiStorePolicy::Fallback,
                    max_hidden_writes: None,
                }),
                false,
            ),
            Stats::default(),
        );
        to_shared(&mut c, &mut s, 0x2000);
        for v in 0..50u64 {
            let outs = c.access(scrib(0x2000, v % 8), &mut s).unwrap();
            assert!(matches!(outs[0], L1Out::Reply { .. }));
        }
        assert_eq!(s.serviced_by_gs + s.gs_hits, 50);
    }
}

#[cfg(test)]
mod more_l1_tests {
    use super::*;
    use crate::msg::Grant;

    fn l1_mesi() -> (L1Cache, Stats) {
        (
            L1Cache::new(0, 8, 2, 1, BaseProtocol::Mesi, None, true),
            Stats::default(),
        )
    }

    fn fill_shared(c: &mut L1Cache, s: &mut Stats, addr: u64, word: u64) {
        c.access(
            CoreReq {
                addr: Addr(addr),
                size: 4,
                value: 0,
                kind: AccessKind::Load,
            },
            s,
        )
        .unwrap();
        let mut data = BlockData::zeroed();
        data.write_word(Addr(addr).offset(), 4, word);
        c.handle_msg(
            Msg {
                src: Endpoint::Dir(0),
                dst: Endpoint::L1(0),
                block: Addr(addr).block(),
                payload: Payload::Data {
                    data,
                    grant: Grant::Shared,
                },
                tag: WireTag::default(),
            },
            s,
        )
        .unwrap();
    }

    #[test]
    fn load_returns_filled_word() {
        let (mut c, mut s) = l1_mesi();
        fill_shared(&mut c, &mut s, 0x100c, 0xABCD);
        let outs = c
            .access(
                CoreReq {
                    addr: Addr(0x100c),
                    size: 4,
                    value: 0,
                    kind: AccessKind::Load,
                },
                &mut s,
            )
            .unwrap();
        match &outs[0] {
            L1Out::Reply { value } => assert_eq!(*value, 0xABCD),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.l1_load_hits, 1);
        assert_eq!(s.l1_load_misses, 1); // the fill
    }

    #[test]
    fn eviction_of_shared_line_sends_puts_without_buffering() {
        let (mut c, mut s) = l1_mesi();
        fill_shared(&mut c, &mut s, 0, 1);
        fill_shared(&mut c, &mut s, 8 * 64, 2);
        // Third block in set 0 evicts the LRU shared line.
        let outs = c
            .access(
                CoreReq {
                    addr: Addr(16 * 64),
                    size: 4,
                    value: 0,
                    kind: AccessKind::Load,
                },
                &mut s,
            )
            .unwrap();
        assert!(outs
            .iter()
            .any(|o| matches!(o, L1Out::Send(m) if m.payload.name() == "PUTS")));
        assert!(!c.has_pending_writebacks(), "PUTS needs no buffer");
    }

    #[test]
    fn similarity_collection_can_be_disabled() {
        let mut c = L1Cache::new(0, 8, 2, 1, BaseProtocol::Mesi, None, false);
        let mut s = Stats::default();
        fill_shared(&mut c, &mut s, 0x2000, 5);
        // A store-like access on a present tag would normally record.
        c.access(
            CoreReq {
                addr: Addr(0x2000),
                size: 4,
                value: 5,
                kind: AccessKind::Store,
            },
            &mut s,
        )
        .unwrap();
        assert_eq!(s.similarity.total(), 0);
    }

    #[test]
    #[should_panic(expected = "second outstanding access")]
    fn double_issue_panics() {
        let (mut c, mut s) = l1_mesi();
        let load = CoreReq {
            addr: Addr(0x3000),
            size: 4,
            value: 0,
            kind: AccessKind::Load,
        };
        c.access(load, &mut s).unwrap();
        c.access(load, &mut s).unwrap();
    }

    #[test]
    #[should_panic(expected = "crosses a block boundary")]
    fn straddling_access_rejected() {
        let (mut c, mut s) = l1_mesi();
        c.access(
            CoreReq {
                addr: Addr(0x103c + 2),
                size: 4,
                value: 0,
                kind: AccessKind::Load,
            },
            &mut s,
        )
        .unwrap();
    }

    #[test]
    fn resident_blocks_reports_states() {
        let (mut c, mut s) = l1_mesi();
        fill_shared(&mut c, &mut s, 0x100, 0);
        let blocks = c.resident_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], (Addr(0x100).block(), L1State::S));
    }

    #[test]
    fn mesif_forward_to_evicted_f_holder_bounces_nack() {
        // The `fwd_gets_stale` race: the directory forwarded a GETS to
        // the tracked F holder, but the clean copy was already evicted
        // (a PUTS is in flight). The L1 must bounce with FWD_NACK so
        // the directory serves the requestor from L2.
        let mut c = L1Cache::new(0, 8, 2, 1, BaseProtocol::Mesif, None, true);
        let mut s = Stats::default();
        let outs = c
            .handle_msg(
                Msg {
                    src: Endpoint::Dir(0),
                    dst: Endpoint::L1(0),
                    block: Addr(0x100).block(),
                    payload: Payload::FwdGets,
                    tag: WireTag::default(),
                },
                &mut s,
            )
            .unwrap();
        assert!(
            outs.iter().any(|o| matches!(
                o,
                L1Out::Send(m) if m.payload.name() == "FWD_NACK"
            )),
            "no FWD_NACK in {outs:?}"
        );
        assert_eq!(s.coverage.l1[L1RowId::FwdGetsStale as usize], 1);
    }

    #[test]
    fn wb_buffer_exhaustion_is_a_typed_error_not_a_panic() {
        // 1 set × 1 way: every block maps to the same line, so each new
        // Modified block evicts the previous one into the writeback
        // buffer. The directory never acks, so the buffer only grows.
        let mut c = L1Cache::new(0, 1, 1, 1, BaseProtocol::Mesi, None, true);
        let mut s = Stats::default();
        let store_req = |addr: u64| CoreReq {
            addr: Addr(addr),
            size: 4,
            value: 7,
            kind: AccessKind::Store,
        };
        let fill_modified = |c: &mut L1Cache, s: &mut Stats, addr: u64| {
            c.access(store_req(addr), s)?;
            c.handle_msg(
                Msg {
                    src: Endpoint::Dir(0),
                    dst: Endpoint::L1(0),
                    block: Addr(addr).block(),
                    payload: Payload::Data {
                        data: BlockData::zeroed(),
                        grant: Grant::Modified,
                    },
                    tag: WireTag::default(),
                },
                s,
            )
            .map(|_| ())
        };
        for i in 0..=WB_BUFFER_WAYS as u64 {
            fill_modified(&mut c, &mut s, 64 * i).unwrap_or_else(|e| panic!("fill {i}: {e}"));
        }
        // The buffer now holds WB_BUFFER_WAYS un-acked writebacks; one
        // more eviction must surface a typed error, not a panic.
        let err = c
            .access(store_req(64 * (WB_BUFFER_WAYS as u64 + 1)), &mut s)
            .expect_err("a full writeback buffer must be a ProtocolError");
        let text = err.to_string();
        assert!(
            text.contains("writeback buffer full"),
            "unexpected error text: {text}"
        );
    }
}
