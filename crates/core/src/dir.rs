//! The shared-L2 bank with its slice of directory state.
//!
//! Organisation follows gem5's MESI_Two_Level (which the paper builds on):
//! the L2 is inclusive and physically distributed, one bank per tile, and
//! each bank holds the directory entry (sharer list / owner) for the blocks
//! it homes. Requests for a block are serialised: while a transaction is in
//! flight the block is *busy* and later requests queue; the requestor's
//! final `UNBLOCK` releases the block. Invalidation acknowledgements are
//! collected at the directory, and forwarded data is routed through it —
//! a latency-neutral simplification (DESIGN.md §2.3) that preserves message
//! counts per class.
//!
//! Inclusion is enforced with recalls: when an L2 victim still has L1
//! copies, the bank invalidates the sharers (or pulls the owner's data)
//! before evicting.

use ghostwriter_mem::{BlockAddr, BlockData, LookupResult, ProbedWay, SetAssocCache, WayLookup};
use std::collections::VecDeque;

use crate::config::BaseProtocol;
use crate::fault::RecoveryParams;
use crate::msg::{Endpoint, Grant, Msg, OwnerXfer, Payload, WireTag};
use crate::proto::{Controller, DirRowId, DirRowSet, Homing, ProtocolError};
use crate::stats::Stats;

/// Directory view of one block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DirState {
    /// No L1 holds the block.
    Np,
    /// Read-only copies at the set cores (bitmask).
    Shared(u64),
    /// One core holds the block in E or M.
    Owned(usize),
    /// MOESI/MOSI: `owner` holds the block dirty in O, `sharers` hold
    /// clean read-only copies of the same bytes. The L2 copy may be
    /// stale (the fill was elided) — the owner is the data source.
    OwnedShared { owner: usize, sharers: u64 },
    /// MESIF: `fwd` holds the designated clean forwarder copy (F),
    /// `sharers` hold plain S copies. The L2 copy is valid.
    Forward { fwd: usize, sharers: u64 },
}

#[derive(Clone, Copy, Debug, Hash)]
struct L2Meta {
    dir: DirState,
    /// L2 copy differs from DRAM.
    dirty: bool,
}

/// A queued L1 request.
#[derive(Clone, Debug, Hash)]
struct Request {
    requestor: usize,
    kind: ReqKind,
    /// Requestor-assigned sequence number (0 = untagged / recovery off).
    seq: u32,
}

#[derive(Clone, Debug, Hash)]
enum ReqKind {
    Gets,
    Getx,
    Upgrade,
    PutS,
    PutE,
    PutM(BlockData),
}

/// Phase of an in-flight transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
enum Phase {
    /// Invalidating the sharers of the L2 victim (inclusion recall).
    RecallInv,
    /// Pulling the L2 victim's data from its owner.
    RecallData,
    /// Waiting for the DRAM fill of the requested block.
    MemFetch,
    /// Waiting for invalidation acks on the requested block.
    InvAcks,
    /// Waiting for the owner's data on the requested block.
    OwnerData,
    /// MESIF: waiting for the F holder's clean forward (or its
    /// `FwdNack` if the clean copy was already evicted).
    FwdData,
    /// Waiting for the requestor's UNBLOCK.
    Unblock,
}

#[derive(Clone, Debug, Hash)]
struct Txn {
    requestor: usize,
    kind: TxnKind,
    phase: Phase,
    acks_pending: u32,
    /// L2 victim being recalled before this transaction's fill.
    recall_victim: Option<BlockAddr>,
    /// The request's sequence number (0 = untagged / recovery off).
    seq: u32,
    /// Recovery: copy of the grant sent when the transaction reached
    /// `Unblock`, retained until the requestor's UNBLOCK lands so a
    /// duplicate request (the grant was lost) can be answered with a
    /// resend. Always `None` with recovery off.
    grant: Option<Payload>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
enum TxnKind {
    Gets,
    Getx,
    Upgrade,
}

/// Dense per-set transaction tables: the MSHR replacement for the former
/// per-block `HashMap`s (`busy`, `recall_of`, `queues`).
///
/// Every in-flight transaction pins exactly one line of its block's L2
/// set — resident for `act_on_line` transactions, reserved (placeholder
/// line) for fills, still-resident victim for recalls — so a set can
/// never legally host more than `ways` transactions; that associativity
/// is the fixed MSHR capacity, and exceeding it is a typed
/// [`ProtocolError`], not a panic. The former `recall_of` map
/// (victim → main transaction block) is derived by scanning the set for
/// a transaction whose `recall_victim` matches: an L2 victim always
/// belongs to the same set as the transaction's main block.
#[derive(Clone, Debug)]
struct Mshr {
    /// Per-set transaction capacity (the L2 associativity).
    cap: usize,
    /// `sets - 1`; same power-of-two indexing as the cache array.
    mask: usize,
    sets: Vec<MshrSet>,
}

#[derive(Clone, Debug, Default)]
struct MshrSet {
    /// In-flight transactions homed to this set, unordered (all lookups
    /// key on the block; the checker hash sorts).
    txns: Vec<(BlockAddr, Txn)>,
    /// Requests queued behind blocked (busy or being-recalled) blocks of
    /// this set. Bounded by the blocked blocks: at most `2 × ways`
    /// distinct keys (transaction mains plus recall victims).
    queues: Vec<(BlockAddr, VecDeque<Request>)>,
}

impl Mshr {
    fn new(sets: usize, ways: usize) -> Self {
        debug_assert!(sets.is_power_of_two());
        Self {
            cap: ways,
            mask: sets - 1,
            sets: (0..sets).map(|_| MshrSet::default()).collect(),
        }
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() as usize) & self.mask
    }

    /// Inserts a transaction; `Err` reports the full set's index (MSHR
    /// capacity exhausted — a protocol invariant breach, since every
    /// transaction must pin a distinct line of the set).
    fn insert_txn(&mut self, block: BlockAddr, txn: Txn) -> Result<(), usize> {
        let set = self.set_of(block);
        let table = &mut self.sets[set];
        if table.txns.len() >= self.cap {
            return Err(set);
        }
        debug_assert!(table.txns.iter().all(|(b, _)| *b != block));
        table.txns.push((block, txn));
        Ok(())
    }

    fn take_txn(&mut self, block: BlockAddr) -> Option<Txn> {
        let set = self.set_of(block);
        let txns = &mut self.sets[set].txns;
        let i = txns.iter().position(|(b, _)| *b == block)?;
        Some(txns.swap_remove(i).1)
    }

    #[inline]
    fn txn(&self, block: BlockAddr) -> Option<&Txn> {
        self.sets[self.set_of(block)]
            .txns
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, t)| t)
    }

    #[inline]
    fn txn_mut(&mut self, block: BlockAddr) -> Option<&mut Txn> {
        let set = self.set_of(block);
        self.sets[set]
            .txns
            .iter_mut()
            .find(|(b, _)| *b == block)
            .map(|(_, t)| t)
    }

    /// Busy (in-flight transaction) or being recalled as an L2 victim.
    #[inline]
    fn is_blocked(&self, block: BlockAddr) -> bool {
        self.sets[self.set_of(block)]
            .txns
            .iter()
            .any(|(b, t)| *b == block || t.recall_victim == Some(block))
    }

    /// Main transaction block whose recall targets `victim`, if any
    /// (the former `recall_of` lookup).
    #[inline]
    fn recall_main_of(&self, victim: BlockAddr) -> Option<BlockAddr> {
        self.sets[self.set_of(victim)]
            .txns
            .iter()
            .find(|(_, t)| t.recall_victim == Some(victim))
            .map(|(b, _)| *b)
    }

    fn enqueue(&mut self, block: BlockAddr, req: Request) {
        let set = self.set_of(block);
        let queues = &mut self.sets[set].queues;
        match queues.iter_mut().find(|(b, _)| *b == block) {
            Some((_, q)) => q.push_back(req),
            None => {
                let mut q = VecDeque::with_capacity(4);
                q.push_back(req);
                queues.push((block, q));
            }
        }
    }

    /// Pops the next queued request for `block`; drops the queue when it
    /// empties (so stale empty queues never linger in the table).
    fn dequeue(&mut self, block: BlockAddr) -> Option<Request> {
        let set = self.set_of(block);
        let queues = &mut self.sets[set].queues;
        let i = queues.iter().position(|(b, _)| *b == block)?;
        let req = queues[i].1.pop_front()?;
        if queues[i].1.is_empty() {
            queues.swap_remove(i);
        }
        Some(req)
    }

    /// The pending-request queue for `block`, if one exists.
    fn queue_of(&self, block: BlockAddr) -> Option<&VecDeque<Request>> {
        self.sets[self.set_of(block)]
            .queues
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, q)| q)
    }

    fn quiescent(&self) -> bool {
        self.sets
            .iter()
            .all(|s| s.txns.is_empty() && s.queues.iter().all(|(_, q)| q.is_empty()))
    }

    fn iter_txns(&self) -> impl Iterator<Item = &(BlockAddr, Txn)> {
        self.sets.iter().flat_map(|s| s.txns.iter())
    }

    fn iter_queues(&self) -> impl Iterator<Item = &(BlockAddr, VecDeque<Request>)> {
        self.sets.iter().flat_map(|s| s.queues.iter())
    }
}

/// One bank of the shared L2 with its directory slice.
///
/// `Clone` snapshots the full architectural state — the model checker
/// forks a bank at every branching point of its search.
#[derive(Clone)]
pub struct DirBank {
    bank: usize,
    /// Homes blocks onto the mesh-corner memory controllers.
    mem_homing: Homing,
    /// Live transition-table rows (MESI grants Exclusive to sole readers;
    /// MSI swaps that row for a Shared grant).
    rows: DirRowSet,
    /// Row deleted by a checker mutation: firing it is a protocol error.
    disabled: Option<DirRowId>,
    cache: SetAssocCache<L2Meta>,
    /// Dense per-set transaction tables (busy transactions, recall
    /// routing and per-block request queues — see [`Mshr`]).
    mshr: Mshr,
    /// Requests that found every line of their set pinned by in-flight
    /// transactions; retried after each transaction completes.
    stalled: VecDeque<(BlockAddr, Request)>,
    /// Fault-recovery knobs. `None` (the default) keeps the recovery
    /// rows dead: requests are never classified as duplicates and no
    /// grant is retained.
    recovery: Option<RecoveryParams>,
    /// Recovery: highest sequence number each core has *completed* (its
    /// UNBLOCK landed) at this bank. A core's sequence numbers complete
    /// in order (one outstanding transaction), so any request at or
    /// below this is a duplicate left over from a retry race.
    last_completed: Vec<u32>,
}

impl std::hash::Hash for DirBank {
    /// Architectural-state hash for the model checker's visited set. The
    /// unordered maps are hashed in sorted block order so equal states
    /// hash equally regardless of insertion history; `stalled` keeps its
    /// order because retry order is architecturally visible.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bank.hash(state);
        self.mem_homing.hash(state);
        self.cache.hash(state);
        let mut busy: Vec<_> = self.mshr.iter_txns().collect();
        busy.sort_by_key(|(b, _)| *b);
        busy.hash(state);
        let mut queues: Vec<_> = self.mshr.iter_queues().collect();
        queues.sort_by_key(|(b, _)| *b);
        queues.hash(state);
        self.stalled.hash(state);
        // Architectural only when recovery is configured; hashed
        // conditionally so recovery-off hashes are untouched.
        if self.recovery.is_some() {
            self.last_completed.hash(state);
        }
    }
}

impl DirBank {
    /// Builds bank `bank` with `sets × ways` L2 lines, in a machine with
    /// `mem_ctrls` memory controllers.
    pub fn new(bank: usize, sets: usize, ways: usize, mem_ctrls: usize) -> Self {
        Self::with_base(bank, sets, ways, mem_ctrls, BaseProtocol::Mesi)
    }

    /// Like [`DirBank::new`] with an explicit protocol family: the base
    /// protocol selects the live row set (grant policy, O/F handling).
    pub fn with_base(
        bank: usize,
        sets: usize,
        ways: usize,
        mem_ctrls: usize,
        base: BaseProtocol,
    ) -> Self {
        Self {
            bank,
            mem_homing: Homing::new(mem_ctrls),
            rows: DirRowSet::for_config(base),
            disabled: None,
            cache: SetAssocCache::new(sets, ways),
            mshr: Mshr::new(sets, ways),
            stalled: VecDeque::new(),
            recovery: None,
            last_completed: Vec::new(),
        }
    }

    /// Enables the fault-recovery rows: sequence-tagged requests get
    /// duplicate suppression and grant-resend, tainted DRAM fills are
    /// refetched, and (if `nack_on_conflict`) fully-pinned sets NACK
    /// instead of stalling.
    pub fn set_recovery(&mut self, params: RecoveryParams) {
        self.recovery = Some(params);
    }

    /// Recovery: highest completed sequence number for `core`.
    fn completed_seq(&self, core: usize) -> u32 {
        self.last_completed.get(core).copied().unwrap_or(0)
    }

    /// Recovery: records that `core` completed sequence `seq`.
    fn set_completed(&mut self, core: usize, seq: u32) {
        if self.last_completed.len() <= core {
            self.last_completed.resize(core + 1, 0);
        }
        let slot = &mut self.last_completed[core];
        *slot = (*slot).max(seq);
    }

    /// Test hook: lowers the per-set MSHR capacity below the
    /// associativity so the capacity-exhaustion path (normally
    /// unreachable — every transaction pins a set line) can be driven.
    #[cfg(test)]
    fn force_mshr_capacity(&mut self, cap: usize) {
        self.mshr.cap = cap;
    }

    /// Deletes the named table row (checker mutation): any access that
    /// needs it afterwards is a protocol error. Returns false if the name
    /// is not a directory row.
    pub fn disable_row(&mut self, name: &str) -> bool {
        match DirRowId::by_name(name) {
            Some(id) => {
                self.disabled = Some(id);
                true
            }
            None => false,
        }
    }

    fn ctl(&self) -> Controller {
        Controller::Dir { bank: self.bank }
    }

    /// Table dispatch: records the row hit in the coverage counters and
    /// refuses to fire a row deleted by a checker mutation.
    fn row(&self, id: DirRowId, stats: &mut Stats) -> Result<(), ProtocolError> {
        stats.coverage.dir[id as usize] += 1;
        if self.disabled == Some(id) {
            return Err(ProtocolError::row(
                self.ctl(),
                id.name(),
                "row deleted by mutation",
            ));
        }
        Ok(())
    }

    /// An error (`Reach::Never`) row fired: record the hit and build the
    /// protocol error the caller returns.
    fn error(&self, id: DirRowId, stats: &mut Stats, detail: impl Into<String>) -> ProtocolError {
        stats.coverage.dir[id as usize] += 1;
        ProtocolError::row(self.ctl(), id.name(), detail)
    }

    /// Memory controller homing a block (address interleave across the
    /// mesh-corner controllers).
    fn mc_of(&self, block: BlockAddr) -> usize {
        self.mem_homing.home(block)
    }

    fn to_l1(&self, core: usize, block: BlockAddr, payload: Payload) -> Msg {
        Msg {
            src: Endpoint::Dir(self.bank),
            dst: Endpoint::L1(core),
            block,
            payload,
            tag: WireTag::default(),
        }
    }

    fn to_mem(&self, block: BlockAddr, payload: Payload) -> Msg {
        Msg {
            src: Endpoint::Dir(self.bank),
            dst: Endpoint::Mem(self.mc_of(block)),
            block,
            payload,
            tag: WireTag::default(),
        }
    }

    /// Directory state of `block` (tests/tracing). `None` = not resident
    /// in this bank.
    pub fn dir_state(&self, block: BlockAddr) -> Option<DirState> {
        self.cache.get(block).map(|l| l.meta.dir)
    }

    /// True if any transaction is in flight at this bank.
    pub fn quiescent(&self) -> bool {
        self.mshr.quiescent() && self.stalled.is_empty()
    }

    /// End-of-run functional view of the L2 data for `block`, if resident.
    pub fn peek_block(&self, block: BlockAddr) -> Option<BlockData> {
        self.cache.get(block).map(|l| l.data)
    }

    /// Functional write used by the machine's final flush (owner data
    /// pushed down without timing). Marks the line dirty.
    pub fn flush_write(&mut self, block: BlockAddr, data: BlockData) {
        if let Some(line) = self.cache.get_mut(block) {
            line.data = data;
            line.meta.dirty = true;
            line.meta.dir = DirState::Np;
        }
    }

    /// Drains all dirty L2 lines for the final flush to DRAM.
    pub fn drain_dirty(&mut self) -> Vec<(BlockAddr, BlockData)> {
        self.cache
            .iter_mut()
            .filter(|l| l.meta.dirty)
            .map(|l| {
                l.meta.dirty = false;
                (l.block, l.data)
            })
            .collect()
    }

    /// Handles a message addressed to this bank.
    ///
    /// `Err` means the transition table has no row for this message in the
    /// current directory state — a protocol error the harness surfaces as
    /// a violation.
    pub fn handle_msg(&mut self, msg: Msg, stats: &mut Stats) -> Result<Vec<Msg>, ProtocolError> {
        let mut out = Vec::new();
        self.handle_msg_into(msg, stats, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`DirBank::handle_msg`]: appends the
    /// bank's outgoing messages to a caller-owned (reusable) buffer. The
    /// machine's hot path calls this with a scratch vector.
    pub fn handle_msg_into(
        &mut self,
        msg: Msg,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let start_len = out.len();
        let recovery = self.recovery.is_some();
        self.dispatch_msg(msg, stats, out)?;
        if recovery {
            self.stamp_grants(start_len, out);
        }
        Ok(())
    }

    /// Recovery post-pass over the messages this handling step produced:
    /// every grant (`Data`/`UpgAck`) leaving for the L1 whose transaction
    /// just reached `Unblock` is stamped with the transaction's sequence
    /// number, and a copy is retained at the transaction so a duplicate
    /// request can be answered with a resend if the grant is lost.
    fn stamp_grants(&mut self, start_len: usize, out: &mut [Msg]) {
        for m in &mut out[start_len..] {
            if !matches!(m.payload, Payload::Data { .. } | Payload::UpgAck) {
                continue;
            }
            let Endpoint::L1(core) = m.dst else { continue };
            let Some(txn) = self.mshr.txn_mut(m.block) else {
                continue;
            };
            if txn.requestor == core && txn.phase == Phase::Unblock && txn.seq != 0 {
                m.tag.seq = txn.seq;
                txn.grant = Some(m.payload.clone());
            }
        }
    }

    fn dispatch_msg(
        &mut self,
        msg: Msg,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let block = msg.block;
        // L1 requests are decoded up front so the dispatch below needs no
        // second (partial) match on the payload.
        let req_kind = match msg.payload {
            Payload::Gets => Some(ReqKind::Gets),
            Payload::Getx => Some(ReqKind::Getx),
            Payload::Upgrade => Some(ReqKind::Upgrade),
            Payload::PutS => Some(ReqKind::PutS),
            Payload::PutE => Some(ReqKind::PutE),
            Payload::PutM { data } => Some(ReqKind::PutM(data)),
            _ => None,
        };
        if let Some(kind) = req_kind {
            let Endpoint::L1(core) = msg.src else {
                panic!("request from non-L1 endpoint {:?}", msg.src)
            };
            let req = Request {
                requestor: core,
                kind,
                seq: msg.tag.seq,
            };
            stats.energy_events.l2_tag_probes += 1;
            if self.suppress_dup(block, &req, stats, out)? {
                return Ok(());
            }
            if self.is_blocked(block) {
                self.row(DirRowId::ReqQueued, stats)?;
                self.mshr.enqueue(block, req);
            } else {
                self.start(block, req, stats, out)?;
            }
            return Ok(());
        }
        match msg.payload {
            Payload::InvAck => {
                let Endpoint::L1(_) = msg.src else {
                    panic!("INV_ACK from non-L1")
                };
                self.inv_ack(block, stats, out)?;
            }
            Payload::DataToDir { data, xfer } => {
                self.owner_data(block, data, xfer, stats, out)?;
            }
            Payload::FwdNack => {
                self.fwd_nack(block, stats, out)?;
            }
            Payload::MemData { data } => {
                self.mem_data(block, data, msg.tag.tainted, stats, out)?;
            }
            Payload::Unblock => {
                let Some(txn) = self.mshr.take_txn(block) else {
                    return Err(self.error(
                        DirRowId::StrayUnblock,
                        stats,
                        format!("UNBLOCK for idle block {block:?}"),
                    ));
                };
                assert_eq!(
                    txn.phase,
                    Phase::Unblock,
                    "UNBLOCK in phase {:?}",
                    txn.phase
                );
                self.row(DirRowId::Unblock, stats)?;
                if self.recovery.is_some() && txn.seq != 0 {
                    self.set_completed(txn.requestor, txn.seq);
                }
                self.release(block, stats, out)?;
            }
            ref p => {
                return Err(self.error(
                    DirRowId::DirUnexpectedMsg,
                    stats,
                    format!("unexpected message {}", p.name()),
                ))
            }
        }
        Ok(())
    }

    /// A block is blocked if it has an in-flight transaction or is being
    /// recalled as another transaction's L2 victim.
    fn is_blocked(&self, block: BlockAddr) -> bool {
        self.mshr.is_blocked(block)
    }

    /// Admits a transaction into the per-set MSHR table; a full set is a
    /// typed protocol error (every transaction must pin a set line, so
    /// the table can never legally exceed the associativity).
    fn admit_txn(&mut self, block: BlockAddr, txn: Txn) -> Result<(), ProtocolError> {
        let cap = self.mshr.cap;
        self.mshr.insert_txn(block, txn).map_err(|set| {
            ProtocolError::internal(
                self.ctl(),
                format!(
                    "MSHR capacity exhausted: set {set} already holds \
                     {cap} transactions while admitting one for {block:?}"
                ),
            )
        })
    }

    /// Recovery-mode duplicate suppression at request admission.
    ///
    /// An L1 resend can race its original through the faulty network, so a
    /// tagged request may arrive while the original is (a) already
    /// completed, (b) the in-flight transaction, or (c) sitting in a block
    /// queue or the stall list. Cases (a) and (c) drop the duplicate; case
    /// (b) drops it too unless the transaction already reached `Unblock`
    /// and retains its grant, in which case the grant is resent (the
    /// original grant may have been the dropped message).
    ///
    /// Returns `Ok(true)` when the request was consumed here.
    fn suppress_dup(
        &mut self,
        block: BlockAddr,
        req: &Request,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<bool, ProtocolError> {
        if self.recovery.is_none() || req.seq == 0 {
            return Ok(false);
        }
        if req.seq <= self.completed_seq(req.requestor) {
            self.row(DirRowId::DupReqDrop, stats)?;
            stats.dup_reqs_dropped += 1;
            return Ok(true);
        }
        if let Some(txn) = self.mshr.txn(block) {
            if txn.requestor == req.requestor && txn.seq == req.seq {
                if txn.phase == Phase::Unblock {
                    if let Some(grant) = txn.grant.clone() {
                        self.row(DirRowId::DupReqResend, stats)?;
                        stats.grant_resends += 1;
                        let mut m = self.to_l1(req.requestor, block, grant);
                        m.tag = WireTag::seq(req.seq);
                        out.push(m);
                        return Ok(true);
                    }
                }
                self.row(DirRowId::DupReqDrop, stats)?;
                stats.dup_reqs_dropped += 1;
                return Ok(true);
            }
        }
        let queued = self.mshr.queue_of(block).is_some_and(|q| {
            q.iter()
                .any(|r| r.requestor == req.requestor && r.seq == req.seq)
        }) || self
            .stalled
            .iter()
            .any(|(b, r)| *b == block && r.requestor == req.requestor && r.seq == req.seq);
        if queued {
            self.row(DirRowId::DupReqDrop, stats)?;
            stats.dup_reqs_dropped += 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// True when resending `core`'s outstanding request (tagged `seq`)
    /// is the only way its transaction can advance at this bank: the
    /// request left no live trace here (it was lost in the network), or
    /// its transaction is parked at `Unblock` with the grant retained
    /// (the grant was lost). While the transaction sits in any earlier
    /// phase — memory fetch, invalidation gathering, owner forwarding —
    /// or the request waits in a block queue or the stall list, the bank
    /// is still working on it and a resend would only be dup-dropped.
    /// The model checker's retry action keys on this so retries fire
    /// exactly when recovery is needed, never gratuitously (a gratuitous
    /// resend would burn the bounded retry budget on healthy traces).
    pub fn resend_makes_progress(&self, block: BlockAddr, core: usize, seq: u32) -> bool {
        if self.recovery.is_none() || seq == 0 || seq <= self.completed_seq(core) {
            return false;
        }
        if let Some(txn) = self.mshr.txn(block) {
            if txn.requestor == core && txn.seq == seq {
                return txn.phase == Phase::Unblock && txn.grant.is_some();
            }
        }
        let parked = self
            .mshr
            .queue_of(block)
            .is_some_and(|q| q.iter().any(|r| r.requestor == core && r.seq == seq))
            || self
                .stalled
                .iter()
                .any(|(b, r)| *b == block && r.requestor == core && r.seq == seq);
        !parked
    }

    /// Begins servicing a request (block known unblocked).
    fn start(
        &mut self,
        block: BlockAddr,
        req: Request,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        if self.recovery.is_some() && req.seq != 0 && req.seq <= self.completed_seq(req.requestor) {
            // A queued duplicate whose original completed while it waited.
            self.row(DirRowId::DupReqDrop, stats)?;
            stats.dup_reqs_dropped += 1;
            return Ok(());
        }
        match req.kind {
            ReqKind::PutS => {
                let me = 1u64 << req.requestor;
                let w = self.cache.probe_way(block);
                let (row, new_dir) = match w.map(|t| self.cache.line_at(t).meta.dir) {
                    Some(DirState::Shared(s)) if s & me != 0 => {
                        let s = s & !me;
                        (
                            DirRowId::PutSSharer,
                            Some(if s == 0 {
                                DirState::Np
                            } else {
                                DirState::Shared(s)
                            }),
                        )
                    }
                    Some(DirState::OwnedShared { owner, sharers }) if sharers & me != 0 => (
                        DirRowId::PutSOwnedSharer,
                        Some(DirState::OwnedShared {
                            owner,
                            sharers: sharers & !me,
                        }),
                    ),
                    // The forwarder evicted its clean copy: the block
                    // demotes to plain Shared (L2 serves future reads).
                    Some(DirState::Forward { fwd, sharers }) if fwd == req.requestor => (
                        DirRowId::PutSFwd,
                        Some(if sharers == 0 {
                            DirState::Np
                        } else {
                            DirState::Shared(sharers)
                        }),
                    ),
                    Some(DirState::Forward { fwd, sharers }) if sharers & me != 0 => (
                        DirRowId::PutSFwdSharer,
                        Some(DirState::Forward {
                            fwd,
                            sharers: sharers & !me,
                        }),
                    ),
                    _ => (DirRowId::PutSStale, None),
                };
                self.row(row, stats)?;
                if let Some(dir) = new_dir {
                    self.cache.line_at_mut(w.unwrap()).meta.dir = dir;
                }
                // No ack; nothing further.
            }
            ReqKind::PutE => {
                let w = self.cache.probe_way(block);
                let owner = w.map(|t| self.cache.line_at(t).meta.dir)
                    == Some(DirState::Owned(req.requestor));
                let row = if owner {
                    DirRowId::PutEOwner
                } else {
                    DirRowId::PutEStale
                };
                self.row(row, stats)?;
                if owner {
                    self.cache.line_at_mut(w.unwrap()).meta.dir = DirState::Np;
                }
                out.push(self.to_l1(req.requestor, block, Payload::WbAck));
            }
            ReqKind::PutM(data) => {
                // A stale PUTM lost a race with a forward; its data was
                // already supplied from the writeback buffer. Ack either
                // way so the L1 releases its buffer entry.
                let w = self.cache.probe_way(block);
                let (row, new_dir) = match w.map(|t| self.cache.line_at(t).meta.dir) {
                    Some(DirState::Owned(o)) if o == req.requestor => {
                        (DirRowId::PutMOwner, Some(DirState::Np))
                    }
                    // MOESI/MOSI: the dirty O owner evicted. Its data
                    // refills the (possibly stale) L2 copy; the clean
                    // sharers keep their copies.
                    Some(DirState::OwnedShared { owner, sharers }) if owner == req.requestor => (
                        DirRowId::PutMOwnedShared,
                        Some(if sharers == 0 {
                            DirState::Np
                        } else {
                            DirState::Shared(sharers)
                        }),
                    ),
                    _ => (DirRowId::PutMStale, None),
                };
                self.row(row, stats)?;
                if let Some(dir) = new_dir {
                    let line = self.cache.line_at_mut(w.unwrap());
                    line.data = data;
                    line.meta.dirty = true;
                    line.meta.dir = dir;
                    stats.energy_events.l2_writes += 1;
                }
                out.push(self.to_l1(req.requestor, block, Payload::WbAck));
            }
            ReqKind::Gets | ReqKind::Getx | ReqKind::Upgrade => {
                let kind = match req.kind {
                    ReqKind::Gets => TxnKind::Gets,
                    ReqKind::Getx => TxnKind::Getx,
                    _ => TxnKind::Upgrade,
                };
                if let Some(w) = self.cache.probe_way(block) {
                    self.admit_txn(
                        block,
                        Txn {
                            requestor: req.requestor,
                            kind,
                            phase: Phase::Unblock, // placeholder, set by act
                            acks_pending: 0,
                            recall_victim: None,
                            seq: req.seq,
                            grant: None,
                        },
                    )?;
                    self.act_on_line(block, w, stats, out)?;
                } else {
                    self.begin_fill(block, req, kind, stats, out)?;
                }
            }
        }
        Ok(())
    }

    /// L2 miss path: allocate a way (recalling an L1-held victim if
    /// necessary) and fetch the block from memory.
    fn begin_fill(
        &mut self,
        block: BlockAddr,
        req: Request,
        kind: TxnKind,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let lookup = self
            .cache
            .lookup_way_excluding(block, |b| self.is_blocked(b));
        let Some(lookup) = lookup else {
            if let Some(rec) = self.recovery {
                if rec.nack_on_conflict && req.seq != 0 {
                    // Bounce instead of queueing: the L1 retries with
                    // backoff, keeping the stall list short under storms.
                    self.row(DirRowId::NackConflict, stats)?;
                    stats.conflict_nacks += 1;
                    out.push(self.to_l1(req.requestor, block, Payload::FwdNack));
                    return Ok(());
                }
            }
            // Every line in the set is pinned by an in-flight transaction;
            // retry when one completes.
            self.row(DirRowId::FillStalled, stats)?;
            self.stalled.push_back((block, req));
            return Ok(());
        };
        let mut txn = Txn {
            requestor: req.requestor,
            kind,
            phase: Phase::MemFetch,
            acks_pending: 0,
            recall_victim: None,
            seq: req.seq,
            grant: None,
        };
        match lookup {
            WayLookup::Hit(_) => {
                return Err(ProtocolError::internal(
                    self.ctl(),
                    format!("begin_fill on resident block {block:?}"),
                ))
            }
            WayLookup::Free { way } => {
                self.row(DirRowId::FillFree, stats)?;
                // Reserve the way with a placeholder line awaiting fill.
                self.cache.insert_at(
                    way,
                    block,
                    L2Meta {
                        dir: DirState::Np,
                        dirty: false,
                    },
                    BlockData::zeroed(),
                );
                out.push(self.to_mem(block, Payload::MemRead));
                self.admit_txn(block, txn)?;
            }
            WayLookup::Victim(v) => {
                let victim = self.cache.line_at(v).block;
                match self.cache.line_at(v).meta.dir {
                    DirState::Np => {
                        self.row(DirRowId::FillEvictNp, stats)?;
                        // Plain L2 eviction; the victim's way (same set as
                        // `block`) is reused for the placeholder directly.
                        let way = v.way();
                        let vline = self.cache.remove_at(v);
                        if vline.meta.dirty {
                            stats.energy_events.l2_reads += 1;
                            out.push(self.to_mem(victim, Payload::MemWrite { data: vline.data }));
                        }
                        self.cache.insert_at(
                            way,
                            block,
                            L2Meta {
                                dir: DirState::Np,
                                dirty: false,
                            },
                            BlockData::zeroed(),
                        );
                        out.push(self.to_mem(block, Payload::MemRead));
                        self.admit_txn(block, txn)?;
                    }
                    DirState::Shared(s) => {
                        self.row(DirRowId::FillRecallShared, stats)?;
                        // Inclusion recall: invalidate all L1 sharers.
                        stats.l2_recalls += 1;
                        txn.phase = Phase::RecallInv;
                        txn.recall_victim = Some(victim);
                        txn.acks_pending = s.count_ones();
                        for core in bits(s) {
                            out.push(self.to_l1(core, victim, Payload::Inv));
                        }
                        self.admit_txn(block, txn)?;
                    }
                    DirState::Owned(owner) => {
                        self.row(DirRowId::FillRecallOwned, stats)?;
                        // Inclusion recall: pull the owner's data.
                        stats.l2_recalls += 1;
                        txn.phase = Phase::RecallData;
                        txn.recall_victim = Some(victim);
                        out.push(self.to_l1(owner, victim, Payload::FwdGetx));
                        self.admit_txn(block, txn)?;
                    }
                    DirState::OwnedShared { owner, sharers } => {
                        self.row(DirRowId::FillRecallOwnedShared, stats)?;
                        // MOESI/MOSI recall: the clean sharers are
                        // invalidated first; the dirty owner is pulled
                        // last because its bytes are the only valid copy
                        // (the L2 fill was elided). The victim's dir is
                        // demoted to Owned so the ack-completion path
                        // knows an owner pull is still due.
                        stats.l2_recalls += 1;
                        txn.recall_victim = Some(victim);
                        self.cache.line_at_mut(v).meta.dir = DirState::Owned(owner);
                        if sharers == 0 {
                            txn.phase = Phase::RecallData;
                            out.push(self.to_l1(owner, victim, Payload::FwdGetx));
                        } else {
                            txn.phase = Phase::RecallInv;
                            txn.acks_pending = sharers.count_ones();
                            for core in bits(sharers) {
                                out.push(self.to_l1(core, victim, Payload::Inv));
                            }
                        }
                        self.admit_txn(block, txn)?;
                    }
                    DirState::Forward { fwd, sharers } => {
                        self.row(DirRowId::FillRecallFwd, stats)?;
                        // MESIF recall: every L1 copy is clean and the L2
                        // holds valid data, so all copies (F included)
                        // are invalidated like plain sharers.
                        stats.l2_recalls += 1;
                        let all = sharers | (1 << fwd);
                        txn.phase = Phase::RecallInv;
                        txn.recall_victim = Some(victim);
                        txn.acks_pending = all.count_ones();
                        for core in bits(all) {
                            out.push(self.to_l1(core, victim, Payload::Inv));
                        }
                        self.admit_txn(block, txn)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Acts on a transaction whose block is resident and stable in the L2.
    /// `w` is the line's probe token from the dispatching lookup.
    fn act_on_line(
        &mut self,
        block: BlockAddr,
        w: ProbedWay,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let txn = self.mshr.txn_mut(block).expect("transaction in flight");
        let req = txn.requestor;
        let line = self.cache.line_at(w);
        let dir = line.meta.dir;
        let data = line.data;
        // Upgrades from a core that no longer holds a copy (it lost an
        // invalidation race) are converted to GETX and answered with data.
        // O/F holders and their sharers count as listed: their copies are
        // valid, so an ack suffices once everyone else is invalidated.
        let listed = match dir {
            DirState::Shared(s) => s & (1 << req) != 0,
            DirState::OwnedShared { owner, sharers } => owner == req || sharers & (1 << req) != 0,
            DirState::Forward { fwd, sharers } => fwd == req || sharers & (1 << req) != 0,
            DirState::Np | DirState::Owned(_) => false,
        };
        let kind = match (txn.kind, listed) {
            (TxnKind::Upgrade, true) => TxnKind::Upgrade,
            (TxnKind::Upgrade, false) => {
                self.row(DirRowId::UpgradeRace, stats)?;
                TxnKind::Getx
            }
            (k, _) => k,
        };
        match (kind, dir) {
            (TxnKind::Gets, DirState::Np) => {
                let row = if self.rows.contains(DirRowId::GetsNpExclusive) {
                    DirRowId::GetsNpExclusive
                } else {
                    DirRowId::GetsNpShared
                };
                self.row(row, stats)?;
                stats.energy_events.l2_reads += 1;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::Unblock;
                if row == DirRowId::GetsNpExclusive {
                    // MESI: no sharers, grant Exclusive.
                    self.cache.line_at_mut(w).meta.dir = DirState::Owned(req);
                    out.push(self.to_l1(
                        req,
                        block,
                        Payload::Data {
                            data,
                            grant: Grant::Exclusive,
                        },
                    ));
                } else {
                    // MSI: readers always get Shared.
                    self.cache.line_at_mut(w).meta.dir = DirState::Shared(1 << req);
                    out.push(self.to_l1(
                        req,
                        block,
                        Payload::Data {
                            data,
                            grant: Grant::Shared,
                        },
                    ));
                }
            }
            (TxnKind::Gets, DirState::Shared(s)) => {
                assert_eq!(s & (1 << req), 0, "GETS from listed sharer {req}");
                self.row(DirRowId::GetsShared, stats)?;
                stats.energy_events.l2_reads += 1;
                self.cache.line_at_mut(w).meta.dir = DirState::Shared(s | (1 << req));
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::Unblock;
                out.push(self.to_l1(
                    req,
                    block,
                    Payload::Data {
                        data,
                        grant: Grant::Shared,
                    },
                ));
            }
            (TxnKind::Gets, DirState::Owned(owner)) => {
                assert_ne!(owner, req, "GETS from owner");
                self.row(DirRowId::GetsOwned, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::OwnerData;
                out.push(self.to_l1(owner, block, Payload::FwdGets));
            }
            (TxnKind::Gets, DirState::OwnedShared { owner, .. }) => {
                // MOESI/MOSI: the dirty O owner sources the data; L2 may
                // be stale, so the read cannot be served locally.
                assert_ne!(owner, req, "GETS from dirty owner");
                self.row(DirRowId::GetsOwnedShared, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::OwnerData;
                out.push(self.to_l1(owner, block, Payload::FwdGets));
            }
            (TxnKind::Gets, DirState::Forward { fwd, .. }) => {
                // MESIF: the clean forwarder answers instead of L2 (or
                // bounces with FWD_NACK if its copy is already gone).
                assert_ne!(fwd, req, "GETS from forwarder");
                self.row(DirRowId::GetsFwd, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::FwdData;
                out.push(self.to_l1(fwd, block, Payload::FwdGets));
            }
            (TxnKind::Getx, DirState::Np) => {
                self.row(DirRowId::GetxNp, stats)?;
                stats.energy_events.l2_reads += 1;
                self.cache.line_at_mut(w).meta.dir = DirState::Owned(req);
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.kind = TxnKind::Getx;
                txn.phase = Phase::Unblock;
                out.push(self.to_l1(
                    req,
                    block,
                    Payload::Data {
                        data,
                        grant: Grant::Modified,
                    },
                ));
            }
            (TxnKind::Getx, DirState::Shared(s)) => {
                let others = s & !(1 << req);
                assert_ne!(others, 0, "Shared with no sharers");
                self.row(DirRowId::GetxShared, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.kind = TxnKind::Getx;
                txn.phase = Phase::InvAcks;
                txn.acks_pending = others.count_ones();
                for core in bits(others) {
                    out.push(self.to_l1(core, block, Payload::Inv));
                }
            }
            (TxnKind::Getx, DirState::Owned(owner)) => {
                assert_ne!(owner, req, "GETX from owner");
                self.row(DirRowId::GetxOwned, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.kind = TxnKind::Getx;
                txn.phase = Phase::OwnerData;
                out.push(self.to_l1(owner, block, Payload::FwdGetx));
            }
            (TxnKind::Getx, DirState::OwnedShared { owner, sharers }) => {
                // Sequenced: invalidate the clean sharers first, then
                // pull the dirty owner's data (`inv_ack_last_getx_owned`
                // fires the FWD_GETX on the last ack).
                assert_ne!(owner, req, "GETX from dirty owner");
                self.row(DirRowId::GetxOwnedShared, stats)?;
                let others = sharers & !(1 << req);
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.kind = TxnKind::Getx;
                if others == 0 {
                    txn.phase = Phase::OwnerData;
                    out.push(self.to_l1(owner, block, Payload::FwdGetx));
                } else {
                    txn.phase = Phase::InvAcks;
                    txn.acks_pending = others.count_ones();
                    for core in bits(others) {
                        out.push(self.to_l1(core, block, Payload::Inv));
                    }
                }
            }
            (TxnKind::Getx, DirState::Forward { fwd, sharers }) => {
                // MESIF: every copy is clean and L2 is valid, so the F
                // holder is invalidated like any sharer and the data is
                // granted from L2 once the acks collect.
                let others = (sharers | (1 << fwd)) & !(1 << req);
                assert_ne!(others, 0, "Forward with no copies to invalidate");
                self.row(DirRowId::GetxFwd, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.kind = TxnKind::Getx;
                txn.phase = Phase::InvAcks;
                txn.acks_pending = others.count_ones();
                for core in bits(others) {
                    out.push(self.to_l1(core, block, Payload::Inv));
                }
            }
            (TxnKind::Upgrade, DirState::Shared(s)) => {
                let others = s & !(1 << req);
                let row = if others == 0 {
                    DirRowId::UpgradeSole
                } else {
                    DirRowId::UpgradeInv
                };
                self.row(row, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                if others == 0 {
                    self.cache.line_at_mut(w).meta.dir = DirState::Owned(req);
                    txn.phase = Phase::Unblock;
                    out.push(self.to_l1(req, block, Payload::UpgAck));
                } else {
                    txn.phase = Phase::InvAcks;
                    txn.acks_pending = others.count_ones();
                    for core in bits(others) {
                        out.push(self.to_l1(core, block, Payload::Inv));
                    }
                }
            }
            (TxnKind::Upgrade, DirState::OwnedShared { owner, sharers }) => {
                let (row, targets) = if owner == req {
                    // The dirty owner publishes: invalidate the sharers.
                    (DirRowId::UpgradeOwner, sharers)
                } else {
                    // A sharer publishes. Its clean bytes match the
                    // owner's dirty bytes, so the owner's copy can be
                    // invalidated without a writeback: dirty ownership
                    // transfers to the upgrading core.
                    (
                        DirRowId::UpgradeOwnedSharer,
                        (sharers & !(1 << req)) | (1 << owner),
                    )
                };
                self.row(row, stats)?;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                if targets == 0 {
                    self.cache.line_at_mut(w).meta.dir = DirState::Owned(req);
                    txn.phase = Phase::Unblock;
                    out.push(self.to_l1(req, block, Payload::UpgAck));
                } else {
                    txn.phase = Phase::InvAcks;
                    txn.acks_pending = targets.count_ones();
                    for core in bits(targets) {
                        out.push(self.to_l1(core, block, Payload::Inv));
                    }
                }
            }
            (TxnKind::Upgrade, DirState::Forward { fwd, sharers }) => {
                self.row(DirRowId::UpgradeFwd, stats)?;
                let targets = (sharers | (1 << fwd)) & !(1 << req);
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                if targets == 0 {
                    self.cache.line_at_mut(w).meta.dir = DirState::Owned(req);
                    txn.phase = Phase::Unblock;
                    out.push(self.to_l1(req, block, Payload::UpgAck));
                } else {
                    txn.phase = Phase::InvAcks;
                    txn.acks_pending = targets.count_ones();
                    for core in bits(targets) {
                        out.push(self.to_l1(core, block, Payload::Inv));
                    }
                }
            }
            (TxnKind::Upgrade, d) => {
                return Err(ProtocolError::internal(
                    self.ctl(),
                    format!("unconverted upgrade on {block:?} with dir {d:?}"),
                ))
            }
        }
        Ok(())
    }

    /// An invalidation ack arrived for `block` — either the main block of
    /// a transaction or an L2 recall victim.
    fn inv_ack(
        &mut self,
        block: BlockAddr,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        if let Some(main) = self.mshr.recall_main_of(block) {
            self.row(DirRowId::RecallInvAck, stats)?;
            let txn = self.mshr.txn_mut(main).expect("recall txn in flight");
            assert_eq!(txn.phase, Phase::RecallInv);
            txn.acks_pending -= 1;
            if txn.acks_pending == 0 {
                // An OwnedShared victim was demoted to Owned when its
                // sharers were invalidated: with the acks in, pull the
                // dirty owner's bytes before the eviction completes.
                if let Some(DirState::Owned(o)) = self.cache.get(block).map(|l| l.meta.dir) {
                    let txn = self.mshr.txn_mut(main).expect("recall txn");
                    txn.phase = Phase::RecallData;
                    out.push(self.to_l1(o, block, Payload::FwdGetx));
                    return Ok(());
                }
                self.finish_recall(main, stats, out)?;
            }
            return Ok(());
        }
        let Some(txn) = self.mshr.txn_mut(block) else {
            return Err(self.error(
                DirRowId::StrayInvAck,
                stats,
                format!("stray INV_ACK for {block:?}"),
            ));
        };
        // Classify the transaction kind before the phase assert: a GETS
        // never collects inv acks, so an INV_ACK arriving during one is
        // the typed defensive error (`inv_ack_gets`), not a phase bug.
        if txn.kind == TxnKind::Gets {
            return Err(self.error(
                DirRowId::InvAckGets,
                stats,
                format!("GETS on {block:?} collected an inv ack"),
            ));
        }
        assert_eq!(
            txn.phase,
            Phase::InvAcks,
            "INV_ACK in phase {:?}",
            txn.phase
        );
        txn.acks_pending -= 1;
        if txn.acks_pending > 0 {
            self.row(DirRowId::InvAckPending, stats)?;
            return Ok(());
        }
        let req = txn.requestor;
        let kind = txn.kind;
        let w = self.cache.probe_way(block).expect("line resident");
        // MOESI GETX on a dirty-shared block: the clean sharers are now
        // gone, but the O owner still holds the only valid bytes — pull
        // them before granting (L2 may be stale after an elided fill).
        if kind == TxnKind::Getx {
            if let DirState::OwnedShared { owner, .. } = self.cache.line_at(w).meta.dir {
                self.row(DirRowId::InvAckLastGetxOwned, stats)?;
                self.cache.line_at_mut(w).meta.dir = DirState::Owned(owner);
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::OwnerData;
                out.push(self.to_l1(owner, block, Payload::FwdGetx));
                return Ok(());
            }
        }
        let row = match kind {
            TxnKind::Getx => DirRowId::InvAckLastGetx,
            TxnKind::Upgrade => DirRowId::InvAckLastUpgrade,
            TxnKind::Gets => unreachable!("GETS rejected above"),
        };
        self.row(row, stats)?;
        let line = self.cache.line_at_mut(w);
        line.meta.dir = DirState::Owned(req);
        match kind {
            TxnKind::Getx => {
                stats.energy_events.l2_reads += 1;
                let data = self.cache.line_at(w).data;
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::Unblock;
                out.push(self.to_l1(
                    req,
                    block,
                    Payload::Data {
                        data,
                        grant: Grant::Modified,
                    },
                ));
            }
            _ => {
                let txn = self.mshr.txn_mut(block).expect("transaction in flight");
                txn.phase = Phase::Unblock;
                out.push(self.to_l1(req, block, Payload::UpgAck));
            }
        }
        Ok(())
    }

    /// Owner data arrived — for the main block (OwnerData or FwdData
    /// phase) or a recall victim.
    fn owner_data(
        &mut self,
        block: BlockAddr,
        data: BlockData,
        xfer: OwnerXfer,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        if let Some(main) = self.mshr.recall_main_of(block) {
            self.row(DirRowId::RecallOwnerData, stats)?;
            let txn = self.mshr.txn_mut(main).expect("recall txn");
            assert_eq!(txn.phase, Phase::RecallData);
            // Fold the owner's data into the victim line before eviction.
            let line = self.cache.get_mut(block).expect("victim resident");
            line.data = data;
            line.meta.dirty = true;
            line.meta.dir = DirState::Np;
            stats.energy_events.l2_writes += 1;
            self.finish_recall(main, stats, out)?;
            return Ok(());
        }
        let Some(txn) = self.mshr.txn_mut(block) else {
            return Err(self.error(
                DirRowId::StrayOwnerData,
                stats,
                format!("stray owner data for {block:?}"),
            ));
        };
        // As with INV_ACK: an UPGRADE transaction never waits on owner
        // data, so classify it as the typed defensive error before the
        // phase assert can fire.
        if txn.kind == TxnKind::Upgrade {
            return Err(self.error(
                DirRowId::OwnerDataUpgrade,
                stats,
                format!("upgrade on {block:?} waited on owner data"),
            ));
        }
        let req = txn.requestor;
        let kind = txn.kind;
        let phase = txn.phase;
        let w = self.cache.probe_way(block).expect("line resident");
        if phase == Phase::FwdData {
            // MESIF: the F holder forwarded its clean copy. L2 was valid
            // all along, so nothing is written back — the forwarder
            // downgrades to S and the requestor becomes the new F.
            assert_eq!(kind, TxnKind::Gets, "FwdData on a {kind:?}");
            assert_eq!(xfer, OwnerXfer::ToShared, "F holder must downgrade");
            self.row(DirRowId::FwdDataGets, stats)?;
            stats.clean_forwards += 1;
            let dir = self.cache.line_at(w).meta.dir;
            let DirState::Forward { fwd, sharers } = dir else {
                return Err(ProtocolError::internal(
                    self.ctl(),
                    format!("forward data for {block:?} but dir {dir:?}"),
                ));
            };
            self.cache.line_at_mut(w).meta.dir = DirState::Forward {
                fwd: req,
                sharers: sharers | (1 << fwd),
            };
            let txn = self.mshr.txn_mut(block).expect("transaction in flight");
            txn.phase = Phase::Unblock;
            out.push(self.to_l1(
                req,
                block,
                Payload::Data {
                    data,
                    grant: Grant::Forward,
                },
            ));
            return Ok(());
        }
        assert_eq!(phase, Phase::OwnerData);
        let dir = self.cache.line_at(w).meta.dir;
        let (grant, new_dir) = match (kind, xfer) {
            (TxnKind::Getx, _) => {
                // The owner invalidated (or answered from its writeback
                // buffer); the requestor takes over as sole owner.
                self.row(DirRowId::OwnerDataGetx, stats)?;
                stats.energy_events.l2_writes += 1;
                stats.energy_events.l2_reads += 1;
                let line = self.cache.line_at_mut(w);
                line.data = data;
                line.meta.dirty = true;
                (Grant::Modified, DirState::Owned(req))
            }
            (TxnKind::Gets, OwnerXfer::ToOwned) => {
                // MOESI/MOSI dirty-sharing writeback elision: the owner
                // keeps the dirty block in O and stays the data source;
                // the (possibly stale) L2 copy is NOT refreshed.
                if !self.rows.contains(DirRowId::OwnerDataGetsOwned) {
                    return Err(ProtocolError::internal(
                        self.ctl(),
                        format!("owner retained O for {block:?} without MOESI rows"),
                    ));
                }
                self.row(DirRowId::OwnerDataGetsOwned, stats)?;
                stats.wb_elisions += 1;
                let new_dir = match dir {
                    DirState::Owned(o) => DirState::OwnedShared {
                        owner: o,
                        sharers: 1 << req,
                    },
                    DirState::OwnedShared { owner, sharers } => DirState::OwnedShared {
                        owner,
                        sharers: sharers | (1 << req),
                    },
                    s => {
                        return Err(ProtocolError::internal(
                            self.ctl(),
                            format!("owner data for {block:?} but dir state {s:?}"),
                        ))
                    }
                };
                (Grant::Shared, new_dir)
            }
            (TxnKind::Gets, OwnerXfer::ToShared)
                if self.rows.contains(DirRowId::OwnerDataGetsFwd) =>
            {
                // MESIF: the owner's data refills L2 and the requestor is
                // designated the clean forwarder for future reads.
                self.row(DirRowId::OwnerDataGetsFwd, stats)?;
                stats.energy_events.l2_writes += 1;
                let line = self.cache.line_at_mut(w);
                line.data = data;
                line.meta.dirty = true;
                let DirState::Owned(o) = dir else {
                    return Err(ProtocolError::internal(
                        self.ctl(),
                        format!("owner data for {block:?} but dir state {dir:?}"),
                    ));
                };
                (
                    Grant::Forward,
                    DirState::Forward {
                        fwd: req,
                        sharers: 1 << o,
                    },
                )
            }
            (TxnKind::Gets, _) => {
                // MESI/MSI (and MOESI race fallbacks): refill L2 and
                // track everyone still holding a copy as a plain sharer.
                self.row(DirRowId::OwnerDataGets, stats)?;
                stats.energy_events.l2_writes += 1;
                stats.energy_events.l2_reads += 1;
                let line = self.cache.line_at_mut(w);
                line.data = data;
                line.meta.dirty = true;
                let mut s = 1u64 << req;
                match dir {
                    DirState::Owned(o) => {
                        if xfer == OwnerXfer::ToShared {
                            s |= 1 << o;
                        }
                    }
                    // MOESI: the O holder answered while upgrading (SM_A,
                    // `fwd_gets_upgrading`) — it still holds valid bytes,
                    // as do the clean sharers.
                    DirState::OwnedShared { owner, sharers } => {
                        s |= sharers;
                        if xfer == OwnerXfer::ToShared {
                            s |= 1 << owner;
                        }
                    }
                    d => {
                        return Err(ProtocolError::internal(
                            self.ctl(),
                            format!("owner data for {block:?} but dir state {d:?}"),
                        ))
                    }
                }
                (Grant::Shared, DirState::Shared(s))
            }
            (TxnKind::Upgrade, _) => unreachable!("UPGRADE rejected above"),
        };
        self.cache.line_at_mut(w).meta.dir = new_dir;
        let txn = self.mshr.txn_mut(block).expect("transaction in flight");
        txn.phase = Phase::Unblock;
        out.push(self.to_l1(req, block, Payload::Data { data, grant }));
        Ok(())
    }

    /// MESIF `FWD_NACK`: the forwarder's clean copy was already evicted
    /// (its `PutS` is queued behind this transaction). The copy was clean,
    /// so the valid L2 block serves the requestor, which becomes the new F.
    fn fwd_nack(
        &mut self,
        block: BlockAddr,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let Some(txn) = self.mshr.txn_mut(block) else {
            return Err(self.error(
                DirRowId::DirUnexpectedMsg,
                stats,
                format!("stray FWD_NACK for {block:?}"),
            ));
        };
        assert_eq!(
            txn.phase,
            Phase::FwdData,
            "FWD_NACK in phase {:?}",
            txn.phase
        );
        let req = txn.requestor;
        self.row(DirRowId::FwdNackGets, stats)?;
        stats.energy_events.l2_reads += 1;
        let w = self.cache.probe_way(block).expect("line resident");
        let dir = self.cache.line_at(w).meta.dir;
        let DirState::Forward { fwd: _, sharers } = dir else {
            return Err(ProtocolError::internal(
                self.ctl(),
                format!("FWD_NACK for {block:?} but dir {dir:?}"),
            ));
        };
        let line = self.cache.line_at_mut(w);
        line.meta.dir = DirState::Forward { fwd: req, sharers };
        let data = line.data;
        let txn = self.mshr.txn_mut(block).expect("transaction in flight");
        txn.phase = Phase::Unblock;
        out.push(self.to_l1(
            req,
            block,
            Payload::Data {
                data,
                grant: Grant::Forward,
            },
        ));
        Ok(())
    }

    /// DRAM fill arrived for a transaction in `MemFetch`.
    fn mem_data(
        &mut self,
        block: BlockAddr,
        data: BlockData,
        tainted: bool,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        match self.mshr.txn(block) {
            Some(txn) => assert_eq!(txn.phase, Phase::MemFetch),
            None => {
                return Err(self.error(
                    DirRowId::StrayMemData,
                    stats,
                    format!("stray MEM_DATA for {block:?}"),
                ))
            }
        }
        if tainted && self.recovery.is_some() {
            // The DRAM fill was corrupted in flight. The L2 copy is the
            // root of the precise hierarchy, so never install it: discard
            // and fetch again (the reserved placeholder way stays put).
            self.row(DirRowId::CorruptMemRefetch, stats)?;
            stats.corrupt_mem_refetches += 1;
            out.push(self.to_mem(block, Payload::MemRead));
            return Ok(());
        }
        self.row(DirRowId::MemData, stats)?;
        stats.energy_events.l2_writes += 1;
        let w = self.cache.probe_way(block).expect("placeholder reserved");
        let line = self.cache.line_at_mut(w);
        line.data = data;
        line.meta.dirty = false;
        line.meta.dir = DirState::Np;
        self.act_on_line(block, w, stats, out)
    }

    /// Recall of a transaction's L2 victim completed: evict the victim,
    /// start the DRAM fill of the main block, and release waiters on the
    /// victim.
    fn finish_recall(
        &mut self,
        main: BlockAddr,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let txn = self.mshr.txn_mut(main).expect("recall txn");
        let victim = txn.recall_victim.take().expect("victim recorded");
        txn.phase = Phase::MemFetch;
        let vline = self.cache.remove(victim).expect("victim resident");
        if vline.meta.dirty {
            stats.energy_events.l2_reads += 1;
            out.push(self.to_mem(victim, Payload::MemWrite { data: vline.data }));
        }
        // Reserve the freed way for the main block and fetch it.
        let way = match self.cache.lookup_for_insert(main) {
            LookupResult::Free { way } => way,
            r => {
                return Err(ProtocolError::internal(
                    self.ctl(),
                    format!("way just freed for {main:?}, got {r:?}"),
                ))
            }
        };
        self.cache.insert_at(
            way,
            main,
            L2Meta {
                dir: DirState::Np,
                dirty: false,
            },
            BlockData::zeroed(),
        );
        out.push(self.to_mem(main, Payload::MemRead));
        // Anyone queued on the (now departed) victim can proceed.
        self.release_queued(victim, stats, out)
    }

    /// A transaction finished: service queued requests for the block and
    /// retry set-stalled fills.
    fn release(
        &mut self,
        block: BlockAddr,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        self.release_queued(block, stats, out)?;
        self.retry_stalled(stats, out)
    }

    fn release_queued(
        &mut self,
        block: BlockAddr,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        // Process queued requests until one blocks the line again (or the
        // queue drains). PUTs are synchronous, so several may complete.
        while !self.is_blocked(block) {
            let Some(req) = self.mshr.dequeue(block) else {
                break;
            };
            self.start(block, req, stats, out)?;
        }
        Ok(())
    }

    fn retry_stalled(
        &mut self,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ProtocolError> {
        let n = self.stalled.len();
        for _ in 0..n {
            let (block, req) = self.stalled.pop_front().expect("counted");
            if self.is_blocked(block) {
                self.mshr.enqueue(block, req);
            } else {
                self.start(block, req, stats, out)?;
            }
        }
        Ok(())
    }
}

/// Iterates the set bits of a sharer mask as core indices.
fn bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| mask & (1 << i) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    fn req_msg(core: usize, block: BlockAddr, payload: Payload) -> Msg {
        Msg {
            src: Endpoint::L1(core),
            dst: Endpoint::Dir(0),
            block,
            payload,
            tag: WireTag::default(),
        }
    }

    fn data_of(msg: &Msg) -> (BlockData, Grant) {
        match msg.payload {
            Payload::Data { data, grant } => (data, grant),
            ref p => panic!("expected DATA, got {}", p.name()),
        }
    }

    /// Drives the bank plus a perfect memory: answers MemRead with zeroed
    /// data immediately, swallows MemWrite.
    fn drive_mem(bank: &mut DirBank, out: Vec<Msg>, stats: &mut Stats) -> Vec<Msg> {
        let mut result = Vec::new();
        let mut pending = out;
        while let Some(msg) = pending.pop() {
            match (&msg.dst, &msg.payload) {
                (Endpoint::Mem(_), Payload::MemRead) => {
                    let reply = Msg {
                        src: msg.dst,
                        dst: msg.src,
                        block: msg.block,
                        payload: Payload::MemData {
                            data: BlockData::zeroed(),
                        },
                        tag: WireTag::default(),
                    };
                    pending.extend(bank.handle_msg(reply, stats).unwrap());
                }
                (Endpoint::Mem(_), Payload::MemWrite { .. }) => {}
                _ => result.push(msg),
            }
        }
        result
    }

    #[test]
    fn msi_bank_grants_shared_to_sole_reader() {
        let mut bank = DirBank::with_base(0, 16, 4, 1, BaseProtocol::Msi);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(3, blk(16), Payload::Gets), &mut stats)
            .unwrap();
        let out = drive_mem(&mut bank, out, &mut stats);
        let (_, grant) = data_of(&out[0]);
        assert_eq!(grant, Grant::Shared, "MSI never grants E");
        assert_eq!(bank.dir_state(blk(16)), Some(DirState::Shared(0b1000)));
        // A subsequent store from the same core must therefore UPGRADE.
        bank.handle_msg(req_msg(3, blk(16), Payload::Unblock), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(req_msg(3, blk(16), Payload::Upgrade), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::UpgAck));
        assert_eq!(bank.dir_state(blk(16)), Some(DirState::Owned(3)));
    }

    #[test]
    fn cold_gets_grants_exclusive() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(3, blk(16), Payload::Gets), &mut stats)
            .unwrap();
        let out = drive_mem(&mut bank, out, &mut stats);
        assert_eq!(out.len(), 1);
        let (_, grant) = data_of(&out[0]);
        assert_eq!(grant, Grant::Exclusive);
        assert_eq!(out[0].dst, Endpoint::L1(3));
        assert_eq!(bank.dir_state(blk(16)), Some(DirState::Owned(3)));
        // Unblock releases the transaction.
        bank.handle_msg(req_msg(3, blk(16), Payload::Unblock), &mut stats)
            .unwrap();
        assert!(bank.quiescent());
    }

    #[test]
    fn second_gets_is_forwarded_to_owner() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(1), Payload::Unblock), &mut stats)
            .unwrap();
        // Core 1 GETS: owner (core 0) must be asked for data.
        let out = bank
            .handle_msg(req_msg(1, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::FwdGets));
        assert_eq!(out[0].dst, Endpoint::L1(0));
        // Owner responds; both become sharers.
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(1),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        let (_, grant) = data_of(&out[0]);
        assert_eq!(grant, Grant::Shared);
        assert_eq!(bank.dir_state(blk(1)), Some(DirState::Shared(0b11)));
    }

    #[test]
    fn getx_invalidates_sharers_then_grants_m() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        // Cores 0 and 1 share the block.
        let out = bank
            .handle_msg(req_msg(0, blk(2), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(2), Payload::Unblock), &mut stats)
            .unwrap();
        let _out = bank
            .handle_msg(req_msg(1, blk(2), Payload::Gets), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(2),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert!(matches!(out[0].payload, Payload::Data { .. }));
        bank.handle_msg(req_msg(1, blk(2), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(2)), Some(DirState::Shared(0b11)));
        // Core 2 GETX: both sharers invalidated.
        let out = bank
            .handle_msg(req_msg(2, blk(2), Payload::Getx), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|m| matches!(m.payload, Payload::Inv)));
        let out0 = bank
            .handle_msg(req_msg(0, blk(2), Payload::InvAck), &mut stats)
            .unwrap();
        assert!(out0.is_empty());
        let out1 = bank
            .handle_msg(req_msg(1, blk(2), Payload::InvAck), &mut stats)
            .unwrap();
        assert_eq!(out1.len(), 1);
        let (_, grant) = data_of(&out1[0]);
        assert_eq!(grant, Grant::Modified);
        assert_eq!(bank.dir_state(blk(2)), Some(DirState::Owned(2)));
    }

    #[test]
    fn upgrade_from_sole_sharer_is_ack_only() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(3), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(3), Payload::Unblock), &mut stats)
            .unwrap();
        // Downgrade to Shared via a second reader + PutS to make core 0 a
        // sole *shared* holder.
        let _out = bank
            .handle_msg(req_msg(1, blk(3), Payload::Gets), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(3),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        bank.handle_msg(req_msg(1, blk(3), Payload::Unblock), &mut stats)
            .unwrap();
        bank.handle_msg(req_msg(1, blk(3), Payload::PutS), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(3)), Some(DirState::Shared(0b01)));
        let out = bank
            .handle_msg(req_msg(0, blk(3), Payload::Upgrade), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::UpgAck));
        assert_eq!(bank.dir_state(blk(3)), Some(DirState::Owned(0)));
    }

    #[test]
    fn upgrade_from_nonsharer_converts_to_getx() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        // Core 0 owns the block exclusively.
        let out = bank
            .handle_msg(req_msg(0, blk(4), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(4), Payload::Unblock), &mut stats)
            .unwrap();
        // Core 1 sends an UPGRADE while not a sharer (lost a race):
        // directory must treat it as GETX and pull data from the owner.
        let out = bank
            .handle_msg(req_msg(1, blk(4), Payload::Upgrade), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::FwdGetx));
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(4),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::Dropped,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        let (_, grant) = data_of(&out[0]);
        assert_eq!(grant, Grant::Modified);
        assert_eq!(bank.dir_state(blk(4)), Some(DirState::Owned(1)));
    }

    #[test]
    fn requests_queue_behind_busy_block() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(5), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        // Transaction not yet unblocked: core 1's GETS must queue.
        let out = bank
            .handle_msg(req_msg(1, blk(5), Payload::Gets), &mut stats)
            .unwrap();
        assert!(out.is_empty(), "queued request produced output");
        // Unblock releases it: owner forward goes out.
        let out = bank
            .handle_msg(req_msg(0, blk(5), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::FwdGets));
    }

    #[test]
    fn putm_from_owner_updates_l2() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(6), Payload::Getx), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(6), Payload::Unblock), &mut stats)
            .unwrap();
        let mut data = BlockData::zeroed();
        data.write_word(0, 8, 0xFEED);
        let out = bank
            .handle_msg(req_msg(0, blk(6), Payload::PutM { data }), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::WbAck));
        assert_eq!(bank.dir_state(blk(6)), Some(DirState::Np));
        assert_eq!(bank.peek_block(blk(6)).unwrap().read_word(0, 8), 0xFEED);
    }

    #[test]
    fn stale_putm_is_acked_and_ignored() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(7), Payload::Getx), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(7), Payload::Unblock), &mut stats)
            .unwrap();
        // Ownership moves to core 1.
        let out = bank
            .handle_msg(req_msg(1, blk(7), Payload::Getx), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::FwdGetx));
        let mut fresh = BlockData::zeroed();
        fresh.write_word(0, 8, 1);
        bank.handle_msg(
            Msg {
                src: Endpoint::L1(0),
                dst: Endpoint::Dir(0),
                block: blk(7),
                payload: Payload::DataToDir {
                    data: fresh,
                    xfer: OwnerXfer::Dropped,
                },
                tag: WireTag::default(),
            },
            &mut stats,
        )
        .unwrap();
        bank.handle_msg(req_msg(1, blk(7), Payload::Unblock), &mut stats)
            .unwrap();
        // Core 0's stale PUTM (race loser) must be acked but not applied.
        let mut stale = BlockData::zeroed();
        stale.write_word(0, 8, 99);
        let out = bank
            .handle_msg(
                req_msg(0, blk(7), Payload::PutM { data: stale }),
                &mut stats,
            )
            .unwrap();
        assert!(matches!(out[0].payload, Payload::WbAck));
        assert_eq!(bank.dir_state(blk(7)), Some(DirState::Owned(1)));
        assert_eq!(bank.peek_block(blk(7)).unwrap().read_word(0, 8), 1);
        assert!(stats.coverage.dir_hits(DirRowId::PutMStale) > 0);
    }

    #[test]
    fn stale_pute_is_acked_and_ignored() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(8), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(8), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(8)), Some(DirState::Owned(0)));
        // Core 3 never owned the block: its PUTE is acked (the L1 waits
        // for the ack to clear its writeback buffer) but changes nothing.
        let out = bank
            .handle_msg(req_msg(3, blk(8), Payload::PutE), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::WbAck));
        assert_eq!(bank.dir_state(blk(8)), Some(DirState::Owned(0)));
        assert!(stats.coverage.dir_hits(DirRowId::PutEStale) > 0);
    }

    #[test]
    fn pute_clears_owner_and_acks() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(9), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(9), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(9)), Some(DirState::Owned(0)));
        // Clean exclusive eviction: ownership clears, data stays valid.
        let out = bank
            .handle_msg(req_msg(0, blk(9), Payload::PutE), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::WbAck));
        assert_eq!(bank.dir_state(blk(9)), Some(DirState::Np));
    }

    #[test]
    fn puts_from_last_sharer_returns_np() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(10), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(10), Payload::Unblock), &mut stats)
            .unwrap();
        // Demote to Shared via second reader, then both PUTS.
        let out = bank
            .handle_msg(req_msg(1, blk(10), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::FwdGets));
        bank.handle_msg(
            Msg {
                src: Endpoint::L1(0),
                dst: Endpoint::Dir(0),
                block: blk(10),
                payload: Payload::DataToDir {
                    data: BlockData::zeroed(),
                    xfer: OwnerXfer::ToShared,
                },
                tag: WireTag::default(),
            },
            &mut stats,
        )
        .unwrap();
        bank.handle_msg(req_msg(1, blk(10), Payload::Unblock), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(req_msg(0, blk(10), Payload::PutS), &mut stats)
            .unwrap();
        assert!(out.is_empty(), "PUTS is unacknowledged");
        assert_eq!(bank.dir_state(blk(10)), Some(DirState::Shared(0b10)));
        bank.handle_msg(req_msg(1, blk(10), Payload::PutS), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(10)), Some(DirState::Np));
    }

    #[test]
    fn stale_puts_from_nonsharer_is_ignored() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(11), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(11), Payload::Unblock), &mut stats)
            .unwrap();
        // Core 5 never held the block: its (stale) PUTS must not corrupt
        // the owner tracking.
        bank.handle_msg(req_msg(5, blk(11), Payload::PutS), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(11)), Some(DirState::Owned(0)));
        // PUTS for an absent block is also harmless.
        bank.handle_msg(req_msg(5, blk(999), Payload::PutS), &mut stats)
            .unwrap();
        assert_eq!(bank.dir_state(blk(999)), None);
    }

    #[test]
    fn queued_requests_service_in_fifo_order() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(12), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        // Two readers queue behind the busy block (no unblock yet).
        assert!(bank
            .handle_msg(req_msg(1, blk(12), Payload::Gets), &mut stats)
            .unwrap()
            .is_empty());
        assert!(bank
            .handle_msg(req_msg(2, blk(12), Payload::Gets), &mut stats)
            .unwrap()
            .is_empty());
        // Unblock: core 1's GETS is serviced first (FIFO).
        let out = bank
            .handle_msg(req_msg(0, blk(12), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::FwdGets));
        assert_eq!(out[0].dst, Endpoint::L1(0));
        // Complete it; core 2 is next.
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(12),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert_eq!(out[0].dst, Endpoint::L1(1));
        let out = bank
            .handle_msg(req_msg(1, blk(12), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1, "core 2's queued GETS proceeds");
        assert!(matches!(out[0].payload, Payload::Data { .. }));
        assert_eq!(out[0].dst, Endpoint::L1(2));
    }

    #[test]
    fn fill_stalls_when_every_way_is_pinned() {
        // 1 set x 2 ways: two in-flight fills pin both ways; a third
        // request must stall, then proceed once a way frees.
        let mut bank = DirBank::new(0, 1, 2, 1);
        let mut stats = Stats::default();
        // Fills for blocks 0 and 1 reserve the two ways (MemRead pending,
        // no MemData yet).
        let out0 = bank
            .handle_msg(req_msg(0, blk(0), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out0[0].payload, Payload::MemRead));
        let out1 = bank
            .handle_msg(req_msg(1, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out1[0].payload, Payload::MemRead));
        // Third request: both ways pinned -> no output, stalled.
        let out2 = bank
            .handle_msg(req_msg(2, blk(2), Payload::Gets), &mut stats)
            .unwrap();
        assert!(out2.is_empty(), "stalled fill must wait: {out2:?}");
        assert!(!bank.quiescent());
        // Block 0's fill completes and unblocks; the stalled fill retries
        // (recalling block 0, now owned by core 0).
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::Mem(0),
                    dst: Endpoint::Dir(0),
                    block: blk(0),
                    payload: Payload::MemData {
                        data: BlockData::zeroed(),
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert!(matches!(out[0].payload, Payload::Data { .. }));
        let out = bank
            .handle_msg(req_msg(0, blk(0), Payload::Unblock), &mut stats)
            .unwrap();
        // Retry: block 2 wants a way; block 0 (stable, Owned) is the
        // victim -> recall forward to core 0.
        assert!(
            out.iter()
                .any(|m| matches!(m.payload, Payload::FwdGetx) && m.block == blk(0)),
            "stalled request should retry via recall: {out:?}"
        );
        assert!(stats.coverage.dir_hits(DirRowId::FillStalled) > 0);
    }

    #[test]
    fn inclusion_recall_of_shared_victim() {
        // 1 set x 1 way forces a recall on the second distinct block.
        let mut bank = DirBank::new(0, 1, 1, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(0), Payload::Gets), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(0), Payload::Unblock), &mut stats)
            .unwrap();
        // Demote to shared so the recall is an INV sweep: second sharer.
        let _out = bank
            .handle_msg(req_msg(1, blk(0), Payload::Gets), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(0),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        bank.handle_msg(req_msg(1, blk(0), Payload::Unblock), &mut stats)
            .unwrap();
        // Block 1 maps to the same (only) set: recall of block 0 expected.
        let out = bank
            .handle_msg(req_msg(2, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|m| matches!(m.payload, Payload::Inv) && m.block == blk(0)));
        // Both sharers ack; the fill proceeds.
        let out0 = bank
            .handle_msg(req_msg(0, blk(0), Payload::InvAck), &mut stats)
            .unwrap();
        assert!(out0.is_empty());
        let out1 = bank
            .handle_msg(req_msg(1, blk(0), Payload::InvAck), &mut stats)
            .unwrap();
        let out = drive_mem(&mut bank, out1, &mut stats);
        assert_eq!(out.len(), 1);
        let (_, grant) = data_of(&out[0]);
        assert_eq!(grant, Grant::Exclusive);
        assert_eq!(stats.l2_recalls, 1);
        assert!(bank.dir_state(blk(0)).is_none(), "victim evicted");
    }

    #[test]
    fn inclusion_recall_of_owned_victim_writes_back() {
        let mut bank = DirBank::new(0, 1, 1, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(0), Payload::Getx), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(0), Payload::Unblock), &mut stats)
            .unwrap();
        // Block 1 forces recall of owned block 0.
        let out = bank
            .handle_msg(req_msg(1, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::FwdGetx) && out[0].block == blk(0));
        let mut dirty = BlockData::zeroed();
        dirty.write_word(8, 8, 0xAA);
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(0),
                    payload: Payload::DataToDir {
                        data: dirty,
                        xfer: OwnerXfer::Dropped,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        // Expect: MemWrite of victim + MemRead of block 1.
        let wrote_back = out.iter().any(|m| {
            matches!(m.payload, Payload::MemWrite { data } if data.read_word(8, 8) == 0xAA)
                && m.block == blk(0)
        });
        assert!(wrote_back, "dirty recall victim must be written back");
        assert!(out
            .iter()
            .any(|m| matches!(m.payload, Payload::MemRead) && m.block == blk(1)));
    }

    #[test]
    fn queued_request_on_recall_victim_refetches() {
        let mut bank = DirBank::new(0, 1, 1, 1);
        let mut stats = Stats::default();
        let out = bank
            .handle_msg(req_msg(0, blk(0), Payload::Getx), &mut stats)
            .unwrap();
        let _ = drive_mem(&mut bank, out, &mut stats);
        bank.handle_msg(req_msg(0, blk(0), Payload::Unblock), &mut stats)
            .unwrap();
        let out = bank
            .handle_msg(req_msg(1, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::FwdGetx));
        // While block 0 is being recalled, core 2 asks for it: queued.
        let out = bank
            .handle_msg(req_msg(2, blk(0), Payload::Gets), &mut stats)
            .unwrap();
        assert!(out.is_empty());
        // Owner answers the recall; block 1 fill begins, and block 0's
        // queued GETS is only serviceable after the set frees up again —
        // it lands in the stalled list until block 1's txn completes.
        let out = bank
            .handle_msg(
                Msg {
                    src: Endpoint::L1(0),
                    dst: Endpoint::Dir(0),
                    block: blk(0),
                    payload: Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::Dropped,
                    },
                    tag: WireTag::default(),
                },
                &mut stats,
            )
            .unwrap();
        let out = drive_mem(&mut bank, out, &mut stats);
        assert_eq!(out.len(), 1, "block 1 data grant");
        let out = bank
            .handle_msg(req_msg(1, blk(1), Payload::Unblock), &mut stats)
            .unwrap();
        // Now block 0's GETS retries: it recalls block 1... which has an
        // owner? No — block 1 was granted Exclusive to core 1, so recall
        // forwards to it.
        let fwd = out
            .iter()
            .find(|m| matches!(m.payload, Payload::FwdGetx))
            .expect("recall of block 1 to serve queued GETS of block 0");
        assert_eq!(fwd.block, blk(1));
    }

    #[test]
    fn mesif_fwd_nack_is_served_from_l2() {
        // The `fwd_nack_gets` race end-to-end at the directory: E owner
        // forwards to a second reader (who becomes F), a third reader's
        // FWD_GETS bounces off the F holder, and the directory serves
        // the requestor from L2, handing it the F designation.
        let mut bank = DirBank::with_base(0, 16, 4, 1, BaseProtocol::Mesif);
        let mut stats = Stats::default();
        // Core 0: cold GETS -> E.
        let out = bank
            .handle_msg(req_msg(0, blk(16), Payload::Gets), &mut stats)
            .unwrap();
        let out = drive_mem(&mut bank, out, &mut stats);
        assert_eq!(data_of(&out[0]).1, Grant::Exclusive);
        bank.handle_msg(req_msg(0, blk(16), Payload::Unblock), &mut stats)
            .unwrap();
        // Core 1: GETS forwards to the owner; the owner's data reply
        // grants core 1 the F designation.
        let out = bank
            .handle_msg(req_msg(1, blk(16), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::FwdGets));
        let out = bank
            .handle_msg(
                req_msg(
                    0,
                    blk(16),
                    Payload::DataToDir {
                        data: BlockData::zeroed(),
                        xfer: OwnerXfer::ToShared,
                    },
                ),
                &mut stats,
            )
            .unwrap();
        assert_eq!(data_of(&out[0]).1, Grant::Forward);
        bank.handle_msg(req_msg(1, blk(16), Payload::Unblock), &mut stats)
            .unwrap();
        assert_eq!(
            bank.dir_state(blk(16)),
            Some(DirState::Forward {
                fwd: 1,
                sharers: 0b1
            })
        );
        // Core 2: GETS forwards to the F holder... which bounces.
        let out = bank
            .handle_msg(req_msg(2, blk(16), Payload::Gets), &mut stats)
            .unwrap();
        assert!(matches!(out[0].payload, Payload::FwdGets));
        let l2_reads = stats.energy_events.l2_reads;
        let out = bank
            .handle_msg(req_msg(1, blk(16), Payload::FwdNack), &mut stats)
            .unwrap();
        assert_eq!(data_of(&out[0]).1, Grant::Forward, "served from L2");
        assert_eq!(stats.energy_events.l2_reads, l2_reads + 1);
        bank.handle_msg(req_msg(2, blk(16), Payload::Unblock), &mut stats)
            .unwrap();
        // The stale forwarder is dropped from the sharer set entirely;
        // its PUTS will be acked as stale.
        assert_eq!(
            bank.dir_state(blk(16)),
            Some(DirState::Forward {
                fwd: 2,
                sharers: 0b1
            })
        );
        assert_eq!(stats.coverage.dir[DirRowId::FwdNackGets as usize], 1);
    }

    #[test]
    fn mshr_capacity_exhaustion_is_a_typed_error_not_a_panic() {
        let mut bank = DirBank::new(0, 16, 4, 1);
        bank.force_mshr_capacity(1);
        let mut stats = Stats::default();
        // First GETS admits a transaction that stays in flight (memory
        // never answers, UNBLOCK never arrives), pinning the forced
        // single MSHR slot of set 1.
        bank.handle_msg(req_msg(0, blk(1), Payload::Gets), &mut stats)
            .unwrap();
        // A second transaction for a different block of the same set
        // (17 ≡ 1 mod 16 sets) must surface the capacity breach as a
        // typed protocol error.
        let err = bank
            .handle_msg(req_msg(1, blk(17), Payload::Gets), &mut stats)
            .expect_err("full MSHR set must be a ProtocolError");
        let text = err.to_string();
        assert!(
            text.contains("MSHR capacity exhausted"),
            "unexpected error text: {text}"
        );
    }
}
