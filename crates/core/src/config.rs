//! Machine configuration. The defaults reproduce the paper's Table 1.

use crate::scribe::ScribePolicy;

/// What a store-like access does when it reaches a block in `GI` but is
/// not approximately similar to the stale contents.
///
/// The paper is readable both ways: Fig. 3 shows a `Store` self-loop on
/// `GI` (all stores hit locally until the timeout — what the Fig. 12
/// microbenchmark's error curve requires), while §3.1 says a scribble
/// failing the d-check "falls back to the conventional coherence
/// mechanisms" (a GETX, ending the hidden window — which bounds how much
/// approximate data a window can capture). Both are implemented;
/// `Fallback` is the default, `Capture` reproduces Fig. 12's regime. The
/// `ablation_gi_policy` bench compares them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum GiStorePolicy {
    /// Failed scribbles issue a conventional GETX (§3.1 reading).
    #[default]
    Fallback,
    /// All store-like accesses hit in `GI` until the timeout (Fig. 3
    /// reading).
    Capture,
}

/// The write-invalidate protocol family the directory implements.
/// The paper builds Ghostwriter on MESI "without loss of generality"
/// (§3.2); the other variants demonstrate the claim that the
/// approximate states layer onto any invalidate protocol. Every family
/// is a row-set delta over the same declarative table
/// ([`crate::proto`]): MSI removes the Exclusive grant, MOESI/MOSI add
/// the dirty-sharing Owned state (the former owner keeps its dirty line
/// and the L2 fill is elided), and MESIF adds the clean Forward state
/// (one sharer is designated to answer future GETS from its clean
/// copy).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum BaseProtocol {
    /// MESI: sole readers receive Exclusive and upgrade to M silently.
    #[default]
    Mesi,
    /// MSI: readers always receive Shared.
    Msi,
    /// MOESI: MESI plus the Owned state — a forwarded owner keeps its
    /// dirty line in O and keeps supplying later readers, eliding the
    /// writeback to L2 until eviction.
    Moesi,
    /// MOSI: MOESI without the Exclusive grant.
    Mosi,
    /// MESIF: MESI plus the Forward state — the most recent reader of a
    /// shared block holds F and answers later GETS from its clean copy.
    Mesif,
}

impl BaseProtocol {
    /// Families that grant Exclusive to a sole reader (have an E state).
    pub const fn grant_exclusive(self) -> bool {
        matches!(
            self,
            BaseProtocol::Mesi | BaseProtocol::Moesi | BaseProtocol::Mesif
        )
    }

    /// Families with the dirty-sharing Owned state.
    pub const fn owned_state(self) -> bool {
        matches!(self, BaseProtocol::Moesi | BaseProtocol::Mosi)
    }

    /// Families with the clean-forwarding Forward state.
    pub const fn forward_state(self) -> bool {
        matches!(self, BaseProtocol::Mesif)
    }

    /// Canonical lower-case name (CLI / labels).
    pub const fn name(self) -> &'static str {
        match self {
            BaseProtocol::Mesi => "mesi",
            BaseProtocol::Msi => "msi",
            BaseProtocol::Moesi => "moesi",
            BaseProtocol::Mosi => "mosi",
            BaseProtocol::Mesif => "mesif",
        }
    }

    /// Every member of the family, in ladder order.
    pub const ALL: [BaseProtocol; 5] = [
        BaseProtocol::Mesi,
        BaseProtocol::Msi,
        BaseProtocol::Moesi,
        BaseProtocol::Mosi,
        BaseProtocol::Mesif,
    ];
}

/// Ghostwriter protocol options (paper Table 1 defaults).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GwConfig {
    /// Period of the per-controller timeout returning `GI` blocks to
    /// `I` (paper Table 1: 1024 cycles; Fig. 12 sweeps it).
    pub gi_timeout: u64,
    /// Comparator used by the scribe module.
    pub scribe: ScribePolicy,
    /// Ablation switch: allow `S → GS` transitions.
    pub enable_gs: bool,
    /// Ablation switch: allow `I → GI` transitions.
    pub enable_gi: bool,
    /// Behaviour of non-similar stores on `GI` blocks.
    pub gi_stores: GiStorePolicy,
    /// Optional runtime error bound (paper §3.5): after this many hidden
    /// approximate writes without a coherent resync, the next scribble
    /// is forced down the conventional path, publishing the block. This
    /// is the "light-weight dynamic scheme that monitors error during
    /// runtime" the paper points to for bounding worst-case divergence.
    pub max_hidden_writes: Option<u32>,
}

impl Default for GwConfig {
    fn default() -> Self {
        Self {
            gi_timeout: 1024,
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: true,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        }
    }
}

/// Which coherence protocol the L1s run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Protocol {
    /// Baseline write-invalidate directory protocol. Scribble
    /// instructions behave as conventional stores.
    Mesi,
    /// Ghostwriter: the baseline plus the approximate `GS`/`GI` states.
    Ghostwriter(GwConfig),
}

impl Protocol {
    /// The paper's Ghostwriter configuration (1024-cycle GI timeout,
    /// bit-wise scribe, both approximate states enabled).
    pub fn ghostwriter() -> Self {
        Protocol::Ghostwriter(GwConfig::default())
    }

    /// Ghostwriter with a non-default GI timeout (Fig. 12 sensitivity).
    pub fn ghostwriter_with_timeout(gi_timeout: u64) -> Self {
        Protocol::Ghostwriter(GwConfig {
            gi_timeout,
            ..GwConfig::default()
        })
    }

    /// Ghostwriter with the Fig. 3 `Capture` GI-store policy and the
    /// given timeout (the Fig. 12 microbenchmark regime).
    pub fn ghostwriter_capture(gi_timeout: u64) -> Self {
        Protocol::Ghostwriter(GwConfig {
            gi_timeout,
            gi_stores: GiStorePolicy::Capture,
            ..GwConfig::default()
        })
    }

    /// True for any Ghostwriter variant.
    pub fn is_ghostwriter(&self) -> bool {
        matches!(self, Protocol::Ghostwriter(_))
    }
}

/// Full machine configuration (paper Table 1 by default).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of cores (= tiles = L1s = L2 banks).
    pub cores: usize,
    /// Private L1 data cache capacity in kilobytes.
    pub l1_kb: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit / fill latency in cycles.
    pub l1_latency: u64,
    /// Capacity of each shared-L2 bank in kilobytes (one bank per core).
    pub l2_bank_kb: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 bank access latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles (DDR3-1600-class behind the
    /// controllers).
    pub dram_latency: u64,
    /// Per-hop router traversal latency.
    pub router_cycles: u64,
    /// Per-hop link traversal latency.
    pub link_cycles: u64,
    /// Coherence protocol (baseline vs Ghostwriter).
    pub protocol: Protocol,
    /// Protocol family of the underlying directory (MESI or MSI).
    pub base_protocol: BaseProtocol,
    /// Cost in cycles of the engine-level thread barrier (DESIGN.md §7.5:
    /// barriers are "magic" so they do not pollute coherence statistics).
    pub barrier_cost: u64,
    /// Record the Fig. 2 store value-similarity histogram (tiny overhead).
    pub collect_similarity: bool,
    /// Simulate OS context switches: every `period` cycles each core
    /// forfeits its approximate (GS/GI) blocks, as the paper's §3.5
    /// requires for descheduled threads ("the approximate data cannot be
    /// switched/migrated; the data updates are forfeited"). `None`
    /// (default) models pinned threads, as the paper's evaluation does.
    pub context_switch_period: Option<u64>,
    /// Model per-link serialization in the NoC: each directional mesh
    /// link carries one flit per `link_cycles`, so bursts queue behind
    /// each other. Off by default (contention-free latency, DESIGN.md
    /// §7.4); turning it on only sharpens Ghostwriter's advantage, since
    /// eliminated messages also stop congesting links.
    pub model_contention: bool,
}

impl Default for MachineConfig {
    /// Paper Table 1: 24 cores, 32 kB 2-way L1 (2 cycles), 128 kB/bank
    /// 8-way L2 (10 cycles), mesh with 1-cycle routers and links, MESI
    /// baseline.
    fn default() -> Self {
        Self {
            cores: 24,
            l1_kb: 32,
            l1_ways: 2,
            l1_latency: 2,
            l2_bank_kb: 128,
            l2_ways: 8,
            l2_latency: 10,
            dram_latency: 60,
            router_cycles: 1,
            link_cycles: 1,
            protocol: Protocol::Mesi,
            base_protocol: BaseProtocol::Mesi,
            barrier_cost: 100,
            collect_similarity: true,
            context_switch_period: None,
            model_contention: false,
        }
    }
}

impl MachineConfig {
    /// Paper Table 1 with the Ghostwriter protocol enabled.
    pub fn paper_ghostwriter() -> Self {
        Self {
            protocol: Protocol::ghostwriter(),
            ..Self::default()
        }
    }

    /// A small machine for tests: `cores` cores, smaller caches, same
    /// latencies. Keeps unit and property tests fast while exercising the
    /// same protocol paths (including L2 recalls, thanks to the small L2).
    pub fn small(cores: usize, protocol: Protocol) -> Self {
        Self {
            cores,
            l1_kb: 4,
            l1_ways: 2,
            l2_bank_kb: 16,
            l2_ways: 4,
            protocol,
            ..Self::default()
        }
    }

    /// [`MachineConfig::small`] on a non-default base protocol family.
    pub fn small_base(cores: usize, protocol: Protocol, base: BaseProtocol) -> Self {
        Self {
            base_protocol: base,
            ..Self::small(cores, protocol)
        }
    }

    /// Canonical configuration key for content-addressed result caching.
    ///
    /// Built from the derived `Debug` representation, which covers every
    /// field (including the nested protocol/scribe/timeout options), so
    /// adding a configuration knob automatically changes the key — a new
    /// knob can never silently alias cached results produced before it
    /// existed. The `cfgv1:` prefix versions the scheme itself.
    pub fn cache_key(&self) -> String {
        format!("cfgv1:{self:?}")
    }

    /// Validates internal consistency; called by the machine builder.
    pub fn validate(&self) {
        assert!(self.cores >= 1 && self.cores <= 64, "1..=64 cores");
        assert!(
            (self.l1_kb * 1024 / 64 / self.l1_ways).is_power_of_two(),
            "L1 sets must be a power of two"
        );
        assert!(
            (self.l2_bank_kb * 1024 / 64 / self.l2_ways).is_power_of_two(),
            "L2 sets must be a power of two"
        );
        if let Protocol::Ghostwriter(gw) = self.protocol {
            assert!(gw.gi_timeout > 0, "GI timeout must be positive");
            if let Some(bound) = gw.max_hidden_writes {
                assert!(bound > 0, "error bound must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_table1() {
        let c = MachineConfig::default();
        assert_eq!(c.cores, 24);
        assert_eq!(c.l1_kb, 32);
        assert_eq!(c.l1_ways, 2);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_bank_kb, 128);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.l2_latency, 10);
        assert_eq!(c.router_cycles, 1);
        assert_eq!(c.link_cycles, 1);
        assert_eq!(c.protocol, Protocol::Mesi);
        c.validate();
    }

    #[test]
    fn ghostwriter_default_timeout_is_1024() {
        match Protocol::ghostwriter() {
            Protocol::Ghostwriter(gw) => {
                assert_eq!(gw.gi_timeout, 1024);
                assert!(gw.enable_gs && gw.enable_gi);
                assert_eq!(gw.gi_stores, GiStorePolicy::Fallback);
                assert_eq!(gw.max_hidden_writes, None);
            }
            _ => unreachable!(),
        }
        assert!(Protocol::ghostwriter().is_ghostwriter());
        assert!(!Protocol::Mesi.is_ghostwriter());
    }

    #[test]
    fn small_config_validates() {
        MachineConfig::small(4, Protocol::ghostwriter()).validate();
        MachineConfig::small(1, Protocol::Mesi).validate();
    }

    #[test]
    #[should_panic(expected = "GI timeout")]
    fn zero_timeout_rejected() {
        MachineConfig::small(2, Protocol::ghostwriter_with_timeout(0)).validate();
    }

    #[test]
    fn cache_key_separates_every_knob() {
        let base = MachineConfig::small(4, Protocol::Mesi);
        let same = MachineConfig::small(4, Protocol::Mesi);
        assert_eq!(base.cache_key(), same.cache_key());
        let variants = [
            MachineConfig::small(5, Protocol::Mesi),
            MachineConfig::small(4, Protocol::ghostwriter()),
            MachineConfig::small(4, Protocol::ghostwriter_with_timeout(512)),
            MachineConfig::small(4, Protocol::ghostwriter_capture(1024)),
            MachineConfig {
                model_contention: true,
                ..MachineConfig::small(4, Protocol::Mesi)
            },
            MachineConfig {
                base_protocol: BaseProtocol::Msi,
                ..MachineConfig::small(4, Protocol::Mesi)
            },
            MachineConfig::small_base(4, Protocol::Mesi, BaseProtocol::Moesi),
            MachineConfig::small_base(4, Protocol::Mesi, BaseProtocol::Mosi),
            MachineConfig::small_base(4, Protocol::Mesi, BaseProtocol::Mesif),
        ];
        for v in &variants {
            assert_ne!(base.cache_key(), v.cache_key(), "{v:?}");
        }
        // The ladder members are pairwise distinct too.
        let keys: Vec<String> = BaseProtocol::ALL
            .iter()
            .map(|&b| MachineConfig::small_base(4, Protocol::Mesi, b).cache_key())
            .collect();
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn base_protocol_family_predicates() {
        use BaseProtocol::*;
        for b in BaseProtocol::ALL {
            assert_eq!(b.grant_exclusive(), matches!(b, Mesi | Moesi | Mesif));
            assert_eq!(b.owned_state(), matches!(b, Moesi | Mosi));
            assert_eq!(b.forward_state(), matches!(b, Mesif));
        }
        assert_eq!(Moesi.name(), "moesi");
        assert_eq!(Mesif.name(), "mesif");
    }
}
