//! Operations exchanged between workload threads and the engine.
//!
//! Workload code never sees these directly; it uses the typed
//! [`crate::ctx::ThreadCtx`] API, which encodes each call as one
//! [`ThreadOp`] step of the resumable workload state machine. Thread
//! completion is not an op: the engine observes it as
//! [`ghostwriter_sim::Step::Done`] when the workload future finishes.

/// Access flavour as issued by the thread. The engine demotes `Scribble`
/// to `Store` when the core is outside an approximate region or the
/// machine runs the MESI baseline — mirroring how the paper's compiler
/// only emits scribble instructions for annotated regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    Load,
    Store,
    Scribble,
}

/// One operation submitted by a simulated thread.
#[derive(Clone, Debug)]
pub enum ThreadOp {
    /// A memory access of `size` bytes at `addr` (`value` ignored for
    /// loads).
    Access {
        addr: u64,
        size: u8,
        kind: OpKind,
        value: u64,
    },
    /// Charge `cycles` of local compute time.
    Work(u64),
    /// Wait until every live thread reaches its barrier.
    Barrier,
    /// `setaprx d` — start an approximate region with the given
    /// d-distance (paper §3.1 `approx_begin` + `approx_dist`).
    ApproxBegin { d: u8 },
    /// `endaprx` — leave the approximate region (paper `approx_end`).
    ApproxEnd,
}

impl ThreadOp {
    /// Short name for diagnostics (wedged-thread reports and traces).
    pub fn name(&self) -> &'static str {
        match self {
            ThreadOp::Access {
                kind: OpKind::Load, ..
            } => "load",
            ThreadOp::Access {
                kind: OpKind::Store,
                ..
            } => "store",
            ThreadOp::Access {
                kind: OpKind::Scribble,
                ..
            } => "scribble",
            ThreadOp::Work(_) => "work",
            ThreadOp::Barrier => "barrier",
            ThreadOp::ApproxBegin { .. } => "approx_begin",
            ThreadOp::ApproxEnd => "approx_end",
        }
    }
}

/// Engine reply to a [`ThreadOp`]: the loaded value for loads, 0 for
/// everything else.
pub type ThreadReply = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_cover_every_variant() {
        let access = |kind| ThreadOp::Access {
            addr: 0,
            size: 4,
            kind,
            value: 0,
        };
        assert_eq!(access(OpKind::Load).name(), "load");
        assert_eq!(access(OpKind::Store).name(), "store");
        assert_eq!(access(OpKind::Scribble).name(), "scribble");
        assert_eq!(ThreadOp::Work(5).name(), "work");
        assert_eq!(ThreadOp::Barrier.name(), "barrier");
        assert_eq!(ThreadOp::ApproxBegin { d: 4 }.name(), "approx_begin");
        assert_eq!(ThreadOp::ApproxEnd.name(), "approx_end");
    }
}
