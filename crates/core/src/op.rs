//! Operations exchanged between workload threads and the engine.
//!
//! Workload code never sees these directly; it uses the typed
//! [`crate::ctx::ThreadCtx`] API, which encodes each call as one
//! [`ThreadOp`] rendezvous with the engine.

/// Access flavour as issued by the thread. The engine demotes `Scribble`
/// to `Store` when the core is outside an approximate region or the
/// machine runs the MESI baseline — mirroring how the paper's compiler
/// only emits scribble instructions for annotated regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    Load,
    Store,
    Scribble,
}

/// One operation submitted by a simulated thread.
#[derive(Clone, Debug)]
pub enum ThreadOp {
    /// A memory access of `size` bytes at `addr` (`value` ignored for
    /// loads).
    Access {
        addr: u64,
        size: u8,
        kind: OpKind,
        value: u64,
    },
    /// Charge `cycles` of local compute time.
    Work(u64),
    /// Wait until every live thread reaches its barrier.
    Barrier,
    /// `setaprx d` — start an approximate region with the given
    /// d-distance (paper §3.1 `approx_begin` + `approx_dist`).
    ApproxBegin { d: u8 },
    /// `endaprx` — leave the approximate region (paper `approx_end`).
    ApproxEnd,
    /// Thread completed; `panicked` carries the panic message if the
    /// workload closure unwound.
    Exit { panicked: Option<String> },
}

/// Engine reply to a [`ThreadOp`]: the loaded value for loads, 0 for
/// everything else.
pub type ThreadReply = u64;
