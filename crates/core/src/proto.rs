//! The declarative protocol core: one transition table for MESI+GS/GI.
//!
//! Both controllers (`l1`, `dir`) dispatch through this module: every
//! coherence transition they execute is a named *row* of the tables
//! below, declared once as `(state, event) → guard / micro-ops / next
//! state`. The controllers interpret the micro-ops with their existing
//! hand-tuned code, but each arm is gated through [`L1Cache`]'s /
//! [`DirBank`]'s row dispatch, which
//!
//! * bumps the per-row hit counter in [`Coverage`] (threaded through
//!   [`crate::stats::Stats`], reported by `gwcheck`/`gwbench`),
//! * returns a typed [`ProtocolError`] instead of aborting when an
//!   impossible `(state, event)` pair fires (the former `unreachable!()`
//!   arms are now [`Reach::Never`] rows), and
//! * refuses to fire a row deleted by a seeded checker mutation
//!   (`delete-row:<name>`), so the model checker can prove each row is
//!   load-bearing.
//!
//! Protocol variants are *table deltas*, not code forks: [`L1RowSet`] /
//! [`DirRowSet`] compute the live row subset from the configuration
//! (pure MESI removes every GS/GI row; MSI removes the E-grant row; the
//! `ablation_states` configs remove exactly the GS or GI entry rows),
//! and the controllers' guards consult that set instead of scattered
//! `if config` branches.
//!
//! [`L1Cache`]: crate::l1::L1Cache
//! [`DirBank`]: crate::dir::DirBank

use ghostwriter_mem::BlockAddr;

use crate::config::{BaseProtocol, GiStorePolicy};
use crate::l1::GwParams;

/// Bank homing: which L2 bank (or memory controller) a block maps to.
/// Low-order interleave across `banks`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Homing {
    banks: usize,
}

impl Homing {
    /// Homing over `banks` targets (`banks >= 1`).
    pub fn new(banks: usize) -> Self {
        assert!(banks >= 1, "homing needs at least one bank");
        Self { banks }
    }

    /// Home bank of `block`.
    pub fn home(self, block: BlockAddr) -> usize {
        (block.index() % self.banks as u64) as usize
    }

    /// Number of banks interleaved across.
    pub fn banks(self) -> usize {
        self.banks
    }
}

/// Which controller raised a [`ProtocolError`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Controller {
    L1 { core: usize },
    Dir { bank: usize },
}

impl std::fmt::Display for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Controller::L1 { core } => write!(f, "L1 core {core}"),
            Controller::Dir { bank } => write!(f, "directory bank {bank}"),
        }
    }
}

/// A typed protocol error: an `(state, event)` pair fired for which the
/// transition table has no row (a [`Reach::Never`] row, an internal
/// consistency breach, or a row deleted by a checker mutation).
///
/// These used to be `unreachable!()` aborts; they now propagate through
/// `core::harness` as `Violation::Protocol`, so `gwcheck` and the random
/// tester shrink and replay them like any other counterexample.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProtocolError {
    /// Where it fired.
    pub controller: Controller,
    /// The table row that fired, when the error corresponds to one
    /// (`None` for internal-consistency breaches outside the table).
    pub row: Option<&'static str>,
    /// Human-readable specifics (states, payloads, block).
    pub detail: String,
}

impl ProtocolError {
    /// Error for a named table row firing (a `Never` row or deleted row).
    pub fn row(controller: Controller, row: &'static str, detail: impl Into<String>) -> Self {
        Self {
            controller,
            row: Some(row),
            detail: detail.into(),
        }
    }

    /// Internal-consistency error with no table row.
    pub fn internal(controller: Controller, detail: impl Into<String>) -> Self {
        Self {
            controller,
            row: None,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.row {
            Some(row) => write!(
                f,
                "{}: no transition for row `{row}`: {}",
                self.controller, self.detail
            ),
            None => write!(f, "{}: {}", self.controller, self.detail),
        }
    }
}

/// How a table row is expected to be reached (drives the coverage gate
/// and the golden transition-coverage snapshot).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reach {
    /// Reached by the tier-1 `gwcheck` sweeps (exhaustive 2-core,
    /// 1-block, 2-ops-per-core, pool-sized caches).
    Check,
    /// Out of the tier-1 checker's reach — needs 3-op sequences, a
    /// third sharer, or evictions the pool-sized 2-op configs rule
    /// out — but reached by the `gwbench --smoke` workloads.
    Bench,
    /// Only driven by dedicated unit tests (e.g. the context-switch
    /// forfeit: no smoke experiment sets a context-switch period; or
    /// stale PUTE/PUTM races the smoke grids never lose).
    Unit,
    /// Intentionally unreachable: the protocol can never produce this
    /// `(state, event)` pair; firing it is a [`ProtocolError`].
    Never,
}

impl Reach {
    /// Lower-case label used in reports and the golden snapshot.
    pub fn label(self) -> &'static str {
        match self {
            Reach::Check => "check",
            Reach::Bench => "bench",
            Reach::Unit => "unit",
            Reach::Never => "never",
        }
    }
}

/// One micro-op of a row's action list. The controllers interpret these
/// with their existing code; the list is the declarative spec rendered
/// into `docs/protocol-table.md`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MicroOp {
    /// Send a protocol message of the named wire kind.
    Send(&'static str),
    /// Complete the outstanding core access (reply to the core).
    Reply,
    /// Allocate a way for the block (may fire an eviction row first).
    AllocWay,
    /// Remove the line/entry from the cache.
    EvictWay,
    /// Update the pLRU replacement state.
    Touch,
    /// Run the scribe d-distance comparator against the resident word.
    ScribeCompare,
    /// Write the access value into the line.
    WriteWord,
    /// Install block data into the line.
    FillLine,
    /// Move the evicted line into the writeback buffer.
    BufferWb,
    /// Release the writeback-buffer entry.
    ReleaseWb,
    /// Increment the hidden-writes budget (§3.5 error bound).
    HiddenWrite,
    /// Reset the hidden-writes budget (coherent resync).
    ResetBudget,
    /// Update the directory entry as described.
    SetDir(&'static str),
    /// Account one invalidation acknowledgement.
    CollectAck,
    /// Bump the named statistics counter.
    Stat(&'static str),
    /// Raise a [`ProtocolError`] (the row is an error row).
    Error,
}

impl MicroOp {
    fn render(self) -> String {
        match self {
            MicroOp::Send(p) => format!("send {p}"),
            MicroOp::Reply => "reply".into(),
            MicroOp::AllocWay => "alloc way".into(),
            MicroOp::EvictWay => "evict way".into(),
            MicroOp::Touch => "touch pLRU".into(),
            MicroOp::ScribeCompare => "scribe compare".into(),
            MicroOp::WriteWord => "write word".into(),
            MicroOp::FillLine => "fill line".into(),
            MicroOp::BufferWb => "buffer wb".into(),
            MicroOp::ReleaseWb => "release wb".into(),
            MicroOp::HiddenWrite => "hidden++".into(),
            MicroOp::ResetBudget => "hidden=0".into(),
            MicroOp::SetDir(d) => format!("dir:={d}"),
            MicroOp::CollectAck => "collect ack".into(),
            MicroOp::Stat(s) => format!("stat {s}"),
            MicroOp::Error => "protocol error".into(),
        }
    }
}

macro_rules! rows {
    (
        $(#[$attr:meta])*
        $id:ident, $row:ident, $rows_const:ident, $count:ident;
        $( $variant:ident : $name:literal =
            { $state:literal, $event:literal, $guard:literal, $next:literal,
              [$($op:expr),* $(,)?], $reach:ident } ),+ $(,)?
    ) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        #[repr(usize)]
        pub enum $id {
            $( $variant ),+
        }

        impl $id {
            /// Number of rows in this controller's table.
            pub const COUNT: usize = $count;

            /// Stable row name (CLI, docs, golden snapshot).
            pub fn name(self) -> &'static str {
                $rows_const[self as usize].name
            }

            /// The table row for this id.
            pub fn row(self) -> &'static $row {
                &$rows_const[self as usize]
            }

            /// Every row id, in table order.
            pub fn all() -> impl Iterator<Item = $id> {
                $rows_const.iter().map(|r| r.id)
            }

            /// Looks a row up by its stable name.
            pub fn by_name(name: &str) -> Option<$id> {
                $rows_const.iter().find(|r| r.name == name).map(|r| r.id)
            }
        }

        const $count: usize = [$( $id::$variant ),+].len();

        /// The controller's transition table, indexed by row id.
        pub static $rows_const: [$row; $count] = [
            $( $row {
                id: $id::$variant,
                name: $name,
                state: $state,
                event: $event,
                guard: $guard,
                next: $next,
                ops: &[$($op),*],
                reach: Reach::$reach,
            } ),+
        ];
    };
}

/// One row of the L1 transition table.
#[derive(Debug)]
pub struct L1Row {
    pub id: L1RowId,
    /// Stable name (used by `delete-row:<name>` and the docs).
    pub name: &'static str,
    /// Source state (as rendered; `*` = any, `-` = no line).
    pub state: &'static str,
    /// Decoded event: a `CoreReq` kind or a `Msg` payload.
    pub event: &'static str,
    /// Guard condition (`-` = unconditional).
    pub guard: &'static str,
    /// Next state (`=` means unchanged).
    pub next: &'static str,
    /// Declarative micro-op list the controller interprets.
    pub ops: &'static [MicroOp],
    pub reach: Reach,
}

use MicroOp::*;

rows! {
    /// Row ids of the L1 controller table ([`L1_ROWS`]).
    L1RowId, L1Row, L1_ROWS, L1_ROW_COUNT;

    // -- demand accesses: no tag present ------------------------------
    MissLoad: "miss_load" =
        { "-", "Load", "-", "IS_D",
          [AllocWay, Stat("l1_load_misses"), Send("GETS")], Check },
    MissStore: "miss_store" =
        { "-", "Store|Scribble", "-", "IM_AD",
          [AllocWay, Stat("l1_store_misses"), Send("GETX")], Check },

    // -- demand accesses: tag present ---------------------------------
    LoadHit: "load_hit" =
        { "S|E|M|GS", "Load", "-", "=",
          [Stat("l1_load_hits"), Touch, Reply], Check },
    LoadHitGi: "load_hit_gi" =
        { "GI", "Load", "-", "=",
          [Stat("gi_load_hits"), Touch, Reply], Bench },
    LoadHitOwned: "load_hit_o" =
        { "O", "Load", "-", "=",
          [Stat("l1_load_hits"), Touch, Reply], Check },
    LoadHitFwd: "load_hit_f" =
        { "F", "Load", "-", "=",
          [Stat("l1_load_hits"), Touch, Reply], Check },
    LoadInvalid: "load_invalid_tag" =
        { "I", "Load", "-", "IS_D",
          [Stat("l1_load_misses"), Send("GETS")], Check },
    LoadTransient: "load_in_transient" =
        { "IS_D|IM_AD|SM_A", "Load", "-", "-",
          [Error], Never },
    StoreHitM: "store_hit_m" =
        { "M", "Store|Scribble", "-", "=",
          [Stat("l1_store_hits"), Touch, WriteWord, Reply], Check },
    StoreHitE: "store_hit_e" =
        { "E", "Store|Scribble", "-", "M",
          [Stat("l1_store_hits"), Touch, WriteWord, Reply], Check },
    GiStoreHit: "gi_store_hit" =
        { "GI", "Store|Scribble", "budget ok; store, Capture, or scribe pass", "=",
          [ScribeCompare, Stat("gi_store_hits"), Touch, WriteWord, HiddenWrite, Reply],
          Bench },
    GiBreak: "gi_scribble_break" =
        { "GI", "Scribble", "Fallback; budget hit or scribe fail", "IM_AD",
          [ScribeCompare, Stat("gi_breaks"), Send("GETX")], Bench },
    EnterGs: "scribble_s_to_gs" =
        { "S", "Scribble", "GS enabled; budget ok; scribe pass", "GS",
          [ScribeCompare, Stat("serviced_by_gs"), Touch, WriteWord, HiddenWrite, Reply],
          Check },
    UpgradeFromS: "store_s_upgrade" =
        { "S", "Store|Scribble", "conventional path", "SM_A",
          [Stat("upgrades_from_s"), Send("UPGRADE")], Check },
    GsHit: "gs_hit" =
        { "GS", "Scribble", "budget ok; scribe pass", "=",
          [ScribeCompare, Stat("gs_hits"), Touch, WriteWord, HiddenWrite, Reply], Bench },
    UpgradeFromGs: "store_gs_upgrade" =
        { "GS", "Store|Scribble", "conventional path (publish)", "SM_A",
          [Stat("upgrades_from_gs"), Send("UPGRADE")], Bench },
    UpgradeFromO: "store_o_upgrade" =
        { "O", "Store|Scribble", "conventional path (publish dirty line)", "SM_A",
          [Stat("upgrades_from_s"), Send("UPGRADE")], Check },
    UpgradeFromF: "store_f_upgrade" =
        { "F", "Store|Scribble", "conventional path", "SM_A",
          [Stat("upgrades_from_s"), Send("UPGRADE")], Check },
    EnterGi: "scribble_i_to_gi" =
        { "I", "Scribble", "GI enabled; budget ok; scribe pass", "GI",
          [ScribeCompare, Stat("serviced_by_gi"), Touch, WriteWord, HiddenWrite, Reply],
          Check },
    StoreInvalid: "store_invalid_tag" =
        { "I", "Store|Scribble", "conventional path", "IM_AD",
          [Stat("stores_on_invalid_tagged"), Send("GETX")], Check },
    StoreTransient: "store_in_transient" =
        { "IS_D|IM_AD|SM_A", "Store|Scribble", "-", "-",
          [Error], Never },

    // -- victim eviction ----------------------------------------------
    EvictM: "evict_m" =
        { "M", "evict", "-", "-",
          [EvictWay, BufferWb, Send("PUTM")], Bench },
    EvictE: "evict_e" =
        { "E", "evict", "-", "-",
          [EvictWay, BufferWb, Send("PUTE")], Bench },
    EvictO: "evict_o" =
        { "O", "evict", "-", "-",
          [EvictWay, BufferWb, Send("PUTM")], Bench },
    EvictF: "evict_f" =
        { "F", "evict", "-", "-",
          [EvictWay, Send("PUTS")], Bench },
    EvictS: "evict_s" =
        { "S", "evict", "-", "-",
          [EvictWay, Send("PUTS")], Bench },
    EvictGs: "evict_gs" =
        { "GS", "evict", "-", "-",
          [EvictWay, Stat("approx_evictions"), Send("PUTS")], Bench },
    EvictGi: "evict_gi" =
        { "GI", "evict", "-", "-",
          [EvictWay, Stat("approx_evictions")], Unit },
    EvictI: "evict_i" =
        { "I", "evict", "-", "-",
          [EvictWay], Bench },
    EvictTransient: "evict_transient" =
        { "IS_D|IM_AD|SM_A", "evict", "-", "-",
          [Error], Never },

    // -- protocol messages --------------------------------------------
    InvSharer: "inv_s" =
        { "S", "INV", "-", "I",
          [Send("INV_ACK")], Check },
    InvFwd: "inv_f" =
        { "F", "INV", "-", "I",
          [Send("INV_ACK")], Check },
    InvOwned: "inv_owned" =
        { "O", "INV", "upgrading sharer holds identical bytes", "I",
          [Send("INV_ACK")], Check },
    InvGs: "inv_gs" =
        { "GS", "INV", "-", "I",
          [Stat("gs_invalidations"), Send("INV_ACK")], Check },
    InvSmA: "inv_sm_a" =
        { "SM_A", "INV", "-", "IM_AD",
          [Send("INV_ACK")], Check },
    InvStale: "inv_stale" =
        { "IS_D|IM_AD|I|-", "INV", "-", "=",
          [Send("INV_ACK")], Bench },
    InvWriter: "inv_writer" =
        { "E|M|GI", "INV", "-", "-",
          [Error], Never },
    FwdGetsOwner: "fwd_gets_owner" =
        { "E|M", "FWD_GETS", "-", "S",
          [Send("DATA_TO_DIR")], Check },
    FwdGetsMToO: "fwd_gets_m_to_o" =
        { "M", "FWD_GETS", "MOESI/MOSI: retain dirty ownership", "O",
          [Send("DATA_TO_DIR")], Check },
    FwdGetsO: "fwd_gets_o" =
        { "O", "FWD_GETS", "-", "=",
          [Send("DATA_TO_DIR")], Bench },
    FwdGetsF: "fwd_gets_f" =
        { "F", "FWD_GETS", "clean forward; requestor becomes F", "S",
          [Send("DATA_TO_DIR")], Bench },
    FwdGetsUpgrading: "fwd_gets_upgrading" =
        { "SM_A", "FWD_GETS", "O/F forward target upgrading; data still valid", "=",
          [Send("DATA_TO_DIR")], Unit },
    FwdGetsStale: "fwd_gets_stale" =
        { "I|transient|-", "FWD_GETS", "MESIF: F copy already evicted (PUTS in flight)", "=",
          [Send("FWD_NACK")], Unit },
    FwdGetxOwner: "fwd_getx_owner" =
        { "E|M|O", "FWD_GETX", "-", "I",
          [Send("DATA_TO_DIR")], Check },
    FwdGetxUpgrading: "fwd_getx_upgrading" =
        { "SM_A", "FWD_GETX", "MOESI/MOSI: O holder upgrading; supply data, retry as GETX", "IM_AD",
          [Send("DATA_TO_DIR")], Unit },
    FwdWbRace: "fwd_wb_race" =
        { "wb buffer", "FWD_GETS|FWD_GETX", "PUT in flight", "=",
          [Send("DATA_TO_DIR")], Unit },
    FwdBadState: "fwd_bad_state" =
        { "*", "FWD_GETS|FWD_GETX", "no owned line, no wb entry", "-",
          [Error], Never },
    DataFillShared: "data_fill_s" =
        { "IS_D", "DATA(S)", "-", "S",
          [ResetBudget, FillLine, Touch, Send("UNBLOCK"), Reply], Check },
    DataFillExcl: "data_fill_e" =
        { "IS_D", "DATA(E)", "-", "E",
          [ResetBudget, FillLine, Touch, Send("UNBLOCK"), Reply], Check },
    DataFillFwd: "data_fill_f" =
        { "IS_D", "DATA(F)", "-", "F",
          [ResetBudget, FillLine, Touch, Send("UNBLOCK"), Reply], Check },
    DataFillM: "data_fill_m" =
        { "IM_AD|SM_A", "DATA(M)", "-", "M",
          [ResetBudget, FillLine, WriteWord, Touch, Send("UNBLOCK"), Reply], Check },
    DataUnexpected: "data_unexpected" =
        { "*", "DATA", "no pending miss, wrong block or wrong grant", "-",
          [Error], Never },
    UpgAck: "upg_ack" =
        { "SM_A", "UPG_ACK", "-", "M",
          [ResetBudget, WriteWord, Touch, Send("UNBLOCK"), Reply], Check },
    UpgAckUnexpected: "upg_ack_unexpected" =
        { "*", "UPG_ACK", "no pending upgrade", "-",
          [Error], Never },
    WbAck: "wb_ack" =
        { "wb buffer", "WB_ACK", "-", "-",
          [ReleaseWb], Bench },
    WbAckUnexpected: "wb_ack_unexpected" =
        { "-", "WB_ACK", "no buffer entry", "-",
          [Error], Never },
    L1UnexpectedMsg: "l1_unexpected_msg" =
        { "*", "other payload", "-", "-",
          [Error], Never },

    // -- asynchronous sweeps ------------------------------------------
    CtxForfeitGs: "ctx_switch_gs" =
        { "GS", "context switch", "-", "I",
          [ResetBudget, Stat("approx_evictions"), Send("PUTS")], Unit },
    CtxForfeitGi: "ctx_switch_gi" =
        { "GI", "context switch", "-", "I",
          [ResetBudget, Stat("approx_evictions")], Unit },
    GiTimeout: "gi_timeout" =
        { "GI", "timeout", "-", "I",
          [Stat("gi_timeouts")], Check },

    // -- fault recovery (live only with `RecoveryParams`) --------------
    RetryResend: "retry_resend" =
        { "IS_D|IM_AD|SM_A", "retry timeout", "recovery on, retries left", "=",
          [Stat("retries"), Send("GETS|GETX|UPGRADE")], Unit },
    RetryExhausted: "retry_exhausted" =
        { "IS_D|IM_AD|SM_A", "retry timeout", "recovery on, budget spent", "-",
          [Error], Unit },
    StaleReplyDrop: "stale_reply_drop" =
        { "*", "DATA|UPG_ACK", "recovery on: stale, duplicate or unmatched sequence", "=",
          [Stat("stale_replies")], Unit },
    CorruptFillAbsorb: "corrupt_fill_absorb" =
        { "IM_AD", "DATA(tainted)", "recovery on, approximate store: absorb as error", "GS/GI path",
          [Stat("corrupt_fills_absorbed")], Unit },
    CorruptFillRefetch: "corrupt_fill_refetch" =
        { "IS_D|IM_AD|SM_A", "DATA(tainted)", "recovery on, precise data: quarantine + refetch", "=",
          [Stat("corrupt_fills_refetched"), Send("GETS|GETX|UPGRADE")], Unit },
    ReqNacked: "req_nacked" =
        { "IS_D|IM_AD|SM_A", "FWD_NACK(dir)", "recovery on: conflict NACK, resend", "=",
          [Stat("nack_retries"), Send("GETS|GETX|UPGRADE")], Unit },
}

/// One row of the directory transition table.
#[derive(Debug)]
pub struct DirRow {
    pub id: DirRowId,
    pub name: &'static str,
    /// Directory state (`NP`, `S(x)`, `O(x)`) or transaction phase.
    pub state: &'static str,
    pub event: &'static str,
    pub guard: &'static str,
    pub next: &'static str,
    pub ops: &'static [MicroOp],
    pub reach: Reach,
}

rows! {
    /// Row ids of the directory controller table ([`DIR_ROWS`]).
    DirRowId, DirRow, DIR_ROWS, DIR_ROW_COUNT;

    // -- request admission --------------------------------------------
    ReqQueued: "req_queued" =
        { "busy", "GETS|GETX|UPGRADE|PUT*", "transaction in flight", "=",
          [], Check },

    // -- eviction notices ---------------------------------------------
    PutSSharer: "puts_sharer" =
        { "S(s)", "PUTS", "requestor is a sharer", "S(s-req) or NP",
          [SetDir("drop sharer")], Bench },
    PutSOwnedSharer: "puts_owned_sharer" =
        { "O+S(o;s)", "PUTS", "requestor is a sharer", "O+S(o;s-req)",
          [SetDir("drop sharer")], Bench },
    PutSFwd: "puts_fwd" =
        { "F(f;s)", "PUTS", "requestor is the forwarder", "S(s) or NP",
          [SetDir("demote: no forwarder")], Bench },
    PutSFwdSharer: "puts_fwd_sharer" =
        { "F(f;s)", "PUTS", "requestor is a plain sharer", "F(f;s-req)",
          [SetDir("drop sharer")], Bench },
    PutSStale: "puts_stale" =
        { "*", "PUTS", "requestor not a sharer", "=",
          [], Bench },
    PutEOwner: "pute_owner" =
        { "O(req)", "PUTE", "-", "NP",
          [SetDir("NP"), Send("WB_ACK")], Bench },
    PutEStale: "pute_stale" =
        { "*", "PUTE", "requestor not owner", "=",
          [Send("WB_ACK")], Unit },
    PutMOwner: "putm_owner" =
        { "O(req)", "PUTM", "-", "NP",
          [Stat("l2_writes"), FillLine, SetDir("NP"), Send("WB_ACK")], Bench },
    PutMOwnedShared: "putm_owned_shared" =
        { "O+S(o;s)", "PUTM", "requestor is the dirty owner", "S(s) or NP",
          [Stat("l2_writes"), FillLine, SetDir("S(s)"), Send("WB_ACK")], Bench },
    PutMStale: "putm_stale" =
        { "*", "PUTM", "requestor not owner", "=",
          [Send("WB_ACK")], Unit },

    // -- requests on a resident line ----------------------------------
    GetsNpExclusive: "gets_np_grant_e" =
        { "NP", "GETS", "MESI (E grant enabled)", "O(req)",
          [Stat("l2_reads"), SetDir("O(req)"), Send("DATA(E)")], Check },
    GetsNpShared: "gets_np_grant_s" =
        { "NP", "GETS", "MSI (E grant disabled)", "S{req}",
          [Stat("l2_reads"), SetDir("S{req}"), Send("DATA(S)")], Check },
    GetsShared: "gets_shared" =
        { "S(s)", "GETS", "-", "S(s+req)",
          [Stat("l2_reads"), SetDir("add sharer"), Send("DATA(S)")], Check },
    GetsOwned: "gets_owned" =
        { "O(o)", "GETS", "-", "await owner data",
          [Send("FWD_GETS")], Check },
    GetsOwnedShared: "gets_owned_shared" =
        { "O+S(o;s)", "GETS", "-", "await owner data",
          [Send("FWD_GETS")], Bench },
    GetsFwd: "gets_fwd" =
        { "F(f;s)", "GETS", "-", "await forward data",
          [Send("FWD_GETS")], Bench },
    GetxNp: "getx_np" =
        { "NP", "GETX", "-", "O(req)",
          [Stat("l2_reads"), SetDir("O(req)"), Send("DATA(M)")], Check },
    GetxShared: "getx_shared" =
        { "S(s)", "GETX", "-", "collect acks",
          [Send("INV")], Check },
    GetxOwned: "getx_owned" =
        { "O(o)", "GETX", "-", "await owner data",
          [Send("FWD_GETX")], Check },
    GetxOwnedShared: "getx_owned_shared" =
        { "O+S(o;s)", "GETX", "-", "collect acks, then owner data",
          [Send("INV")], Bench },
    GetxFwd: "getx_fwd" =
        { "F(f;s)", "GETX", "all copies clean; L2 valid", "collect acks",
          [Send("INV")], Bench },
    UpgradeSole: "upgrade_sole" =
        { "S({req})", "UPGRADE", "no other sharer", "O(req)",
          [SetDir("O(req)"), Send("UPG_ACK")], Check },
    UpgradeInv: "upgrade_inv" =
        { "S(s)", "UPGRADE", "other sharers", "collect acks",
          [Send("INV")], Check },
    UpgradeOwner: "upgrade_owner" =
        { "O+S(o;s)", "UPGRADE", "requestor is the dirty owner", "collect acks or O(req)",
          [Send("INV")], Check },
    UpgradeOwnedSharer: "upgrade_owned_sharer" =
        { "O+S(o;s)", "UPGRADE", "requestor is a sharer (bytes match owner's)", "collect acks",
          [Send("INV")], Check },
    UpgradeFwd: "upgrade_fwd" =
        { "F(f;s)", "UPGRADE", "requestor holds a copy", "collect acks or O(req)",
          [Send("INV")], Check },
    UpgradeRace: "upgrade_race" =
        { "*", "UPGRADE", "requestor no longer a sharer", "as GETX",
          [], Check },

    // -- L2 fill / recall ---------------------------------------------
    FillFree: "fill_free" =
        { "absent", "GETS|GETX|UPGRADE", "free way", "fetching",
          [AllocWay, Send("MEM_READ")], Check },
    FillEvictNp: "fill_evict_np" =
        { "absent", "GETS|GETX|UPGRADE", "victim NP", "fetching",
          [EvictWay, AllocWay, Send("MEM_READ")], Bench },
    FillRecallShared: "fill_recall_shared" =
        { "absent", "GETS|GETX|UPGRADE", "victim S(s)", "recalling",
          [Stat("l2_recalls"), Send("INV")], Bench },
    FillRecallOwned: "fill_recall_owned" =
        { "absent", "GETS|GETX|UPGRADE", "victim O(o)", "recalling",
          [Stat("l2_recalls"), Send("FWD_GETX")], Bench },
    FillRecallOwnedShared: "fill_recall_owned_shared" =
        { "absent", "GETS|GETX|UPGRADE", "victim O+S(o;s)", "recalling",
          [Stat("l2_recalls"), Send("FWD_GETX"), Send("INV")], Bench },
    FillRecallFwd: "fill_recall_fwd" =
        { "absent", "GETS|GETX|UPGRADE", "victim F(f;s)", "recalling",
          [Stat("l2_recalls"), Send("INV")], Bench },
    FillStalled: "fill_stalled" =
        { "absent", "GETS|GETX|UPGRADE", "every way busy", "stalled",
          [], Unit },

    // -- invalidation acks --------------------------------------------
    RecallInvAck: "recall_inv_ack" =
        { "recalling", "INV_ACK", "victim of a recall", "fetching when last",
          [CollectAck], Bench },
    InvAckPending: "inv_ack_pending" =
        { "collect acks", "INV_ACK", "more acks outstanding", "=",
          [CollectAck], Bench },
    InvAckLastGetx: "inv_ack_last_getx" =
        { "collect acks", "INV_ACK", "last ack, GETX", "O(req)",
          [CollectAck, Stat("l2_reads"), SetDir("O(req)"), Send("DATA(M)")], Check },
    InvAckLastUpgrade: "inv_ack_last_upgrade" =
        { "collect acks", "INV_ACK", "last ack, UPGRADE", "O(req)",
          [CollectAck, SetDir("O(req)"), Send("UPG_ACK")], Check },
    InvAckLastGetxOwned: "inv_ack_last_getx_owned" =
        { "collect acks", "INV_ACK", "last ack, GETX, dirty owner outstanding", "await owner data",
          [CollectAck, Send("FWD_GETX")], Bench },
    InvAckGets: "inv_ack_gets" =
        { "collect acks", "INV_ACK", "GETS transaction", "-",
          [Error], Never },

    // -- owner data ---------------------------------------------------
    RecallOwnerData: "recall_owner_data" =
        { "recalling", "DATA_TO_DIR", "victim of a recall", "fetching",
          [Stat("l2_writes"), FillLine, EvictWay, Send("MEM_WRITE"), Send("MEM_READ")],
          Bench },
    OwnerDataGets: "owner_data_gets" =
        { "await owner data", "DATA_TO_DIR", "GETS transaction", "S(o+req) or S{req}",
          [Stat("l2_writes"), FillLine, SetDir("sharers"), Send("DATA(S)")], Check },
    OwnerDataGetsOwned: "owner_data_gets_owned" =
        { "await owner data", "DATA_TO_DIR", "owner retained dirty ownership (MOESI/MOSI)",
          "O+S(o;s+req)",
          [Stat("wb_elisions"), SetDir("add sharer"), Send("DATA(S)")], Check },
    OwnerDataGetsFwd: "owner_data_gets_f" =
        { "await owner data", "DATA_TO_DIR", "MESIF: requestor becomes the forwarder",
          "F(req;o+s)",
          [Stat("l2_writes"), FillLine, SetDir("F(req)"), Send("DATA(F)")], Check },
    OwnerDataGetx: "owner_data_getx" =
        { "await owner data", "DATA_TO_DIR", "GETX transaction", "O(req)",
          [Stat("l2_writes"), FillLine, SetDir("O(req)"), Send("DATA(M)")], Check },
    FwdDataGets: "fwd_data_gets" =
        { "await forward data", "DATA_TO_DIR", "clean forward from F; no L2 fill",
          "F(req;f+s)",
          [Stat("clean_forwards"), SetDir("F(req)"), Send("DATA(F)")], Bench },
    FwdNackGets: "fwd_nack_gets" =
        { "await forward data", "FWD_NACK", "forwarder already evicted; serve from L2",
          "F(req;s)",
          [Stat("l2_reads"), SetDir("F(req)"), Send("DATA(F)")], Unit },
    OwnerDataUpgrade: "owner_data_upgrade" =
        { "await owner data", "DATA_TO_DIR", "UPGRADE transaction", "-",
          [Error], Never },

    // -- memory fill / completion -------------------------------------
    MemData: "mem_data" =
        { "fetching", "MEM_DATA", "-", "act on filled line",
          [Stat("l2_writes"), FillLine], Check },
    Unblock: "unblock" =
        { "completing", "UNBLOCK", "-", "idle (release queue)",
          [], Check },

    // -- stray traffic ------------------------------------------------
    StrayInvAck: "stray_inv_ack" =
        { "idle", "INV_ACK", "no transaction", "-",
          [Error], Never },
    StrayOwnerData: "stray_owner_data" =
        { "idle", "DATA_TO_DIR", "no transaction", "-",
          [Error], Never },
    StrayMemData: "stray_mem_data" =
        { "idle", "MEM_DATA", "no transaction", "-",
          [Error], Never },
    StrayUnblock: "stray_unblock" =
        { "idle", "UNBLOCK", "no transaction", "-",
          [Error], Never },
    DirUnexpectedMsg: "dir_unexpected_msg" =
        { "*", "other payload", "-", "-",
          [Error], Never },

    // -- fault recovery (live only with `RecoveryParams`) --------------
    DupReqDrop: "dup_req_drop" =
        { "*", "GETS|GETX|UPGRADE", "recovery on: sequence already completed, queued or in flight", "=",
          [Stat("dup_reqs_dropped")], Unit },
    DupReqResend: "dup_req_resend" =
        { "completing", "GETS|GETX|UPGRADE", "recovery on: duplicate of the granted request", "=",
          [Stat("grant_resends"), Send("DATA|UPG_ACK")], Unit },
    NackConflict: "nack_conflict" =
        { "absent", "GETS|GETX|UPGRADE", "recovery on + nack_on_conflict: every way busy", "=",
          [Stat("conflict_nacks"), Send("FWD_NACK")], Unit },
    CorruptMemRefetch: "corrupt_mem_refetch" =
        { "fetching", "MEM_DATA(tainted)", "recovery on: discard tainted fill, refetch", "fetching",
          [Stat("corrupt_mem_refetches"), Send("MEM_READ")], Unit },
}

/// A row from either controller's table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowRef {
    L1(L1RowId),
    Dir(DirRowId),
}

impl RowRef {
    /// Stable row name.
    pub fn name(self) -> &'static str {
        match self {
            RowRef::L1(id) => id.name(),
            RowRef::Dir(id) => id.name(),
        }
    }
}

/// Looks a row up by name across both tables (row names are unique).
pub fn find_row(name: &str) -> Option<RowRef> {
    L1RowId::by_name(name)
        .map(RowRef::L1)
        .or_else(|| DirRowId::by_name(name).map(RowRef::Dir))
}

/// The live subset of L1 table rows under one configuration. Protocol
/// variants and ablations are deltas on this set: the controller's
/// guards ask `contains` instead of reading config flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct L1RowSet(u128);

impl L1RowSet {
    const fn full() -> Self {
        Self((1u128 << L1_ROW_COUNT) - 1)
    }

    const fn without(self, id: L1RowId) -> Self {
        Self(self.0 & !(1u128 << id as usize))
    }

    /// True if `id` is a live row under this configuration.
    pub fn contains(self, id: L1RowId) -> bool {
        self.0 & (1u128 << id as usize) != 0
    }

    /// Rows removed relative to `other` (for the docs/tests).
    pub fn removed_from(self, other: Self) -> Vec<L1RowId> {
        L1RowId::all()
            .filter(|&id| other.contains(id) && !self.contains(id))
            .collect()
    }

    /// The full Ghostwriter table minus the GS/GI entry rows the
    /// configuration disables: `enable_gs = false` removes exactly
    /// [`L1RowId::EnterGs`], `enable_gi = false` removes exactly
    /// [`L1RowId::EnterGi`], and `GiStorePolicy::Capture` removes
    /// [`L1RowId::GiBreak`] (a failing scribble is captured like a
    /// store instead of breaking the hidden window).
    pub fn ghostwriter(gw: &GwParams) -> Self {
        let mut set = Self::full();
        if !gw.enable_gs {
            set = set.without(L1RowId::EnterGs);
        }
        if !gw.enable_gi {
            set = set.without(L1RowId::EnterGi);
        }
        if gw.gi_stores == GiStorePolicy::Capture {
            set = set.without(L1RowId::GiBreak);
        }
        set
    }

    /// Removes every GS/GI row. With no scribe configured the GS/GI
    /// states can never be entered, so all rows touching them are dead.
    const fn without_gw_rows(self) -> Self {
        self.without(L1RowId::EnterGs)
            .without(L1RowId::EnterGi)
            .without(L1RowId::GiStoreHit)
            .without(L1RowId::GiBreak)
            .without(L1RowId::GsHit)
            .without(L1RowId::UpgradeFromGs)
            .without(L1RowId::LoadHitGi)
            .without(L1RowId::InvGs)
            .without(L1RowId::EvictGs)
            .without(L1RowId::EvictGi)
            .without(L1RowId::CtxForfeitGs)
            .without(L1RowId::CtxForfeitGi)
            .without(L1RowId::GiTimeout)
    }

    /// Removes every Owned-state row (families without `O`).
    const fn without_owned_rows(self) -> Self {
        self.without(L1RowId::LoadHitOwned)
            .without(L1RowId::UpgradeFromO)
            .without(L1RowId::EvictO)
            .without(L1RowId::InvOwned)
            .without(L1RowId::FwdGetsMToO)
            .without(L1RowId::FwdGetsO)
            .without(L1RowId::FwdGetxUpgrading)
    }

    /// Removes every Forward-state row (families without `F`).
    const fn without_forward_rows(self) -> Self {
        self.without(L1RowId::LoadHitFwd)
            .without(L1RowId::UpgradeFromF)
            .without(L1RowId::EvictF)
            .without(L1RowId::InvFwd)
            .without(L1RowId::FwdGetsF)
            .without(L1RowId::FwdGetsStale)
            .without(L1RowId::DataFillFwd)
    }

    /// Applies the base-protocol family delta: O rows live only under
    /// MOESI/MOSI, F rows only under MESIF, and the upgrading-forward-
    /// target row only where a forward can target an O/F holder.
    const fn for_base(self, base: BaseProtocol) -> Self {
        let mut set = self;
        if !base.owned_state() {
            set = set.without_owned_rows();
        }
        if !base.forward_state() {
            set = set.without_forward_rows();
        }
        if !base.owned_state() && !base.forward_state() {
            set = set.without(L1RowId::FwdGetsUpgrading);
        }
        set
    }

    /// The pure-MESI baseline: the Ghostwriter table minus every GS/GI,
    /// Owned and Forward row.
    pub const fn mesi_baseline() -> Self {
        Self::full().without_gw_rows().for_base(BaseProtocol::Mesi)
    }

    /// MOESI/MOSI: the baseline plus the Owned-state rows. (The two
    /// share an L1 row set — the E-grant delta lives in the directory.)
    pub const fn moesi() -> Self {
        Self::full().without_gw_rows().for_base(BaseProtocol::Moesi)
    }

    /// MOSI: identical to [`L1RowSet::moesi`] on the L1 side.
    pub const fn mosi() -> Self {
        Self::full().without_gw_rows().for_base(BaseProtocol::Mosi)
    }

    /// MESIF: the baseline plus the Forward-state rows.
    pub const fn mesif() -> Self {
        Self::full().without_gw_rows().for_base(BaseProtocol::Mesif)
    }

    /// Row set for a base family plus an optional Ghostwriter overlay —
    /// GW-over-MOESI (etc.) is a configuration, not a fork: the GS/GI
    /// delta and the family delta compose.
    pub fn for_config(base: BaseProtocol, gw: Option<&GwParams>) -> Self {
        match gw {
            Some(gw) => Self::ghostwriter(gw).for_base(base),
            None => Self::full().without_gw_rows().for_base(base),
        }
    }
}

/// The live subset of directory table rows under one configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DirRowSet(u64);

impl DirRowSet {
    const fn full() -> Self {
        Self((1u64 << DIR_ROW_COUNT) - 1)
    }

    const fn without(self, id: DirRowId) -> Self {
        Self(self.0 & !(1u64 << id as usize))
    }

    /// True if `id` is a live row under this configuration.
    pub fn contains(self, id: DirRowId) -> bool {
        self.0 & (1u64 << id as usize) != 0
    }

    /// Rows removed relative to `other` (for the docs/tests).
    pub fn removed_from(self, other: Self) -> Vec<DirRowId> {
        DirRowId::all()
            .filter(|&id| other.contains(id) && !self.contains(id))
            .collect()
    }

    /// Removes the Owned-state (`O+S`) rows.
    const fn without_owned_rows(self) -> Self {
        self.without(DirRowId::PutSOwnedSharer)
            .without(DirRowId::PutMOwnedShared)
            .without(DirRowId::GetsOwnedShared)
            .without(DirRowId::GetxOwnedShared)
            .without(DirRowId::UpgradeOwner)
            .without(DirRowId::UpgradeOwnedSharer)
            .without(DirRowId::FillRecallOwnedShared)
            .without(DirRowId::InvAckLastGetxOwned)
            .without(DirRowId::OwnerDataGetsOwned)
    }

    /// Removes the Forward-state (`F`) rows.
    const fn without_forward_rows(self) -> Self {
        self.without(DirRowId::PutSFwd)
            .without(DirRowId::PutSFwdSharer)
            .without(DirRowId::GetsFwd)
            .without(DirRowId::GetxFwd)
            .without(DirRowId::UpgradeFwd)
            .without(DirRowId::FillRecallFwd)
            .without(DirRowId::OwnerDataGetsFwd)
            .without(DirRowId::FwdDataGets)
            .without(DirRowId::FwdNackGets)
    }

    /// MESI directory: exclusive grants enabled, no O/F rows.
    pub const fn mesi() -> Self {
        Self::for_config(BaseProtocol::Mesi)
    }

    /// MSI directory: the MESI table with the E-grant row swapped for
    /// the shared-grant row.
    pub const fn msi() -> Self {
        Self::for_config(BaseProtocol::Msi)
    }

    /// MOESI directory: MESI plus the Owned-state rows.
    pub const fn moesi() -> Self {
        Self::for_config(BaseProtocol::Moesi)
    }

    /// MOSI directory: MOESI with the E-grant row swapped for the
    /// shared-grant row.
    pub const fn mosi() -> Self {
        Self::for_config(BaseProtocol::Mosi)
    }

    /// MESIF directory: MESI plus the Forward-state rows.
    pub const fn mesif() -> Self {
        Self::for_config(BaseProtocol::Mesif)
    }

    /// Row set for a base-protocol family: the grant row follows
    /// `grant_exclusive`, the O rows `owned_state`, the F rows
    /// `forward_state`.
    pub const fn for_config(base: BaseProtocol) -> Self {
        let mut set = Self::full();
        if base.grant_exclusive() {
            set = set.without(DirRowId::GetsNpShared);
        } else {
            set = set.without(DirRowId::GetsNpExclusive);
        }
        if !base.owned_state() {
            set = set.without_owned_rows();
        }
        if !base.forward_state() {
            set = set.without_forward_rows();
        }
        set
    }
}

/// Per-row hit counters for both controllers. Threaded through
/// [`crate::stats::Stats`] (but deliberately *not* serialized into
/// records: coverage is observability, not a result).
#[derive(Clone, Debug)]
pub struct Coverage {
    pub l1: [u64; L1_ROW_COUNT],
    pub dir: [u64; DIR_ROW_COUNT],
}

impl Default for Coverage {
    fn default() -> Self {
        Self {
            l1: [0; L1_ROW_COUNT],
            dir: [0; DIR_ROW_COUNT],
        }
    }
}

impl Coverage {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &Coverage) {
        for (a, b) in self.l1.iter_mut().zip(&other.l1) {
            *a += b;
        }
        for (a, b) in self.dir.iter_mut().zip(&other.dir) {
            *a += b;
        }
    }

    /// True if no row has fired at all (e.g. stats deserialized from a
    /// cached record, which never carries coverage).
    pub fn is_empty(&self) -> bool {
        self.l1.iter().all(|&c| c == 0) && self.dir.iter().all(|&c| c == 0)
    }

    /// Hit count of an L1 row.
    pub fn l1_hits(&self, id: L1RowId) -> u64 {
        self.l1[id as usize]
    }

    /// Hit count of a directory row.
    pub fn dir_hits(&self, id: DirRowId) -> u64 {
        self.dir[id as usize]
    }

    /// `(reached, total)` over the L1 table, excluding `Never` rows.
    pub fn l1_reached(&self) -> (usize, usize) {
        let live: Vec<_> = L1RowId::all()
            .filter(|id| id.row().reach != Reach::Never)
            .collect();
        let hit = live.iter().filter(|&&id| self.l1_hits(id) > 0).count();
        (hit, live.len())
    }

    /// `(reached, total)` over the directory table, excluding `Never`
    /// rows.
    pub fn dir_reached(&self) -> (usize, usize) {
        let live: Vec<_> = DirRowId::all()
            .filter(|id| id.row().reach != Reach::Never)
            .collect();
        let hit = live.iter().filter(|&&id| self.dir_hits(id) > 0).count();
        (hit, live.len())
    }

    /// Names of unreached rows of the given reach class.
    pub fn unreached(&self, class: Reach) -> Vec<&'static str> {
        let mut out = Vec::new();
        for id in L1RowId::all() {
            if id.row().reach == class && self.l1_hits(id) == 0 {
                out.push(id.name());
            }
        }
        for id in DirRowId::all() {
            if id.row().reach == class && self.dir_hits(id) == 0 {
                out.push(id.name());
            }
        }
        out
    }

    /// Names of `Never` rows that *did* fire (each firing also raised a
    /// [`ProtocolError`], so this should stay empty).
    pub fn fired_never_rows(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for id in L1RowId::all() {
            if id.row().reach == Reach::Never && self.l1_hits(id) > 0 {
                out.push(id.name());
            }
        }
        for id in DirRowId::all() {
            if id.row().reach == Reach::Never && self.dir_hits(id) > 0 {
                out.push(id.name());
            }
        }
        out
    }
}

fn render_ops(ops: &[MicroOp]) -> String {
    if ops.is_empty() {
        return "-".into();
    }
    ops.iter()
        .map(|op| op.render())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the full transition table as the committed
/// `docs/protocol-table.md` (one section per controller). A test fails
/// when the committed rendering is stale.
pub fn render_markdown() -> String {
    let mut out = String::new();
    out.push_str("# The MESI+GS/GI transition table\n\n");
    out.push_str(
        "*Generated from `crates/core/src/proto.rs` — do not edit by hand.\n\
         Regenerate with `UPDATE_GOLDEN=1 cargo test -p ghostwriter-core \
         --test protocol_table_doc`.*\n\n",
    );
    out.push_str(
        "Every transition either controller executes is a named row of\n\
         these tables. Reach classes: **check** rows are exercised by the\n\
         tier-1 `gwcheck` sweeps, **bench** rows by the `gwbench --smoke`\n\
         workloads (they need 3-op sequences, a third sharer, or\n\
         evictions the pool-sized 2-op checker configs rule out),\n\
         **unit** rows only by dedicated unit tests,\n\
         and **never** rows are intentionally unreachable — firing one\n\
         raises a typed `ProtocolError` that the model checker reports as\n\
         a shrunk counterexample.\n\n",
    );

    out.push_str("## L1 controller\n\n");
    out.push_str("| Row | State | Event | Guard | Actions | Next | Reach |\n");
    out.push_str("|-----|-------|-------|-------|---------|------|-------|\n");
    for row in &L1_ROWS {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} |\n",
            row.name,
            row.state,
            row.event,
            row.guard,
            render_ops(row.ops),
            row.next,
            row.reach.label()
        ));
    }

    out.push_str("\n## Directory controller\n\n");
    out.push_str("| Row | State | Event | Guard | Actions | Next | Reach |\n");
    out.push_str("|-----|-------|-------|-------|---------|------|-------|\n");
    for row in &DIR_ROWS {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} |\n",
            row.name,
            row.state,
            row.event,
            row.guard,
            render_ops(row.ops),
            row.next,
            row.reach.label()
        ));
    }

    out.push_str("\n## Configuration deltas\n\n");
    out.push_str(
        "Protocol variants are row-subset deltas over the full Ghostwriter\n\
         table, computed by `L1RowSet`/`DirRowSet`:\n\n",
    );
    let full = L1RowSet::full();
    let delta = |set: L1RowSet| {
        let removed = set.removed_from(full);
        if removed.is_empty() {
            "(none)".to_string()
        } else {
            removed
                .iter()
                .map(|id| format!("`{}`", id.name()))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    let gw = GwParams {
        scribe: crate::scribe::ScribePolicy::Bitwise,
        enable_gs: true,
        enable_gi: true,
        gi_stores: GiStorePolicy::Fallback,
        max_hidden_writes: None,
    };
    out.push_str(&format!(
        "- pure MESI baseline removes {}\n",
        delta(L1RowSet::mesi_baseline())
    ));
    out.push_str(&format!(
        "- `ablation_states` GS-only removes {}\n",
        delta(L1RowSet::ghostwriter(&GwParams {
            enable_gi: false,
            ..gw
        }))
    ));
    out.push_str(&format!(
        "- `ablation_states` GI-only removes {}\n",
        delta(L1RowSet::ghostwriter(&GwParams {
            enable_gs: false,
            ..gw
        }))
    ));
    out.push_str(&format!(
        "- `GiStorePolicy::Capture` removes {}\n",
        delta(L1RowSet::ghostwriter(&GwParams {
            gi_stores: GiStorePolicy::Capture,
            ..gw
        }))
    ));
    out.push_str(
        "- the MSI directory removes `gets_np_grant_e`; the MESI directory \
         removes `gets_np_grant_s`\n",
    );
    out.push_str(
        "\nThe base-protocol family (MESI/MSI/MOESI/MOSI/MESIF) is a second,\n\
         orthogonal delta axis — `L1RowSet::for_config(base, gw)` composes\n\
         both, so Ghostwriter-over-MOESI is a configuration, not a fork:\n\n",
    );
    let mesi_l1 = L1RowSet::mesi_baseline();
    let added_l1 = |set: L1RowSet| {
        let added = mesi_l1.removed_from(set);
        added
            .iter()
            .map(|id| format!("`{}`", id.name()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let added_dir = |set: DirRowSet| {
        let added = DirRowSet::mesi().removed_from(set);
        added
            .iter()
            .filter(|&&id| id != DirRowId::GetsNpShared)
            .map(|id| format!("`{}`", id.name()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!(
        "- MOESI/MOSI add the Owned-state L1 rows {} and directory rows {}\n",
        added_l1(L1RowSet::moesi()),
        added_dir(DirRowSet::moesi()),
    ));
    out.push_str(&format!(
        "- MESIF adds the Forward-state L1 rows {} and directory rows {}\n",
        added_l1(L1RowSet::mesif()),
        added_dir(DirRowSet::mesif()),
    ));
    out.push_str(
        "- `fwd_gets_upgrading` is live for any family whose forward target \
         (an `O` or `F` holder) can be mid-upgrade (`SM_A`)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scribe::ScribePolicy;

    fn gw() -> GwParams {
        GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: true,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        }
    }

    #[test]
    fn row_tables_are_indexed_by_id() {
        for (i, row) in L1_ROWS.iter().enumerate() {
            assert_eq!(row.id as usize, i, "L1 row {} out of order", row.name);
        }
        for (i, row) in DIR_ROWS.iter().enumerate() {
            assert_eq!(row.id as usize, i, "dir row {} out of order", row.name);
        }
    }

    #[test]
    fn row_names_are_unique_across_both_tables() {
        let mut seen = std::collections::HashSet::new();
        for row in &L1_ROWS {
            assert!(seen.insert(row.name), "duplicate row name {}", row.name);
        }
        for row in &DIR_ROWS {
            assert!(seen.insert(row.name), "duplicate row name {}", row.name);
        }
    }

    #[test]
    fn find_row_resolves_both_controllers() {
        assert_eq!(find_row("gi_timeout"), Some(RowRef::L1(L1RowId::GiTimeout)));
        assert_eq!(find_row("unblock"), Some(RowRef::Dir(DirRowId::Unblock)));
        assert_eq!(find_row("no_such_row"), None);
    }

    #[test]
    fn error_rows_are_exactly_the_never_class() {
        // `retry_exhausted` is the one deliberate exception: it raises a
        // typed error (the transaction is lost), yet it is *reachable* —
        // unit tests drive it by injecting more drops than the retry
        // budget covers. It must not be classed `Never` (the byzantine
        // sweep would then assert it can't fire) nor lose its `Error` op.
        for row in &L1_ROWS {
            if row.id == L1RowId::RetryExhausted {
                assert!(row.ops.contains(&MicroOp::Error));
                assert_eq!(row.reach, Reach::Unit);
                continue;
            }
            assert_eq!(
                row.ops.contains(&MicroOp::Error),
                row.reach == Reach::Never,
                "L1 row {}: Error micro-op must match Reach::Never",
                row.name
            );
        }
        for row in &DIR_ROWS {
            assert_eq!(
                row.ops.contains(&MicroOp::Error),
                row.reach == Reach::Never,
                "dir row {}: Error micro-op must match Reach::Never",
                row.name
            );
        }
    }

    #[test]
    fn ablations_are_single_row_deltas() {
        let full = L1RowSet::ghostwriter(&gw());
        assert_eq!(
            L1RowSet::ghostwriter(&GwParams {
                enable_gs: false,
                ..gw()
            })
            .removed_from(full),
            vec![L1RowId::EnterGs]
        );
        assert_eq!(
            L1RowSet::ghostwriter(&GwParams {
                enable_gi: false,
                ..gw()
            })
            .removed_from(full),
            vec![L1RowId::EnterGi]
        );
        assert_eq!(
            L1RowSet::ghostwriter(&GwParams {
                gi_stores: GiStorePolicy::Capture,
                ..gw()
            })
            .removed_from(full),
            vec![L1RowId::GiBreak]
        );
    }

    #[test]
    fn mesi_baseline_removes_every_gs_gi_row() {
        let set = L1RowSet::mesi_baseline();
        for id in L1RowId::all() {
            let row = id.row();
            let touches_gw = row.state.contains('G') || row.name.contains("gi_");
            if touches_gw && !row.state.contains('|') {
                assert!(
                    !set.contains(id),
                    "MESI baseline must remove GS/GI row {}",
                    row.name
                );
            }
        }
        // MESI keeps every conventional row.
        assert!(set.contains(L1RowId::LoadHit));
        assert!(set.contains(L1RowId::StoreHitE));
        assert!(set.contains(L1RowId::UpgradeFromS));
    }

    #[test]
    fn dir_row_sets_differ_only_in_the_grant_row() {
        assert!(DirRowSet::mesi().contains(DirRowId::GetsNpExclusive));
        assert!(!DirRowSet::mesi().contains(DirRowId::GetsNpShared));
        assert!(DirRowSet::msi().contains(DirRowId::GetsNpShared));
        assert!(!DirRowSet::msi().contains(DirRowId::GetsNpExclusive));
        // MESI vs MSI and MOESI vs MOSI differ *only* in the grant rows.
        for (e, s) in [
            (DirRowSet::mesi(), DirRowSet::msi()),
            (DirRowSet::moesi(), DirRowSet::mosi()),
        ] {
            assert_eq!(s.removed_from(e), vec![DirRowId::GetsNpExclusive]);
            assert_eq!(e.removed_from(s), vec![DirRowId::GetsNpShared]);
        }
    }

    #[test]
    fn family_row_sets_are_owned_forward_deltas() {
        let o_l1 = [
            L1RowId::LoadHitOwned,
            L1RowId::UpgradeFromO,
            L1RowId::EvictO,
            L1RowId::InvOwned,
            L1RowId::FwdGetsMToO,
            L1RowId::FwdGetsO,
            L1RowId::FwdGetxUpgrading,
        ];
        let f_l1 = [
            L1RowId::LoadHitFwd,
            L1RowId::UpgradeFromF,
            L1RowId::EvictF,
            L1RowId::InvFwd,
            L1RowId::FwdGetsF,
            L1RowId::FwdGetsStale,
            L1RowId::DataFillFwd,
        ];
        for id in o_l1 {
            assert!(L1RowSet::moesi().contains(id), "{id:?}");
            assert!(L1RowSet::mosi().contains(id), "{id:?}");
            assert!(!L1RowSet::mesi_baseline().contains(id), "{id:?}");
            assert!(!L1RowSet::mesif().contains(id), "{id:?}");
        }
        for id in f_l1 {
            assert!(L1RowSet::mesif().contains(id), "{id:?}");
            assert!(!L1RowSet::moesi().contains(id), "{id:?}");
            assert!(!L1RowSet::mesi_baseline().contains(id), "{id:?}");
        }
        // The upgrading-forward-target row is live wherever a forward
        // can land on an upgrading O/F holder.
        for base in [BaseProtocol::Moesi, BaseProtocol::Mosi, BaseProtocol::Mesif] {
            assert!(L1RowSet::for_config(base, None).contains(L1RowId::FwdGetsUpgrading));
        }
        for base in [BaseProtocol::Mesi, BaseProtocol::Msi] {
            assert!(!L1RowSet::for_config(base, None).contains(L1RowId::FwdGetsUpgrading));
        }
        // GW-over-MOESI composes: the union of the GS/GI rows and the
        // Owned rows, with no cross-talk between the two deltas.
        let gw_moesi = L1RowSet::for_config(BaseProtocol::Moesi, Some(&gw()));
        assert!(gw_moesi.contains(L1RowId::EnterGs));
        assert!(gw_moesi.contains(L1RowId::FwdGetsMToO));
        assert!(!gw_moesi.contains(L1RowId::DataFillFwd));
        let dir_o = [
            DirRowId::PutSOwnedSharer,
            DirRowId::PutMOwnedShared,
            DirRowId::GetsOwnedShared,
            DirRowId::GetxOwnedShared,
            DirRowId::UpgradeOwner,
            DirRowId::UpgradeOwnedSharer,
            DirRowId::FillRecallOwnedShared,
            DirRowId::InvAckLastGetxOwned,
            DirRowId::OwnerDataGetsOwned,
        ];
        for id in dir_o {
            assert!(DirRowSet::moesi().contains(id), "{id:?}");
            assert!(!DirRowSet::mesi().contains(id), "{id:?}");
            assert!(!DirRowSet::mesif().contains(id), "{id:?}");
        }
        assert!(DirRowSet::mesif().contains(DirRowId::FwdDataGets));
        assert!(!DirRowSet::moesi().contains(DirRowId::FwdDataGets));
    }

    #[test]
    fn homing_is_low_order_interleave() {
        let h = Homing::new(4);
        assert_eq!(h.banks(), 4);
        for i in 0..16u64 {
            let block = ghostwriter_mem::Addr(i * 64).block();
            assert_eq!(h.home(block), (block.index() % 4) as usize);
        }
    }

    #[test]
    fn coverage_merge_and_reports() {
        let mut a = Coverage::default();
        assert!(a.is_empty());
        let mut b = Coverage::default();
        b.l1[L1RowId::LoadHit as usize] = 2;
        b.dir[DirRowId::Unblock as usize] = 1;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.l1_hits(L1RowId::LoadHit), 4);
        assert_eq!(a.dir_hits(DirRowId::Unblock), 2);
        assert!(!a.is_empty());
        let (l1_hit, l1_total) = a.l1_reached();
        assert_eq!(l1_hit, 1);
        assert!(l1_total > 30);
        assert!(a.unreached(Reach::Check).contains(&"load_invalid_tag"));
        assert!(a.fired_never_rows().is_empty());
    }

    #[test]
    fn markdown_renders_every_row() {
        let md = render_markdown();
        for row in &L1_ROWS {
            assert!(md.contains(row.name), "docs missing L1 row {}", row.name);
        }
        for row in &DIR_ROWS {
            assert!(md.contains(row.name), "docs missing dir row {}", row.name);
        }
    }
}
