//! Shared protocol-exercising harness: the virtual network plus the
//! controller-stepping and invariant-checking machinery used by both the
//! random walker ([`crate::tester`]) and the bounded model checker
//! (`ghostwriter-check`).
//!
//! The full machine is timing-deterministic, so it only ever explores one
//! message interleaving per program. This harness instead drives the
//! *same* L1 and directory controllers through a virtual network whose
//! delivery order is chosen by the caller — randomly by the walker,
//! exhaustively by the checker — preserving only the per-(source,
//! destination) FIFO property the real NoC guarantees.
//!
//! A [`System`] owns the controllers, DRAM, in-flight messages and the
//! value-oracle bookkeeping. The caller decides *what happens next*
//! (issue an access, deliver a message, fire a GI timeout); the harness
//! applies it and reports invariant violations as [`Violation`] values
//! instead of panicking, so the checker can turn them into shrunk
//! counterexamples. A controller that reaches a `(state, event)` pair
//! with no transition-table row returns a typed
//! [`crate::proto::ProtocolError`], surfaced here as
//! [`Violation::Protocol`]; only caller-contract bugs still panic (and
//! are caught by the checker separately).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

use ghostwriter_mem::{Addr, BlockAddr, Dram};

use crate::config::{BaseProtocol, GiStorePolicy};
use crate::dir::{DirBank, DirState};
use crate::fault::{self, RecoveryParams};
use crate::l1::{home_bank, AccessKind, CoreReq, GwParams, L1Cache, L1Out, L1State};
use crate::msg::{CtlMsg, DataPool, Endpoint, Msg, Payload, WireTag};
use crate::proto::ProtocolError;
use crate::stats::Stats;

/// Static shape of a harness system.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of L1 caches / cores (also the number of L2 banks).
    pub cores: usize,
    /// Number of distinct blocks in the address pool.
    pub blocks: usize,
    /// L1 geometry (small to force evictions).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 geometry (small to force inclusion recalls).
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Ghostwriter parameters; `None` runs the precise base protocol.
    pub gw: Option<GwParams>,
    /// Base protocol family (MESI, MSI, MOESI, MOSI or MESIF) the GS/GI
    /// rows compose over.
    pub base: BaseProtocol,
    /// Transition-table row (by name) deleted for mutation testing:
    /// firing it becomes a [`Violation::Protocol`].
    pub disabled_row: Option<&'static str>,
    /// Protocol-level fault recovery (sequence tags, retries, duplicate
    /// suppression). `None` keeps the classic lossless-network model and
    /// leaves every fingerprint identical to a pre-recovery build.
    pub recovery: Option<RecoveryParams>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            blocks: 12,
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: 4,
            l2_ways: 2,
            gw: None,
            base: BaseProtocol::Mesi,
            disabled_row: None,
            recovery: None,
        }
    }
}

/// An access the caller can issue on a core. The harness owns address
/// assignment: every block has one 8-byte slot per core, each written
/// only by its owning core (single-writer-per-address, false sharing
/// across cores by construction) with an increasing sequence, which is
/// what makes the data-value oracle checkable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load `writer`'s slot of the block.
    Load { writer: usize },
    /// Store the next sequence number to the issuing core's own slot.
    Store,
    /// Scribble the next sequence number with bit-distance `d`.
    Scribble { d: u8 },
}

/// A detected protocol-invariant violation. `Display` gives the
/// human-readable description the tester panics with and the checker
/// prints under a counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// SWMR: more than one E/M copy of a block.
    MultipleWriters { block: usize, writers: usize },
    /// SWMR: an E/M copy coexists with S copies elsewhere.
    WriterWithSharers { block: usize, sharers: usize },
    /// Directory says Owned but the owner field disagrees with L1 state.
    OwnerMismatch {
        block: usize,
        dir_owner: usize,
        l1_owner: Option<usize>,
    },
    /// Directory sharer bitmap disagrees with actual L1 states.
    SharerMismatch { block: usize, dir: u64, actual: u64 },
    /// Directory says Np (or untracked) but L1 copies exist.
    UntrackedCopies {
        block: usize,
        sharers: u64,
        owner: Option<usize>,
    },
    /// An L1 line is stuck in a transient state at quiescence.
    TransientAtQuiescence {
        core: usize,
        block: usize,
        state: L1State,
    },
    /// A precise Shared copy differs from the L2's data at quiescence.
    SharedDiverges {
        core: usize,
        block: usize,
        word: usize,
    },
    /// A load observed a value the single writer never wrote.
    UnwrittenValue {
        core: usize,
        writer: usize,
        block: usize,
        value: u64,
    },
    /// A precise reader saw a single-writer slot go backwards.
    NonMonotoneRead {
        core: usize,
        writer: usize,
        block: usize,
        value: u64,
        prev: u64,
    },
    /// A directory bank still has live transactions at quiescence.
    BankBusyAtQuiescence { bank: usize },
    /// A core still has an outstanding access at quiescence.
    L1BusyAtQuiescence { core: usize },
    /// A writeback was never acknowledged.
    UnackedWriteback { core: usize },
    /// A GS/GI line exists on a block the program never scribbled (or in
    /// a configuration with Ghostwriter disabled) — approximate state
    /// leaked into precise data.
    ApproxLeak {
        core: usize,
        block: usize,
        state: L1State,
    },
    /// A load of a never-scribbled block was serviced by a GI line.
    GiServicedPreciseLoad { core: usize, block: usize },
    /// A line accumulated more hidden writes than the §3.5 bound allows.
    HiddenWritesOverBound {
        core: usize,
        block: usize,
        count: u32,
        bound: u32,
    },
    /// A scribble was serviced hidden although the scribe comparator
    /// rejects the value pair at the configured distance.
    ScribeBoundBypassed {
        core: usize,
        block: usize,
        old: u64,
        new: u64,
        d: u8,
    },
    /// A controller hit a `(state, event)` pair with no transition-table
    /// row — a missing or deleted row in `core::proto`.
    Protocol(ProtocolError),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MultipleWriters { block, writers } => {
                write!(f, "block {block}: {writers} writable (E/M) copies")
            }
            Violation::WriterWithSharers { block, sharers } => write!(
                f,
                "block {block}: writable copy coexists with {sharers} shared copies"
            ),
            Violation::OwnerMismatch {
                block,
                dir_owner,
                l1_owner,
            } => write!(
                f,
                "block {block}: directory owner {dir_owner} but L1 owner {l1_owner:?}"
            ),
            Violation::SharerMismatch { block, dir, actual } => write!(
                f,
                "block {block}: directory sharers {dir:#b} but actual {actual:#b}"
            ),
            Violation::UntrackedCopies {
                block,
                sharers,
                owner,
            } => write!(
                f,
                "block {block}: untracked copies (sharers {sharers:#b}, owner {owner:?})"
            ),
            Violation::TransientAtQuiescence { core, block, state } => {
                write!(
                    f,
                    "core {core} stuck in transient {state:?} on block {block}"
                )
            }
            Violation::SharedDiverges { core, block, word } => write!(
                f,
                "block {block} word {word}: core {core}'s S copy diverges from L2"
            ),
            Violation::UnwrittenValue {
                core,
                writer,
                block,
                value,
            } => write!(
                f,
                "core {core} read unwritten value {value} from writer {writer} block {block}"
            ),
            Violation::NonMonotoneRead {
                core,
                writer,
                block,
                value,
                prev,
            } => write!(
                f,
                "core {core} saw writer {writer} block {block} go backwards: {value} < {prev}"
            ),
            Violation::BankBusyAtQuiescence { bank } => {
                write!(f, "directory bank {bank} not quiescent")
            }
            Violation::L1BusyAtQuiescence { core } => {
                write!(
                    f,
                    "core {core}'s access never completed: liveness violation"
                )
            }
            Violation::UnackedWriteback { core } => {
                write!(f, "core {core}: writeback never acknowledged")
            }
            Violation::ApproxLeak { core, block, state } => write!(
                f,
                "core {core} holds {state:?} on block {block} which was never scribbled"
            ),
            Violation::GiServicedPreciseLoad { core, block } => write!(
                f,
                "core {core}: GI line serviced a precise load of block {block}"
            ),
            Violation::HiddenWritesOverBound {
                core,
                block,
                count,
                bound,
            } => write!(
                f,
                "core {core} block {block}: {count} hidden writes exceed the bound {bound}"
            ),
            Violation::ScribeBoundBypassed {
                core,
                block,
                old,
                new,
                d,
            } => write!(
                f,
                "core {core} block {block}: scribble {old} -> {new} serviced hidden \
                 but is outside d={d}"
            ),
            Violation::Protocol(e) => write!(f, "{e}"),
        }
    }
}

#[derive(Clone, Debug, Hash)]
struct PendingAccess {
    addr: Addr,
    kind: AccessKind,
}

/// Flattens an endpoint into a virtual-network node id: L1s first, then
/// directory banks, then memory controllers.
pub fn node_key(ep: Endpoint, cores: usize) -> usize {
    match ep {
        Endpoint::L1(i) => i,
        Endpoint::Dir(b) => cores + b,
        Endpoint::Mem(m) => 2 * cores + m,
    }
}

/// The harness system: real controllers, DRAM, the virtual network and
/// the value-oracle bookkeeping. `Clone` snapshots everything — the
/// model checker forks a `System` at every branching point.
#[derive(Clone)]
pub struct System {
    cfg: SystemConfig,
    l1s: Vec<L1Cache>,
    banks: Vec<DirBank>,
    dram: Dram,
    stats: Stats,
    /// Virtual network: per-(src, dst) FIFO channels, stored as a dense
    /// `nodes × nodes` row-major array indexed by the flattened
    /// [`node_key`]s. Row-major iteration is the same deterministic
    /// (src, dst) order the former `BTreeMap` gave, without per-channel
    /// tree nodes on the checker's clone-heavy hot path.
    net: Vec<VecDeque<CtlMsg>>,
    /// Side pool holding the blocks carried by in-flight data messages;
    /// `net` stores only small fixed-size [`CtlMsg`] control records.
    /// Cloned with the system so checker forks keep their slots private.
    /// NOT part of the architectural state: fingerprints hash each
    /// queued message's *logical* form instead, so two systems with the
    /// same in-flight traffic but different slot assignments (different
    /// delivery histories) still collide in the visited set.
    data: DataPool,
    /// Outstanding access per core.
    pending: Vec<Option<PendingAccess>>,
    /// Single-writer discipline: next sequence number per (core, block).
    next_seq: Vec<Vec<u64>>,
    /// Monotone-read oracle: last value seen per (reader, block × writer).
    last_seen: Vec<Vec<u64>>,
    /// Block indices the program has scribbled — the approximate data
    /// set; value oracles relax and GS/GI containment is checked
    /// against it.
    scribbled: BTreeSet<usize>,
    completed: usize,
    messages: usize,
}

impl System {
    /// Builds a quiescent system of `cfg`'s shape.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(cfg.cores >= 1 && cfg.blocks >= 1);
        let mut l1s: Vec<L1Cache> = (0..cfg.cores)
            .map(|c| {
                L1Cache::new(
                    c,
                    cfg.l1_sets,
                    cfg.l1_ways,
                    cfg.cores,
                    cfg.base,
                    cfg.gw,
                    false,
                )
            })
            .collect();
        let mut banks: Vec<DirBank> = (0..cfg.cores)
            .map(|b| DirBank::with_base(b, cfg.l2_sets, cfg.l2_ways, 1, cfg.base))
            .collect();
        if let Some(name) = cfg.disabled_row {
            let mut known = false;
            for l1 in &mut l1s {
                known |= l1.disable_row(name);
            }
            for bank in &mut banks {
                known |= bank.disable_row(name);
            }
            assert!(known, "no protocol row named {name:?}");
        }
        if let Some(rec) = cfg.recovery {
            for l1 in &mut l1s {
                l1.set_recovery(rec);
            }
            for bank in &mut banks {
                bank.set_recovery(rec);
            }
        }
        Self {
            l1s,
            banks,
            dram: Dram::new(),
            stats: Stats::default(),
            net: vec![VecDeque::new(); (2 * cfg.cores + 1) * (2 * cfg.cores + 1)],
            data: DataPool::default(),
            pending: (0..cfg.cores).map(|_| None).collect(),
            next_seq: vec![vec![1; cfg.blocks]; cfg.cores],
            last_seen: vec![vec![0; cfg.blocks * cfg.cores]; cfg.cores],
            scribbled: BTreeSet::new(),
            completed: 0,
            messages: 0,
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Accesses issued and completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Accumulated controller statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Byte address of block index `b`'s slot owned by `writer`.
    pub fn slot(&self, writer: usize, b: usize) -> Addr {
        Addr(0x10_0000 + (b as u64) * 64 + (writer as u64) * 8)
    }

    /// Block address of block index `b`.
    pub fn block_of(&self, b: usize) -> BlockAddr {
        self.slot(0, b).block()
    }

    /// True if `core` can issue a new access.
    pub fn core_idle(&self, core: usize) -> bool {
        self.pending[core].is_none()
    }

    /// Cores with no outstanding access.
    pub fn idle_cores(&self) -> Vec<usize> {
        (0..self.cfg.cores).filter(|&c| self.core_idle(c)).collect()
    }

    /// Cores blocked on an outstanding access.
    pub fn busy_cores(&self) -> Vec<usize> {
        (0..self.cfg.cores)
            .filter(|&c| !self.core_idle(c))
            .collect()
    }

    /// L1 coherence state of pool block `b` at `core` (for tests).
    pub fn l1_state(&self, core: usize, b: usize) -> Option<L1State> {
        self.l1s[core].state_of(self.block_of(b))
    }

    /// Number of virtual-network nodes: L1s, directory banks, then the
    /// single memory controller (see [`node_key`]).
    fn nodes(&self) -> usize {
        2 * self.cfg.cores + 1
    }

    /// Dense channel index of `key`, if both endpoints are in range.
    fn chan(&self, key: (usize, usize)) -> Option<usize> {
        let n = self.nodes();
        (key.0 < n && key.1 < n).then(|| key.0 * n + key.1)
    }

    /// Non-empty virtual-network channels, in deterministic order.
    pub fn channels(&self) -> Vec<(usize, usize)> {
        let n = self.nodes();
        self.net
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| (i / n, i % n))
            .collect()
    }

    /// The control record at the head of channel `key`, if any. Block
    /// data lives in the side pool; use [`System::drop_message`] (or a
    /// delivery) to materialise the logical message.
    pub fn peek_channel(&self, key: (usize, usize)) -> Option<&CtlMsg> {
        self.chan(key).and_then(|i| self.net[i].front())
    }

    /// True when nothing is in flight: no queued messages and no core
    /// has an outstanding access.
    pub fn quiescent(&self) -> bool {
        self.net.iter().all(|q| q.is_empty()) && self.pending.iter().all(|p| p.is_none())
    }

    /// True when `core` holds at least one GI line (a GI-timeout sweep
    /// would change state).
    pub fn has_gi(&self, core: usize) -> bool {
        self.l1s[core]
            .resident_blocks()
            .iter()
            .any(|&(_, s)| s == L1State::Gi)
    }

    fn enqueue(&mut self, msg: Msg) {
        let key = (
            node_key(msg.src, self.cfg.cores),
            node_key(msg.dst, self.cfg.cores),
        );
        let i = self.chan(key).expect("endpoint outside the node grid");
        let msg = msg.intern(&mut self.data);
        self.net[i].push_back(msg);
    }

    /// Fault-injection hook for the model checker's mutation testing:
    /// removes and returns the head of channel `key` without delivering
    /// it (a lost message). Resolving frees the message's data slot.
    pub fn drop_message(&mut self, key: (usize, usize)) -> Option<Msg> {
        let i = self.chan(key)?;
        let msg = self.net[i].pop_front()?;
        Some(msg.resolve(&mut self.data))
    }

    /// Fault-injection hook: enqueues an arbitrary message, as a buggy
    /// or byzantine controller would.
    pub fn inject(&mut self, msg: Msg) {
        self.enqueue(msg);
    }

    /// True if the head of channel `key` rides the unreliable virtual
    /// channel — the only traffic the bounded-fault checker may drop or
    /// duplicate (requests from an L1; grants from the directory).
    pub fn head_faultable(&self, key: (usize, usize)) -> bool {
        self.peek_channel(key)
            .is_some_and(|m| fault::droppable(m.src, &m.payload))
    }

    /// True if the head of channel `key` may be marked corrupt: demand
    /// fills from the directory and DRAM fills to the directory.
    pub fn head_corruptible(&self, key: (usize, usize)) -> bool {
        self.peek_channel(key)
            .is_some_and(|m| fault::corruptible(m.src, &m.payload))
    }

    /// Fault-injection hook: re-enqueues a copy of the head of channel
    /// `key` at the back (a network duplicate). The head itself stays.
    /// Returns `false` if the head is absent or not [`head_faultable`].
    pub fn duplicate_head(&mut self, key: (usize, usize)) -> bool {
        if !self.head_faultable(key) {
            return false;
        }
        let copy = {
            let i = self.chan(key).expect("head_faultable checked");
            self.net[i]
                .front()
                .expect("head_faultable checked")
                .logical(&self.data)
        };
        self.enqueue(copy);
        true
    }

    /// Fault-injection hook: sets the taint bit on the head of channel
    /// `key`, modelling detected payload corruption in flight. The data
    /// itself is untouched so the value oracles stay valid; receivers see
    /// only the taint and must absorb (approximate) or refetch (precise).
    /// Returns `false` if the head is absent or not [`head_corruptible`].
    pub fn taint_head(&mut self, key: (usize, usize)) -> bool {
        if !self.head_corruptible(key) {
            return false;
        }
        let i = self.chan(key).expect("head_corruptible checked");
        self.net[i]
            .front_mut()
            .expect("head_corruptible checked")
            .tag
            .tainted = true;
        true
    }

    /// True if the retry action on `core` is worth scheduling: recovery
    /// is on, the core has a tagged request outstanding, no message
    /// touching that core is in flight, and the block's home bank
    /// confirms a resend would actually advance the transaction
    /// ([`DirBank::resend_makes_progress`] — the request was lost, or
    /// the grant was). The last condition keeps retries from firing
    /// while the directory is legitimately busy on the core's behalf
    /// (memory fetch, invalidation gathering): those resends would be
    /// dup-dropped yet still burn the bounded retry budget, and under
    /// exhaustive search the waste surfaces as a spurious
    /// `retry_exhausted` on fault-free traces.
    pub fn needs_retry(&self, core: usize) -> bool {
        let Some(seq) = self.l1s[core].pending_seq() else {
            return false;
        };
        let in_flight = self.net.iter().enumerate().any(|(i, q)| {
            let n = self.nodes();
            (i / n == core || i % n == core) && !q.is_empty()
        });
        if in_flight {
            return false;
        }
        let Some(block) = self.l1s[core].pending_block() else {
            return false;
        };
        let bank = home_bank(block, self.cfg.cores);
        self.banks[bank].resend_makes_progress(block, core, seq)
    }

    /// Fires the L1 retry timeout on `core`: resends the outstanding
    /// tagged request, or surfaces `retry_exhausted` once the budget is
    /// spent. Returns `Ok(false)` if the core has nothing to retry.
    pub fn retry(&mut self, core: usize) -> Result<bool, Violation> {
        let mut outs = Vec::new();
        let fired = self.l1s[core]
            .retry_pending_into(&mut self.stats, &mut outs)
            .map_err(Violation::Protocol)?;
        self.handle_l1_outs(core, outs)?;
        Ok(fired)
    }

    fn handle_l1_outs(&mut self, core: usize, outs: Vec<L1Out>) -> Result<(), Violation> {
        for out in outs {
            match out {
                L1Out::Send(m) => self.enqueue(m),
                L1Out::Reply { value } => {
                    let p = self.pending[core].take().expect("reply without access");
                    self.completed += 1;
                    if matches!(p.kind, AccessKind::Load) {
                        // Which (writer, block) slot was read?
                        let rel = p.addr.0 - 0x10_0000;
                        let b = (rel / 64) as usize;
                        let writer = ((rel % 64) / 8) as usize;
                        // Loads only ever observe values the single
                        // writer actually wrote (zero = initial state).
                        if value >= self.next_seq[writer][b] {
                            return Err(Violation::UnwrittenValue {
                                core,
                                writer,
                                block: b,
                                value,
                            });
                        }
                        // Coherence order makes single-writer reads
                        // monotone per reader — but only on blocks the
                        // program never scribbled: GS/GI copies serve
                        // stale values by design.
                        if !self.scribbled.contains(&b) {
                            let idx = b * self.cfg.cores + writer;
                            let prev = self.last_seen[core][idx];
                            if value < prev {
                                return Err(Violation::NonMonotoneRead {
                                    core,
                                    writer,
                                    block: b,
                                    value,
                                    prev,
                                });
                            }
                            self.last_seen[core][idx] = value;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Issues `op` on idle `core` against pool block `b`, then runs the
    /// any-time invariant checks.
    ///
    /// # Panics
    /// Panics if `core` is busy or the indices are out of range — those
    /// are caller bugs, not protocol violations.
    pub fn issue(&mut self, core: usize, b: usize, op: Op) -> Result<(), Violation> {
        assert!(core < self.cfg.cores && b < self.cfg.blocks);
        assert!(self.core_idle(core), "core {core} already has an access");
        let (addr, kind, value) = match op {
            Op::Load { writer } => {
                assert!(writer < self.cfg.cores);
                (self.slot(writer, b), AccessKind::Load, 0)
            }
            Op::Store => {
                let v = self.next_seq[core][b];
                self.next_seq[core][b] += 1;
                (self.slot(core, b), AccessKind::Store, v)
            }
            Op::Scribble { d } => {
                let v = self.next_seq[core][b];
                self.next_seq[core][b] += 1;
                self.scribbled.insert(b);
                (self.slot(core, b), AccessKind::Scribble { d }, v)
            }
        };
        let block = addr.block();
        // Pre-access observations for the externally re-checked
        // Ghostwriter invariants.
        let pre_state = self.l1s[core].state_of(block);
        let pre_word = self.l1s[core].peek_word(addr, 8);
        // A block is precise until the program scribbles it; GI may
        // legally serve loads of scribbled (error-tolerant) data only.
        let block_precise = !self.scribbled.contains(&b);
        self.pending[core] = Some(PendingAccess { addr, kind });
        let req = CoreReq {
            addr,
            size: 8,
            value,
            kind,
        };
        let outs = self.l1s[core]
            .access(req, &mut self.stats)
            .map_err(Violation::Protocol)?;
        let replied = outs.iter().any(|o| matches!(o, L1Out::Reply { .. }));
        let post_state = self.l1s[core].state_of(block);

        // A GI line may only service loads of approximate (scribbled)
        // data; a precise load hitting on GI would silently read a value
        // coherence never sanctioned.
        if matches!(op, Op::Load { .. })
            && replied
            && pre_state == Some(L1State::Gi)
            && block_precise
        {
            return Err(Violation::GiServicedPreciseLoad { core, block: b });
        }

        // Scribe comparator re-verification: a scribble serviced hidden
        // (line left in GS/GI) must have passed the configured-distance
        // comparison against the word it overwrote — except a failing
        // scribble on an already-GI line under the Capture policy, which
        // hits by design.
        if let Op::Scribble { d } = op {
            if replied && matches!(post_state, Some(L1State::Gs) | Some(L1State::Gi)) {
                let gw = self.cfg.gw.expect("scribble without GW params");
                let capture_hit =
                    gw.gi_stores == GiStorePolicy::Capture && pre_state == Some(L1State::Gi);
                if !capture_hit {
                    let old = pre_word.expect("hidden service requires a resident tag");
                    if !gw.scribe.within(old, value, 64, u32::from(d)) {
                        return Err(Violation::ScribeBoundBypassed {
                            core,
                            block: b,
                            old,
                            new: value,
                            d,
                        });
                    }
                }
            }
        }

        self.handle_l1_outs(core, outs)?;
        self.check_ghostwriter()
    }

    /// Delivers the message at the head of channel `key` (FIFO within
    /// the channel), then runs the any-time invariant checks.
    ///
    /// # Panics
    /// Panics if the channel is empty — callers pick from
    /// [`System::channels`].
    pub fn deliver(&mut self, key: (usize, usize)) -> Result<(), Violation> {
        let msg = self
            .chan(key)
            .and_then(|i| self.net[i].pop_front())
            .expect("deliver from empty channel")
            .resolve(&mut self.data);
        self.messages += 1;
        if std::env::var_os("GW_TESTER_TRACE").is_some() {
            eprintln!(
                "deliver {:<12} {:?} -> {:?}  {:?}",
                msg.payload.name(),
                msg.src,
                msg.dst,
                msg.block
            );
        }
        match msg.dst {
            Endpoint::L1(core) => {
                let outs = self.l1s[core]
                    .handle_msg(msg, &mut self.stats)
                    .map_err(Violation::Protocol)?;
                self.handle_l1_outs(core, outs)?;
            }
            Endpoint::Dir(bank) => {
                let outs = self.banks[bank]
                    .handle_msg(msg, &mut self.stats)
                    .map_err(Violation::Protocol)?;
                for m in outs {
                    self.enqueue(m);
                }
            }
            Endpoint::Mem(_) => match msg.payload {
                Payload::MemRead => {
                    let data = self.dram.read_block(msg.block);
                    self.enqueue(Msg {
                        src: msg.dst,
                        dst: msg.src,
                        block: msg.block,
                        payload: Payload::MemData { data },
                        tag: WireTag::seq(msg.tag.seq),
                    });
                }
                Payload::MemWrite { data } => self.dram.write_block(msg.block, data),
                ref p => panic!("memory controller got {}", p.name()),
            },
        }
        self.check_ghostwriter()
    }

    /// Fires the periodic GI timeout on `core`: every GI line reverts to
    /// I, forfeiting hidden updates (paper §3.2).
    pub fn gi_timeout(&mut self, core: usize) -> Result<(), Violation> {
        self.l1s[core]
            .gi_timeout_sweep(&mut self.stats)
            .map_err(Violation::Protocol)
    }

    /// Context-switch forfeit on `core` (paper §3.5): GS/GI lines revert
    /// to I; GS lines notify the directory with PutS.
    pub fn context_switch(&mut self, core: usize) -> Result<(), Violation> {
        let outs = self.l1s[core]
            .context_switch_forfeit(&mut self.stats)
            .map_err(Violation::Protocol)?;
        self.handle_l1_outs(core, outs)
    }

    /// SWMR: never two writable copies, never writable + readable
    /// elsewhere. Valid at any instant. MOESI's O is the distinguished
    /// dirty owner: at most one may exist, and it excludes E/M copies,
    /// but it legitimately coexists with clean S readers. MESIF's F is a
    /// clean read-only copy and counts as a reader.
    pub fn check_swmr(&self) -> Result<(), Violation> {
        for b in 0..self.cfg.blocks {
            let block = self.block_of(b);
            let mut exclusive = 0;
            let mut dirty_owned = 0;
            let mut readable_elsewhere = 0;
            for l1 in &self.l1s {
                match l1.state_of(block) {
                    Some(L1State::M) | Some(L1State::E) => exclusive += 1,
                    Some(L1State::O) => dirty_owned += 1,
                    Some(L1State::S) | Some(L1State::F) => readable_elsewhere += 1,
                    _ => {}
                }
            }
            if exclusive + dirty_owned > 1 {
                return Err(Violation::MultipleWriters {
                    block: b,
                    writers: exclusive + dirty_owned,
                });
            }
            if exclusive == 1 && readable_elsewhere > 0 {
                return Err(Violation::WriterWithSharers {
                    block: b,
                    sharers: readable_elsewhere,
                });
            }
        }
        Ok(())
    }

    /// Ghostwriter containment invariants, valid at any instant:
    /// GS/GI lines exist only on blocks the program scribbled (never in
    /// a precise configuration), and hidden-write counts respect the
    /// §3.5 error bound.
    pub fn check_ghostwriter(&self) -> Result<(), Violation> {
        let pool: BTreeMap<BlockAddr, usize> = (0..self.cfg.blocks)
            .map(|b| (self.block_of(b), b))
            .collect();
        for (c, l1) in self.l1s.iter().enumerate() {
            for (block, state) in l1.resident_blocks() {
                let b = *pool.get(&block).expect("block outside the pool");
                if matches!(state, L1State::Gs | L1State::Gi)
                    && (self.cfg.gw.is_none() || !self.scribbled.contains(&b))
                {
                    return Err(Violation::ApproxLeak {
                        core: c,
                        block: b,
                        state,
                    });
                }
                if let Some(bound) = self.cfg.gw.and_then(|g| g.max_hidden_writes) {
                    if matches!(state, L1State::Gs | L1State::Gi) {
                        let count = l1.hidden_writes_of(block).unwrap_or(0);
                        if count > bound {
                            return Err(Violation::HiddenWritesOverBound {
                                core: c,
                                block: b,
                                count,
                                bound,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Directory accuracy + data-value invariant + liveness residue;
    /// only meaningful at quiescence (no in-flight messages or
    /// accesses).
    pub fn check_quiescent(&self) -> Result<(), Violation> {
        for (c, p) in self.pending.iter().enumerate() {
            if p.is_some() {
                return Err(Violation::L1BusyAtQuiescence { core: c });
            }
        }
        for (c, l1) in self.l1s.iter().enumerate() {
            if l1.has_pending_writebacks() {
                return Err(Violation::UnackedWriteback { core: c });
            }
        }
        for (bk, bank) in self.banks.iter().enumerate() {
            if !bank.quiescent() {
                return Err(Violation::BankBusyAtQuiescence { bank: bk });
            }
        }
        for b in 0..self.cfg.blocks {
            let block = self.block_of(b);
            let bank = home_bank(block, self.cfg.cores);
            let dir = self.banks[bank].dir_state(block);
            let mut sharers = 0u64;
            let mut owner = None;
            let mut o_holder = None;
            let mut fwd_mask = 0u64;
            for (c, l1) in self.l1s.iter().enumerate() {
                match l1.state_of(block) {
                    Some(L1State::S) | Some(L1State::Gs) => sharers |= 1 << c,
                    Some(L1State::F) => fwd_mask |= 1 << c,
                    Some(L1State::M) | Some(L1State::E) | Some(L1State::O) => {
                        if let Some(prev) = owner.or(o_holder) {
                            return Err(Violation::MultipleWriters {
                                block: b,
                                writers: 2 + usize::from(prev == c),
                            });
                        }
                        if l1.state_of(block) == Some(L1State::O) {
                            o_holder = Some(c);
                        } else {
                            owner = Some(c);
                        }
                    }
                    Some(L1State::I) | Some(L1State::Gi) | None => {}
                    Some(t) => {
                        return Err(Violation::TransientAtQuiescence {
                            core: c,
                            block: b,
                            state: t,
                        })
                    }
                }
            }
            match (dir, owner) {
                (Some(DirState::Owned(o)), oc) => {
                    if oc != Some(o) {
                        return Err(Violation::OwnerMismatch {
                            block: b,
                            dir_owner: o,
                            l1_owner: oc.or(o_holder),
                        });
                    }
                }
                (
                    Some(DirState::OwnedShared {
                        owner: o,
                        sharers: s,
                    }),
                    _,
                ) => {
                    // MOESI/MOSI dirty sharing: the distinguished owner
                    // must hold O and the sharer list must be exact.
                    if o_holder != Some(o) || owner.is_some() {
                        return Err(Violation::OwnerMismatch {
                            block: b,
                            dir_owner: o,
                            l1_owner: owner.or(o_holder),
                        });
                    }
                    if s != sharers {
                        return Err(Violation::SharerMismatch {
                            block: b,
                            dir: s,
                            actual: sharers,
                        });
                    }
                }
                (Some(DirState::Forward { fwd, sharers: s }), _) => {
                    // MESIF: exactly the designated forwarder holds F.
                    if fwd_mask != 1 << fwd || owner.is_some() || o_holder.is_some() {
                        return Err(Violation::OwnerMismatch {
                            block: b,
                            dir_owner: fwd,
                            l1_owner: owner
                                .or(o_holder)
                                .or((0..64).find(|c| fwd_mask & (1 << c) != 0)),
                        });
                    }
                    if s != sharers {
                        return Err(Violation::SharerMismatch {
                            block: b,
                            dir: s,
                            actual: sharers,
                        });
                    }
                }
                (Some(DirState::Shared(s)), _) => {
                    if s != sharers {
                        return Err(Violation::SharerMismatch {
                            block: b,
                            dir: s,
                            actual: sharers,
                        });
                    }
                    if let Some(c) = owner.or(o_holder) {
                        return Err(Violation::OwnerMismatch {
                            block: b,
                            dir_owner: c,
                            l1_owner: Some(c),
                        });
                    }
                }
                (Some(DirState::Np), _) | (None, _) => {
                    if sharers != 0 || fwd_mask != 0 || owner.is_some() || o_holder.is_some() {
                        return Err(Violation::UntrackedCopies {
                            block: b,
                            sharers: sharers | fwd_mask,
                            owner: owner.or(o_holder),
                        });
                    }
                }
            }
            // An F copy the directory doesn't know about (every other
            // stray-copy combination is caught by the arms above).
            if fwd_mask != 0 && !matches!(dir, Some(DirState::Forward { .. })) {
                return Err(Violation::UntrackedCopies {
                    block: b,
                    sharers: sharers | fwd_mask,
                    owner,
                });
            }
            // Data-value invariant: precise Shared (and MESIF Forward)
            // copies equal the L2 data (GS copies are legitimately
            // divergent). Under MOESI dirty sharing the L2 copy may be
            // stale — the O owner's bytes are the reference instead.
            let reference = match o_holder {
                Some(o) => Some(std::array::from_fn::<_, 8, _>(|w| {
                    self.l1s[o]
                        .peek_word(block.base().add(8 * w as u64), 8)
                        .expect("O line resident")
                })),
                None => self.banks[bank]
                    .peek_block(block)
                    .map(|d| std::array::from_fn(|w| d.read_word(8 * w, 8))),
            };
            if let Some(reference) = reference {
                for (c, l1) in self.l1s.iter().enumerate() {
                    if matches!(l1.state_of(block), Some(L1State::S) | Some(L1State::F)) {
                        for (w, &expect) in reference.iter().enumerate() {
                            let a = block.base().add(8 * w as u64);
                            if l1.peek_word(a, 8) != Some(expect) {
                                return Err(Violation::SharedDiverges {
                                    core: c,
                                    block: b,
                                    word: w,
                                });
                            }
                        }
                    }
                }
            }
        }
        self.check_swmr()?;
        self.check_ghostwriter()
    }

    /// 128-bit canonical fingerprint of the architectural state, for the
    /// model checker's visited set. Two systems with equal fingerprints
    /// behave identically under equal future action sequences: the hash
    /// covers the controllers (including PLRU bits), the in-flight
    /// message channels, outstanding accesses, DRAM contents of the
    /// block pool and the value-oracle bookkeeping. Statistics and the
    /// completed/messages counters are excluded — they never influence a
    /// transition or a check.
    pub fn fingerprint(&self) -> u128 {
        let lo = self.hash_with_salt(0x9E37_79B9_7F4A_7C15);
        let hi = self.hash_with_salt(0xC2B2_AE3D_27D4_EB4F);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn hash_with_salt(&self, salt: u64) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        salt.hash(&mut h);
        self.l1s.iter().for_each(|l1| l1.hash(&mut h));
        self.banks.iter().for_each(|b| b.hash(&mut h));
        // Hash each queued message's *logical* form, never its DataRef
        // slot index (and never the pool itself): slot assignment
        // depends on delivery history, and two states with identical
        // in-flight traffic must fingerprint equal regardless of which
        // slots that traffic happens to occupy.
        for q in &self.net {
            q.len().hash(&mut h);
            for m in q {
                m.logical(&self.data).hash(&mut h);
            }
        }
        self.pending.hash(&mut h);
        self.next_seq.hash(&mut h);
        self.last_seen.hash(&mut h);
        self.scribbled.hash(&mut h);
        for b in 0..self.cfg.blocks {
            self.dram.read_block(self.block_of(b)).hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DirRowId, L1RowId};
    use crate::scribe::ScribePolicy;

    fn cfg2() -> SystemConfig {
        SystemConfig {
            cores: 2,
            blocks: 1,
            ..SystemConfig::default()
        }
    }

    fn drain(sys: &mut System) {
        let mut guard = 0;
        loop {
            let chans = sys.channels();
            let Some(&key) = chans.first() else { break };
            sys.deliver(key).unwrap();
            guard += 1;
            assert!(guard < 10_000, "network never drained");
        }
    }

    fn rec_cfg() -> SystemConfig {
        SystemConfig {
            cores: 2,
            blocks: 1,
            recovery: Some(RecoveryParams::checker()),
            ..SystemConfig::default()
        }
    }

    /// First channel whose head is a directory-sourced grant, delivering
    /// everything else until one appears.
    fn deliver_until_grant(sys: &mut System) -> (usize, usize) {
        let cores = sys.config().cores;
        let mut guard = 0;
        loop {
            let chans = sys.channels();
            if let Some(&key) = chans
                .iter()
                .find(|&&k| k.0 >= cores && k.0 < 2 * cores && sys.head_faultable(k))
            {
                return key;
            }
            let &key = chans.first().expect("grant never materialised");
            sys.deliver(key).unwrap();
            guard += 1;
            assert!(guard < 1_000);
        }
    }

    /// Drains the network, firing the retry timeout whenever a core is
    /// stalled with nothing in flight (the recovery schedule a real
    /// machine's timeout wheel would produce).
    fn drain_with_retries(sys: &mut System) {
        let mut guard = 0;
        while !sys.quiescent() {
            if let Some(&key) = sys.channels().first() {
                sys.deliver(key).unwrap();
            } else {
                let cores = sys.config().cores;
                let stalled: Vec<usize> = (0..cores).filter(|&c| sys.needs_retry(c)).collect();
                assert!(!stalled.is_empty(), "busy but nothing to retry or deliver");
                for c in stalled {
                    sys.retry(c).unwrap();
                }
            }
            guard += 1;
            assert!(guard < 10_000, "network never drained");
        }
    }

    #[test]
    fn dropped_request_recovered_by_retry() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        let key = *sys.channels().first().unwrap();
        assert!(sys.head_faultable(key), "request leg must be faultable");
        sys.drop_message(key).unwrap();
        assert!(sys.needs_retry(0), "loss leaves the core stalled");
        assert!(sys.retry(0).unwrap());
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(sys.stats().retries, 1);
        assert!(sys.stats().coverage.l1_hits(L1RowId::RetryResend) > 0);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn dropped_grant_recovered_by_dup_resend() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        let key = deliver_until_grant(&mut sys);
        sys.drop_message(key).unwrap();
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(
            sys.stats().grant_resends,
            1,
            "directory must resend the grant"
        );
        assert!(sys.stats().coverage.dir_hits(DirRowId::DupReqResend) > 0);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn duplicated_request_suppressed() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        let key = *sys.channels().first().unwrap();
        assert!(sys.duplicate_head(key));
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(sys.stats().dup_reqs_dropped, 1);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn duplicated_grant_stale_dropped() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        let key = deliver_until_grant(&mut sys);
        assert!(sys.duplicate_head(key));
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(sys.stats().stale_replies, 1);
        assert!(sys.stats().coverage.l1_hits(L1RowId::StaleReplyDrop) > 0);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn tainted_precise_grant_refetched() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Load { writer: 1 }).unwrap();
        let key = deliver_until_grant(&mut sys);
        assert!(sys.taint_head(key));
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(sys.stats().corrupt_fills_refetched, 1);
        assert_eq!(
            sys.stats().grant_resends,
            1,
            "refetch answered from the grant copy"
        );
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn tainted_mem_fill_refetched_by_directory() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        // GETX then MemRead reach their targets; taint the MemData reply.
        let mut guard = 0;
        loop {
            let chans = sys.channels();
            let &key = chans.first().unwrap();
            if sys.head_corruptible(key) {
                assert!(sys.taint_head(key));
                break;
            }
            sys.deliver(key).unwrap();
            guard += 1;
            assert!(guard < 100);
        }
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(sys.stats().corrupt_mem_refetches, 1);
        assert!(sys.stats().coverage.dir_hits(DirRowId::CorruptMemRefetch) > 0);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn tainted_approx_fill_absorbed() {
        let mut sys = System::new(SystemConfig {
            gw: Some(GwParams {
                scribe: ScribePolicy::Bitwise,
                enable_gs: true,
                enable_gi: true,
                gi_stores: GiStorePolicy::Fallback,
                max_hidden_writes: None,
            }),
            ..rec_cfg()
        });
        sys.issue(0, 0, Op::Scribble { d: 8 }).unwrap();
        let key = deliver_until_grant(&mut sys);
        assert!(sys.taint_head(key));
        drain_with_retries(&mut sys);
        assert_eq!(sys.completed(), 1);
        assert_eq!(
            sys.stats().corrupt_fills_absorbed,
            1,
            "approximate fills absorb corruption instead of refetching"
        );
        assert_eq!(sys.stats().corrupt_fills_refetched, 0);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let mut sys = System::new(rec_cfg());
        sys.issue(0, 0, Op::Store).unwrap();
        // checker() allows 2 retries; the third timeout must surface the
        // `retry_exhausted` error row, never a panic.
        for _ in 0..3 {
            let key = *sys.channels().first().unwrap();
            sys.drop_message(key).unwrap();
            match sys.retry(0) {
                Ok(fired) => assert!(fired),
                Err(Violation::Protocol(e)) => {
                    assert!(e.to_string().contains("retry_exhausted"), "{e}");
                    return;
                }
                Err(v) => panic!("unexpected violation {v:?}"),
            }
        }
        panic!("retry budget never exhausted");
    }

    #[test]
    fn nack_on_conflict_bounces_and_recovers() {
        let cfg = SystemConfig {
            cores: 2,
            blocks: 4,
            l2_sets: 1,
            l2_ways: 1,
            recovery: Some(RecoveryParams {
                nack_on_conflict: true,
                ..RecoveryParams::default()
            }),
            ..SystemConfig::default()
        };
        let mut sys = System::new(cfg);
        // Two blocks homed on the same single-way bank conflict on fill.
        let b0 = 0;
        let home = home_bank(sys.block_of(b0), 2);
        let b1 = (1..4)
            .find(|&b| home_bank(sys.block_of(b), 2) == home)
            .expect("pigeonhole");
        sys.issue(0, b0, Op::Store).unwrap();
        let key = *sys.channels().first().unwrap();
        sys.deliver(key).unwrap(); // bank pins its only way for b0
        sys.issue(1, b1, Op::Store).unwrap();
        // Drain, but feed the memory controller first: the NACK/resend
        // ping-pong between core 1 and the bank must not starve block
        // b0's DRAM fill (the documented livelock caveat).
        let mem = 2 * sys.config().cores;
        let mut guard = 0;
        while !sys.quiescent() {
            let chans = sys.channels();
            let key = chans
                .iter()
                .copied()
                .find(|&k| k.0 == mem || k.1 == mem)
                .or_else(|| chans.first().copied());
            match key {
                Some(k) => sys.deliver(k).unwrap(),
                None => {
                    for c in 0..2 {
                        if sys.needs_retry(c) {
                            sys.retry(c).unwrap();
                        }
                    }
                }
            }
            guard += 1;
            assert!(guard < 10_000, "NACK livelock");
        }
        assert_eq!(sys.completed(), 2);
        assert!(sys.stats().conflict_nacks >= 1);
        assert!(sys.stats().nack_retries >= 1);
        assert!(sys.stats().coverage.dir_hits(DirRowId::NackConflict) > 0);
        assert!(sys.stats().coverage.l1_hits(L1RowId::ReqNacked) > 0);
        sys.check_quiescent().unwrap();
    }

    /// Satellite: the data-slot side pool neither leaks nor double-frees
    /// under seeded drop/duplicate/taint schedules — at quiescence no
    /// slot is live, and the pool's high-water mark equals the observed
    /// peak of in-flight data messages (freed slots were recycled).
    #[test]
    fn data_pool_leakfree_under_message_faults() {
        for seed in 0..8u64 {
            let mut sys = System::new(SystemConfig {
                cores: 3,
                blocks: 4,
                recovery: Some(RecoveryParams {
                    max_retries: 64,
                    timeout_cycles: 1,
                    backoff_base: 1,
                    nack_on_conflict: false,
                }),
                ..SystemConfig::default()
            });
            let mut peak = 0usize;
            for step in 0..600u64 {
                let r = fault::mix(seed, 0xFA, step);
                let chans = sys.channels();
                if r % 100 < 12 {
                    if let Some(&key) = chans.iter().find(|&&k| sys.head_faultable(k)) {
                        if r.is_multiple_of(2) {
                            sys.drop_message(key);
                        } else {
                            sys.duplicate_head(key);
                        }
                        peak = peak.max(sys.data.in_flight());
                        continue;
                    }
                } else if r % 100 < 16 {
                    if let Some(&key) = chans.iter().find(|&&k| sys.head_corruptible(k)) {
                        sys.taint_head(key);
                        continue;
                    }
                }
                let idle = sys.idle_cores();
                if (r % 100 < 40 || chans.is_empty()) && !idle.is_empty() {
                    let core = idle[(r / 100) as usize % idle.len()];
                    let b = (r / 1000) as usize % 4;
                    let op = if r.is_multiple_of(3) {
                        Op::Load {
                            writer: (r / 7) as usize % 3,
                        }
                    } else {
                        Op::Store
                    };
                    sys.issue(core, b, op).unwrap();
                } else if let Some(&key) = chans.first() {
                    sys.deliver(key).unwrap();
                } else {
                    for c in 0..3 {
                        if sys.needs_retry(c) {
                            sys.retry(c).unwrap();
                        }
                    }
                }
                peak = peak.max(sys.data.in_flight());
            }
            drain_with_retries(&mut sys);
            assert_eq!(
                sys.data.in_flight(),
                0,
                "seed {seed}: live slots at quiescence"
            );
            assert_eq!(
                sys.data.capacity(),
                peak,
                "seed {seed}: pool grew past the in-flight peak (leaked slots)"
            );
            sys.check_quiescent().unwrap();
        }
    }

    #[test]
    fn store_then_remote_load_round_trips() {
        let mut sys = System::new(cfg2());
        sys.issue(0, 0, Op::Store).unwrap();
        drain(&mut sys);
        sys.issue(1, 0, Op::Load { writer: 0 }).unwrap();
        drain(&mut sys);
        assert!(sys.quiescent());
        assert_eq!(sys.completed(), 2);
        sys.check_quiescent().unwrap();
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let mut a = System::new(cfg2());
        let b = System::new(cfg2());
        assert_eq!(a.fingerprint(), b.fingerprint(), "fresh systems agree");
        let before = a.fingerprint();
        a.issue(0, 0, Op::Store).unwrap();
        assert_ne!(a.fingerprint(), before, "issuing changes the fingerprint");
        // Clones fork without sharing.
        let fork = a.clone();
        assert_eq!(a.fingerprint(), fork.fingerprint());
        drain(&mut a);
        assert_ne!(a.fingerprint(), fork.fingerprint());
    }

    #[test]
    fn fingerprint_independent_of_data_slot_assignment() {
        // Two systems with identical in-flight logical traffic but
        // different delivery histories — and therefore different data
        // pool slot assignments — must fingerprint equal. This pins
        // the payload-split contract: DataRef indices are transport
        // state, not architectural state.
        let data_msg = |v: u64| {
            let mut data = ghostwriter_mem::BlockData::zeroed();
            data.write_word(0, 8, v);
            Msg {
                src: Endpoint::Dir(0),
                dst: Endpoint::L1(0),
                block: BlockAddr(0x40),
                payload: Payload::Data {
                    data,
                    grant: crate::msg::Grant::Shared,
                },
                tag: WireTag::default(),
            }
        };
        // A: the payload of interest lands in slot 0.
        let mut a = System::new(cfg2());
        a.inject(data_msg(42));
        // B: a decoy on another channel takes slot 0 first; the payload
        // of interest gets slot 1; dropping the decoy frees slot 0, so
        // B's only in-flight message references slot 1.
        let mut b = System::new(cfg2());
        let decoy = Msg {
            dst: Endpoint::L1(1),
            ..data_msg(7)
        };
        let decoy_key = (node_key(decoy.src, 2), node_key(decoy.dst, 2));
        b.inject(decoy);
        b.inject(data_msg(42));
        b.drop_message(decoy_key).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fingerprint must hash logical messages, not slot indices"
        );
        // Sanity: the payload itself still matters.
        let mut c = System::new(cfg2());
        c.inject(data_msg(43));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn unwritten_value_detected_via_injection() {
        // Inject a Data grant carrying a value the writer never wrote;
        // the oracle must flag the read.
        let mut sys = System::new(cfg2());
        sys.issue(0, 0, Op::Load { writer: 1 }).unwrap();
        let block = sys.block_of(0);
        // Drop the outgoing GETS and answer with forged data ourselves.
        let chans = sys.channels();
        assert_eq!(chans.len(), 1);
        sys.drop_message(chans[0]).unwrap();
        let mut data = ghostwriter_mem::BlockData::zeroed();
        data.write_word(8, 8, 777); // writer 1's slot, never written
        sys.inject(Msg {
            src: Endpoint::Dir(home_bank(block, 2)),
            dst: Endpoint::L1(0),
            block,
            payload: Payload::Data {
                data,
                grant: crate::msg::Grant::Shared,
            },
            tag: WireTag::default(),
        });
        let key = sys.channels()[0];
        let err = sys.deliver(key).unwrap_err();
        assert!(matches!(err, Violation::UnwrittenValue { value: 777, .. }));
    }
}
