//! The simulated chip multiprocessor.
//!
//! [`Machine`] assembles the whole system of the paper's Table 1 — cores,
//! private L1s, the distributed shared L2 with directory slices, the mesh
//! NoC, the corner memory controllers and DRAM — and runs workload threads
//! against it under either the baseline MESI protocol or Ghostwriter.
//!
//! Timing model: a single deterministic event queue drives everything.
//! Cores are in-order and blocking; an L1 hit costs `l1_latency`, a miss
//! blocks the core until the coherence transaction completes. Message
//! delivery latency is the mesh's contention-free XY latency; L2 banks add
//! `l2_latency` per access, memory controllers `dram_latency`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;

use ghostwriter_mem::{Addr, BlockAddr, Dram, BLOCK_BYTES};
use ghostwriter_noc::{Mesh, NodeId};
#[cfg(feature = "legacy-threads")]
use ghostwriter_sim::ThreadHarness;
use ghostwriter_sim::{EventQueue, FutureThread, Resumable, Step};

use crate::config::{MachineConfig, Protocol};
use crate::ctx::ThreadCtx;
use crate::dir::DirBank;
use crate::fault::{self, Fate, FaultConfig};
use crate::l1::{AccessKind, CoreReq, GwParams, L1Cache, L1Out};
use crate::msg::{CtlMsg, DataPool, Endpoint, Msg, Payload, WireTag};
use crate::op::{OpKind, ThreadOp, ThreadReply};
use crate::prof::{Component, Phase, Profile, Profiler};
use crate::proto::ProtocolError;
use crate::stats::{CoreSummary, SimReport, Stats};
use ghostwriter_energy::EnergyModel;

/// One simulated thread's body: the future [`Machine::add_thread`]'s
/// closure returns, suspended at every `ThreadCtx` operation.
pub type ThreadBody = Pin<Box<dyn Future<Output = ()>>>;

/// A workload program: one closure per simulated thread. The closure is
/// `Send` (under the `legacy-threads` oracle it is moved into a worker
/// OS thread before running); the future it returns is single-threaded
/// — it owns the engine-side op cell and never crosses threads.
pub type Program = Box<dyn FnOnce(ThreadCtx) -> ThreadBody + Send + 'static>;

/// Builder/owner of one simulation: allocate memory, load inputs, add
/// threads, then [`Machine::run`].
pub struct Machine {
    config: MachineConfig,
    faults: FaultConfig,
    injections: Vec<(u64, Msg)>,
    energy_model: EnergyModel,
    dram: Dram,
    alloc_cursor: u64,
    programs: Vec<Program>,
    trace: bool,
    profiling: bool,
    fuse_replies: bool,
    #[cfg(feature = "legacy-threads")]
    legacy: bool,
}

/// One protocol message as seen by the (optional) trace recorder.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Cycle the message entered the network.
    pub cycle: u64,
    /// Sender.
    pub src: Endpoint,
    /// Receiver.
    pub dst: Endpoint,
    /// Block address.
    pub block: BlockAddr,
    /// Wire name (GETS, UPGRADE, INV, ...).
    pub name: &'static str,
}

/// A typed protocol-level abort: a controller raised a
/// [`ProtocolError`] mid-run. Mirrors [`post_drain_fetch_report`]'s
/// philosophy — the abort names the cycle and the last delivered
/// message so a fault-campaign failure is actionable, not just
/// "protocol error".
#[derive(Debug)]
pub struct SimAbort {
    /// The controller's typed error (row, controller, detail).
    pub error: ProtocolError,
    /// Cycle at which the error was raised.
    pub cycle: u64,
    /// Human-readable form of the last message the engine delivered
    /// before the abort (`"<none>"` if nothing was delivered yet).
    pub last_msg: String,
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol error at cycle {} (last delivered message: {}): {}",
            self.cycle, self.last_msg, self.error
        )
    }
}

impl std::error::Error for SimAbort {}

/// A completed simulation: the report plus functional access to the final
/// coherent memory image (owned lines flushed through the protocol's
/// semantics — GS/GI contents forfeited).
pub struct FinishedRun {
    /// Timing, traffic, energy and protocol statistics.
    pub report: SimReport,
    /// Message trace, if [`Machine::enable_trace`] was called.
    pub trace: Vec<TraceEntry>,
    /// Cycle-attribution profile, if [`Machine::enable_profiling`] was
    /// called. Never feeds into [`FinishedRun::report`] or its stats
    /// JSON — profiled and unprofiled runs are byte-identical there.
    pub profile: Option<Profile>,
    dram: Dram,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        config.validate();
        Self {
            config,
            faults: FaultConfig::default(),
            injections: Vec::new(),
            energy_model: EnergyModel::default(),
            dram: Dram::new(),
            alloc_cursor: 0x1_0000,
            programs: Vec::new(),
            trace: false,
            profiling: false,
            fuse_replies: true,
            #[cfg(feature = "legacy-threads")]
            legacy: false,
        }
    }

    /// Disables the fused reply→fetch fast path, forcing every core
    /// resume through the event queue as separate deliver + fetch
    /// events. A diagnostic switch for differential testing — fused and
    /// unfused runs must produce byte-identical results. Like
    /// [`Machine::enable_profiling`], this is deliberately a runtime
    /// switch rather than a config field so the config cache key is
    /// unaffected.
    pub fn disable_reply_fusion(&mut self) {
        self.fuse_replies = false;
    }

    /// Installs a fault-injection configuration. Like profiling, this
    /// is a runtime switch, not a [`MachineConfig`] field: the config
    /// cache key is unaffected, and campaign cache keys append
    /// [`FaultConfig::key`] themselves. The default (all-off) config
    /// leaves every run byte-identical to a fault-unaware build.
    pub fn set_faults(&mut self, faults: FaultConfig) {
        self.faults = faults;
    }

    /// Byzantine-injection hook: delivers an arbitrary `msg` to its
    /// destination at `cycle`, bypassing the network model — as a buggy
    /// or hostile controller would. Pair with [`Machine::try_run`] to
    /// observe the typed [`SimAbort`] instead of a panic.
    pub fn inject_at(&mut self, cycle: u64, msg: Msg) {
        self.injections.push((cycle, msg));
    }

    /// Turns on the cycle-attribution profiler (see [`crate::prof`]).
    /// A runtime switch, not a config field: the machine's cache key is
    /// derived from its [`MachineConfig`], and profiling must never
    /// change what a run computes — only observe it.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// Runs this machine's threads on the retired OS-thread rendezvous
    /// engine instead of the resumable-core engine — the differential-
    /// testing oracle. Both engines must produce byte-identical results;
    /// nothing about the simulated machine changes (in particular the
    /// config cache key is unaffected).
    #[cfg(feature = "legacy-threads")]
    pub fn use_legacy_engine(&mut self) {
        self.legacy = true;
    }

    /// Records every protocol message into [`FinishedRun::trace`]. Only
    /// for small scripted scenarios (Figs. 4/5); large runs produce huge
    /// traces.
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Overrides the energy model (defaults to the CACTI/DSENT-class
    /// constants).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy_model = model;
    }

    /// Allocates `bytes` of simulated memory at the given power-of-two
    /// alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two());
        self.alloc_cursor = (self.alloc_cursor + align - 1) & !(align - 1);
        let addr = Addr(self.alloc_cursor);
        self.alloc_cursor += bytes.max(1);
        addr
    }

    /// Allocates a region padded out to whole cache blocks — the paper's
    /// compiler pads annotated structures so a block never mixes
    /// approximate and non-approximate data (§3.1).
    pub fn alloc_padded(&mut self, bytes: u64) -> Addr {
        let b = BLOCK_BYTES as u64;
        let padded = bytes.div_ceil(b) * b;
        self.alloc(padded, b)
    }

    /// Functional pre-run write of raw bytes (input loading).
    pub fn backdoor_write(&mut self, addr: Addr, bytes: &[u8]) {
        self.dram.backdoor_write(addr, bytes);
    }

    /// Functional typed input helpers.
    pub fn backdoor_write_u32s(&mut self, base: Addr, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.dram
                .backdoor_write_word(base.add(4 * i as u64), 4, *v as u64);
        }
    }

    /// Writes a slice of `i32` inputs.
    pub fn backdoor_write_i32s(&mut self, base: Addr, values: &[i32]) {
        for (i, v) in values.iter().enumerate() {
            self.dram
                .backdoor_write_word(base.add(4 * i as u64), 4, *v as u32 as u64);
        }
    }

    /// Writes a slice of `f32` inputs (bit patterns).
    pub fn backdoor_write_f32s(&mut self, base: Addr, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.dram
                .backdoor_write_word(base.add(4 * i as u64), 4, v.to_bits() as u64);
        }
    }

    /// Writes a slice of `f64` inputs (bit patterns).
    pub fn backdoor_write_f64s(&mut self, base: Addr, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.dram
                .backdoor_write_word(base.add(8 * i as u64), 8, v.to_bits());
        }
    }

    /// Writes a slice of bytes-per-element `u8` inputs.
    pub fn backdoor_write_u8s(&mut self, base: Addr, values: &[u8]) {
        self.dram.backdoor_write(base, values);
    }

    /// Adds a simulated thread. Thread `i` runs on core `i`.
    ///
    /// The closure receives its [`ThreadCtx`] and returns the thread's
    /// `async` body; every ctx operation is awaited:
    ///
    /// ```ignore
    /// m.add_thread(move |ctx| async move {
    ///     let v = ctx.load_u32(a).await;
    ///     ctx.store_u32(a, v + 1).await;
    /// });
    /// ```
    pub fn add_thread<F, Fut>(&mut self, f: F)
    where
        F: FnOnce(ThreadCtx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + 'static,
    {
        assert!(
            self.programs.len() < self.config.cores,
            "more threads than cores"
        );
        self.programs.push(Box::new(move |ctx| Box::pin(f(ctx))));
    }

    /// Runs the simulation to completion and returns the report plus the
    /// final coherent memory image.
    ///
    /// # Panics
    /// Panics with the [`SimAbort`] report on a protocol error — under
    /// fault injection prefer [`Machine::try_run`].
    pub fn run(self) -> FinishedRun {
        self.try_run().unwrap_or_else(|abort| panic!("{abort}"))
    }

    /// Runs the simulation, surfacing protocol-level aborts as a typed
    /// [`SimAbort`] (cycle, last delivered message, controller error)
    /// instead of a panic. Workload panics still unwind.
    pub fn try_run(self) -> Result<FinishedRun, SimAbort> {
        assert!(!self.programs.is_empty(), "no threads to run");
        #[cfg(feature = "legacy-threads")]
        let legacy = self.legacy;
        #[cfg(not(feature = "legacy-threads"))]
        let legacy = false;
        let mut engine = Engine::new(
            self.config,
            self.energy_model,
            self.dram,
            self.programs,
            legacy,
            self.profiling,
            self.fuse_replies,
            self.faults,
            self.injections,
        );
        engine.trace = self.trace.then(Vec::new);
        engine.run()
    }
}

impl FinishedRun {
    /// Reads raw bytes from the final coherent memory image.
    pub fn read(&self, addr: Addr, out: &mut [u8]) {
        self.dram.backdoor_read(addr, out);
    }

    /// Reads one `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        self.dram.backdoor_read_word(addr, 4) as u32
    }

    /// Reads one `i32`.
    pub fn read_i32(&self, addr: Addr) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Reads one `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.dram.backdoor_read_word(addr, 8)
    }

    /// Reads one `i64`.
    pub fn read_i64(&self, addr: Addr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Reads one `f32`.
    pub fn read_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Reads one `f64`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Reads `n` consecutive `f32`s.
    pub fn read_f32s(&self, base: Addr, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| self.read_f32(base.add(4 * i as u64)))
            .collect()
    }

    /// Reads `n` consecutive `f64`s.
    pub fn read_f64s(&self, base: Addr, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.read_f64(base.add(8 * i as u64)))
            .collect()
    }

    /// Canonical fingerprint of the final coherent memory image (see
    /// [`Dram::image_fingerprint`]): equal fingerprints mean byte-equal
    /// memory. Used by the cross-protocol differential suite, where
    /// every base protocol must agree on the image while traffic stats
    /// may differ.
    pub fn memory_fingerprint(&self) -> u64 {
        self.dram.image_fingerprint()
    }

    /// Reads `n` consecutive `i32`s.
    pub fn read_i32s(&self, base: Addr, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.read_i32(base.add(4 * i as u64)))
            .collect()
    }

    /// Reads `n` consecutive `u32`s.
    pub fn read_u32s(&self, base: Addr, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(base.add(4 * i as u64)))
            .collect()
    }

    /// Reads `n` consecutive `i64`s.
    pub fn read_i64s(&self, base: Addr, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| self.read_i64(base.add(8 * i as u64)))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Ev {
    /// Core ready for its thread's next operation.
    Fetch { core: usize },
    /// Network delivery of the pooled message in this slot.
    ///
    /// Carrying a slot index instead of the `Msg` itself keeps heap
    /// entries at a fixed 16-ish bytes: `Msg` embeds a 64-byte
    /// `BlockData` payload in its `Data`/`MemData`/`PutM` variants,
    /// and cloning that through every push/pop/sift of the binary heap
    /// dominated the delivery path.
    Deliver(u32),
    /// Periodic GI timeout sweep for one L1 controller.
    GiTick { core: usize },
    /// Periodic context switch on one core (§3.5 forfeit).
    ContextSwitch { core: usize },
    /// Recovery timeout check: if core `core` still has request `seq`
    /// outstanding after `attempt` retries, fire the retry row. Stale
    /// checks (the request completed, or a newer check superseded this
    /// one) are no-ops.
    RetryCheck { core: usize, seq: u32, attempt: u32 },
    /// Background fault tick: resident-line bit flips and GI-timeout
    /// storms, every [`FaultConfig::tick_cycles`].
    FaultTick,
}

/// Arena for in-flight protocol messages: `Ev::Deliver` carries an index
/// into `slots`, and a slot is recycled onto the free list the moment its
/// message is delivered. In-flight count is bounded by outstanding
/// transactions, so the arena stays small and hot. Slots hold the
/// control-plane [`CtlMsg`] form — block data lives in the engine's
/// [`DataPool`], so control messages cost no data movement here.
#[derive(Default)]
struct MsgPool {
    slots: Vec<Option<CtlMsg>>,
    free: Vec<u32>,
}

impl MsgPool {
    fn alloc(&mut self, msg: CtlMsg) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(msg);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("message pool overflow");
                self.slots.push(Some(msg));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> CtlMsg {
        let msg = self.slots[slot as usize]
            .take()
            .expect("double delivery of pooled message");
        self.free.push(slot);
        msg
    }

    /// Number of live (undelivered) messages.
    #[cfg(test)]
    fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

thread_local! {
    /// Recycled event queue: `crates/exp` sweeps run thousands of cells
    /// per worker thread, and handing the drained heap from one machine
    /// to the next avoids re-growing it every run.
    static QUEUE_SCRATCH: std::cell::RefCell<Option<EventQueue<Ev>>> =
        const { std::cell::RefCell::new(None) };
}

fn take_scratch_queue() -> EventQueue<Ev> {
    QUEUE_SCRATCH
        .with(|s| s.borrow_mut().take())
        .unwrap_or_else(|| EventQueue::with_capacity(1024))
}

fn recycle_queue(mut q: EventQueue<Ev>) {
    q.clear();
    QUEUE_SCRATCH.with(|s| *s.borrow_mut() = Some(q));
}

/// Diagnostic for a core fetch event surviving into the post-completion
/// drain (a wedged or double-scheduled thread): names the core, the
/// drain cycle, and the last operation the core issued, so the report
/// is actionable rather than just "core N".
fn post_drain_fetch_report(core: usize, cycle: u64, last_op: &str) -> String {
    format!(
        "fetch for core {core} after all threads finished \
         (at cycle {cycle}; core {core}'s last issued op was `{last_op}`)"
    )
}

/// The engine's view of its simulated cores: step one core, get its next
/// operation (or completion).
enum Cores {
    /// Default engine: each thread is a resumable state machine stepped
    /// with a plain function call — no OS threads, no channels.
    Resumable(Vec<FutureThread<ThreadOp, ThreadReply>>),
    /// Differential-testing oracle (`legacy-threads` feature): the same
    /// workload futures driven by a per-core OS thread rendezvousing
    /// over the retired channel harness.
    #[cfg(feature = "legacy-threads")]
    Legacy(ThreadHarness<Step<ThreadOp>, ThreadReply>),
}

impl Cores {
    fn resumable(programs: Vec<Program>) -> Self {
        Cores::Resumable(
            programs
                .into_iter()
                .enumerate()
                .map(|(tid, f)| FutureThread::new(move |cell| f(ThreadCtx::new(cell, tid))))
                .collect(),
        )
    }

    #[cfg(feature = "legacy-threads")]
    fn legacy(programs: Vec<Program>) -> Self {
        let mut harness = ThreadHarness::new();
        for (tid, f) in programs.into_iter().enumerate() {
            harness.spawn(
                move |port| {
                    // Mini block-on loop: drive the same workload future
                    // the resumable engine would, but forward each step
                    // through the rendezvous channels.
                    let mut thread = FutureThread::new(move |cell| f(ThreadCtx::new(cell, tid)));
                    let mut reply = None;
                    loop {
                        match thread.resume(reply.take()) {
                            Step::Op(op) => reply = Some(port.call(Step::Op(op))),
                            // Re-panic so the harness's unwind capture
                            // carries the message in the exit marker.
                            Step::Done(Some(msg)) => std::panic::panic_any(msg),
                            Step::Done(None) => break,
                        }
                    }
                },
                Step::Done,
            );
        }
        Cores::Legacy(harness)
    }

    #[cfg(not(feature = "legacy-threads"))]
    fn legacy(_: Vec<Program>) -> Self {
        unreachable!("legacy engine requires the `legacy-threads` feature")
    }

    /// Feeds `reply` to core `core`'s previous operation and returns its
    /// next step. Mirrors the old reply-then-next_op rendezvous exactly.
    fn resume(&mut self, core: usize, reply: Option<ThreadReply>) -> Step<ThreadOp> {
        match self {
            Cores::Resumable(threads) => threads[core].resume(reply),
            #[cfg(feature = "legacy-threads")]
            Cores::Legacy(harness) => {
                if let Some(r) = reply {
                    harness.reply(core, r);
                }
                harness.next_op(core)
            }
        }
    }

    fn join(&mut self) {
        match self {
            Cores::Resumable(_) => {}
            #[cfg(feature = "legacy-threads")]
            Cores::Legacy(harness) => harness.join_all(),
        }
    }
}

struct Engine {
    cfg: MachineConfig,
    energy_model: EnergyModel,
    mesh: Mesh,
    corners: Vec<NodeId>,
    queue: EventQueue<Ev>,
    cores: Cores,
    l1s: Vec<L1Cache>,
    banks: Vec<DirBank>,
    dram: Dram,
    /// Machine-global statistics (network, directory, memory, barriers).
    stats: Stats,
    /// Per-core statistics (each L1's activity), merged into the total at
    /// the end of the run.
    core_stats: Vec<Stats>,
    /// Reply owed to each thread, delivered at its next Fetch.
    pending_reply: Vec<Option<ThreadReply>>,
    /// One-slot deferral buffer for the fused reply→fetch fast path:
    /// the core resume owed to a just-completed operation, held out of
    /// the event queue. If nothing else is scheduled before it, the
    /// event loop dispatches it inline (no wheel push/pop); any other
    /// push flushes it into the queue first, which preserves the exact
    /// FIFO-within-a-cycle order of the unfused engine (see
    /// [`Engine::defer_fetch`]).
    pending_fetch: Option<(u64, usize)>,
    /// False only under [`Machine::disable_reply_fusion`].
    fuse_replies: bool,
    /// Active approximate region d-distance per core.
    approx_d: Vec<Option<u8>>,
    threads: usize,
    finished: Vec<bool>,
    finish_time: Vec<u64>,
    n_finished: usize,
    /// Barrier arrival time per waiting core.
    barrier_wait: Vec<Option<u64>>,
    gi_timeout: Option<u64>,
    trace: Option<Vec<TraceEntry>>,
    /// Cycle at which each directional link is next free, indexed by the
    /// mesh's dense link id. Only used when `model_contention` is on.
    link_free: Vec<u64>,
    /// Name of the last operation each core issued (wedged-thread
    /// diagnostics).
    last_op: Vec<&'static str>,
    /// Arena for in-flight message payloads (see [`MsgPool`]).
    pool: MsgPool,
    /// Side pool of in-flight message block data (see [`DataPool`]).
    data: DataPool,
    /// Reusable outbox for L1 controller calls.
    l1_scratch: Vec<L1Out>,
    /// Reusable outbox for directory controller calls.
    dir_scratch: Vec<Msg>,
    /// Cycle-attribution profiler; `None` unless enabled on the machine.
    prof: Option<Box<Profiler>>,
    /// Fault-injection configuration (all-off by default).
    faults: FaultConfig,
    /// Counter of faultable/corruptible messages seen, indexing the
    /// per-message decision streams.
    msg_n: u64,
    /// Counter of background fault ticks fired.
    fault_tick_n: u64,
    /// Last message delivered, for [`SimAbort`] reports.
    last_delivered: Option<(&'static str, Endpoint, Endpoint, BlockAddr)>,
    /// Core currently inside `Cores::resume`, if any. `resume` carries
    /// no unwind guard of its own (a per-poll `catch_unwind` costs real
    /// throughput — see `ghostwriter_sim::resume`), so the event loop
    /// installs one guard per run and uses this to tell a workload
    /// panic (re-labelled with the core id) from an engine bug
    /// (re-raised untouched).
    resuming: Option<usize>,
}

impl Engine {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: MachineConfig,
        energy_model: EnergyModel,
        dram: Dram,
        programs: Vec<Program>,
        legacy: bool,
        profiling: bool,
        fuse_replies: bool,
        faults: FaultConfig,
        injections: Vec<(u64, Msg)>,
    ) -> Self {
        let (w, h) = Mesh::dims_for(cfg.cores);
        let mesh = Mesh::new(w, h, cfg.router_cycles, cfg.link_cycles);
        let corners = mesh.corners();
        let l1_sets = cfg.l1_kb * 1024 / BLOCK_BYTES / cfg.l1_ways;
        let l2_sets = cfg.l2_bank_kb * 1024 / BLOCK_BYTES / cfg.l2_ways;
        let gw = match cfg.protocol {
            Protocol::Mesi => None,
            Protocol::Ghostwriter(g) => Some(GwParams {
                scribe: g.scribe,
                enable_gs: g.enable_gs,
                enable_gi: g.enable_gi,
                gi_stores: g.gi_stores,
                max_hidden_writes: g.max_hidden_writes,
            }),
        };
        let gi_timeout = match cfg.protocol {
            Protocol::Ghostwriter(g) => Some(g.gi_timeout),
            Protocol::Mesi => None,
        };
        let mut l1s: Vec<L1Cache> = (0..cfg.cores)
            .map(|c| {
                L1Cache::new(
                    c,
                    l1_sets,
                    cfg.l1_ways,
                    cfg.cores,
                    cfg.base_protocol,
                    gw,
                    cfg.collect_similarity,
                )
            })
            .collect();
        let mut banks: Vec<DirBank> = (0..cfg.cores)
            .map(|b| DirBank::with_base(b, l2_sets, cfg.l2_ways, corners.len(), cfg.base_protocol))
            .collect();
        if let Some(rec) = faults.recovery {
            for l1 in &mut l1s {
                l1.set_recovery(rec);
            }
            for bank in &mut banks {
                bank.set_recovery(rec);
            }
        }

        let threads = programs.len();
        let cores = if legacy {
            Cores::legacy(programs)
        } else {
            Cores::resumable(programs)
        };
        let link_free = vec![0u64; mesh.num_links()];

        let mut eng = Self {
            energy_model,
            mesh,
            corners,
            queue: take_scratch_queue(),
            cores,
            l1s,
            banks,
            dram,
            stats: Stats::default(),
            core_stats: (0..cfg.cores).map(|_| Stats::default()).collect(),
            pending_reply: vec![None; cfg.cores],
            pending_fetch: None,
            fuse_replies,
            approx_d: vec![None; cfg.cores],
            threads,
            finished: vec![false; cfg.cores],
            finish_time: vec![0; cfg.cores],
            n_finished: 0,
            barrier_wait: vec![None; cfg.cores],
            gi_timeout,
            trace: None,
            link_free,
            last_op: vec!["<none>"; cfg.cores],
            pool: MsgPool::default(),
            data: DataPool::default(),
            l1_scratch: Vec::new(),
            dir_scratch: Vec::new(),
            prof: profiling.then(|| Box::new(Profiler::new(cfg.cores))),
            faults,
            msg_n: 0,
            fault_tick_n: 0,
            last_delivered: None,
            resuming: None,
            cfg,
        };
        // Byzantine injections bypass the network model: the message is
        // interned and scheduled for direct delivery at its cycle.
        for (cycle, msg) in injections {
            let slot = eng.pool.alloc(msg.intern(&mut eng.data));
            eng.queue.push(cycle, Ev::Deliver(slot));
        }
        eng
    }

    fn node_of(&self, ep: Endpoint) -> NodeId {
        match ep {
            Endpoint::L1(i) => NodeId(i),
            Endpoint::Dir(b) => NodeId(b),
            Endpoint::Mem(m) => self.corners[m],
        }
    }

    /// Wraps a controller's [`ProtocolError`] into the typed abort,
    /// attaching the cycle and the last delivered message.
    fn abort(&self, error: ProtocolError) -> SimAbort {
        let last_msg = match self.last_delivered {
            Some((name, src, dst, block)) => {
                format!("{name} {src:?} -> {dst:?} ({block:?})")
            }
            None => "<none>".to_string(),
        };
        SimAbort {
            error,
            cycle: self.queue.now(),
            last_msg,
        }
    }

    /// Fault-injection chokepoint: every message leaves through here.
    /// Transport faults (drop/duplicate/delay) apply to the unreliable
    /// request/grant classes; payload corruption to demand and DRAM
    /// fills, flipping a real bit and setting the taint bit. All draws
    /// are counter-based, so a given (seed, rates) schedule is
    /// identical regardless of wall-clock or thread interleaving.
    fn send(&mut self, mut msg: Msg, mut extra_delay: u64) {
        if self.faults.perturbs_messages() {
            // Transport and corruption are independent fault classes: a
            // directory grant (`Data` from Dir) is on BOTH surfaces, so
            // the two draws must not shadow each other. One counter
            // value per faultable message; the decision streams are
            // independent, so skipping the corruption draw of a dropped
            // message never perturbs any other message's draws.
            let droppable = fault::droppable(msg.src, &msg.payload);
            let corruptible = fault::corruptible(msg.src, &msg.payload);
            if droppable || corruptible {
                let n = self.msg_n;
                self.msg_n += 1;
                if droppable {
                    match self.faults.fate(n) {
                        Fate::Deliver => {}
                        Fate::Drop => {
                            self.stats.faults_dropped += 1;
                            return;
                        }
                        Fate::Duplicate => {
                            // The copy is a separate wire event and is
                            // delivered unperturbed; only the original
                            // below can additionally be tainted.
                            self.stats.faults_duplicated += 1;
                            self.send_one(msg.clone(), extra_delay);
                        }
                        Fate::Delay(d) => {
                            self.stats.faults_delayed += 1;
                            extra_delay += d;
                        }
                    }
                }
                if corruptible {
                    if let Some(bit) = self.faults.corrupt_bit(n) {
                        let flipped = match &mut msg.payload {
                            Payload::Data { data, .. } | Payload::MemData { data } => {
                                data.as_bytes_mut()[(bit / 8) as usize] ^= 1 << (bit % 8);
                                true
                            }
                            _ => false,
                        };
                        if flipped {
                            msg.tag.tainted = true;
                            self.stats.faults_corrupted += 1;
                        }
                    }
                }
            }
        }
        self.send_one(msg, extra_delay);
    }

    /// Routes a message: records traffic, computes latency, schedules
    /// delivery `extra_delay` (the sender's access time) later. The
    /// message is interned in the pool; the heap only carries its slot.
    fn send_one(&mut self, msg: Msg, extra_delay: u64) {
        if let Some(p) = self.prof.as_mut() {
            p.begin_span(Phase::Routing);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                cycle: self.queue.now(),
                src: msg.src,
                dst: msg.dst,
                block: msg.block,
                name: msg.payload.name(),
            });
        }
        let src = self.node_of(msg.src);
        let dst = self.node_of(msg.dst);
        let latency = self
            .stats
            .traffic
            .record(&self.mesh, msg.payload.kind(), src, dst);
        let delay = if self.cfg.model_contention {
            self.contended_latency(msg.payload.kind().flits(), src, dst, extra_delay)
        } else {
            extra_delay + latency
        };
        let slot = self.pool.alloc(msg.intern(&mut self.data));
        self.sched_after(delay, Ev::Deliver(slot));
        if let Some(p) = self.prof.as_mut() {
            p.end_span();
            p.route(delay);
        }
    }

    /// Wormhole-ish contention model: each directional link serializes
    /// one flit per `link_cycles`; a message's head flit queues behind
    /// earlier traffic on every link of its XY route, and delivery
    /// completes when the tail flit arrives.
    fn contended_latency(&mut self, flits: u64, src: NodeId, dst: NodeId, extra: u64) -> u64 {
        let start = self.queue.now() + extra;
        // Injection through the local router.
        let mut head = start + self.cfg.router_cycles;
        for link in self.mesh.route_links(src, dst) {
            let begin = head.max(self.link_free[link]);
            // The link is busy until the tail flit has crossed.
            self.link_free[link] = begin + flits * self.cfg.link_cycles;
            // Head flit reaches the next router and traverses it.
            head = begin + self.cfg.link_cycles + self.cfg.router_cycles;
        }
        // Tail flit trails the head by (flits - 1) link cycles.
        let done = head + (flits - 1) * self.cfg.link_cycles;
        done - self.queue.now()
    }

    /// Defers `Ev::Fetch { core }` at `now + delay` into the one-slot
    /// fusion buffer instead of the event queue.
    ///
    /// Ordering is preserved exactly: every *other* queue push goes
    /// through [`Engine::flush_pending_fetch`] first, so by the time
    /// any event could be pushed after the deferred fetch, the fetch
    /// has already claimed its place in the queue — its seq relative to
    /// all other events is the same as an immediate push would have
    /// produced. The payoff is the common case where nothing else
    /// happens before the fetch: the event loop dispatches it inline
    /// and the wheel is never touched.
    #[inline]
    fn defer_fetch(&mut self, delay: u64, core: usize) {
        if !self.fuse_replies {
            self.queue.push_after(delay, Ev::Fetch { core });
            return;
        }
        self.flush_pending_fetch();
        self.pending_fetch = Some((self.queue.now() + delay, core));
    }

    /// Moves the deferred fetch (if any) into the event queue. Must be
    /// called before any other queue push — see [`Engine::defer_fetch`].
    #[inline]
    fn flush_pending_fetch(&mut self) {
        if let Some((t, core)) = self.pending_fetch.take() {
            self.queue.push(t, Ev::Fetch { core });
        }
    }

    /// Schedules a non-fetch event, flushing the deferred fetch first
    /// so queue order matches the unfused engine.
    #[inline]
    fn sched_after(&mut self, delay: u64, ev: Ev) {
        self.flush_pending_fetch();
        self.queue.push_after(delay, ev);
    }

    /// Drains `outs` (a reusable scratch buffer) into replies and sends.
    fn apply_l1_outs(&mut self, core: usize, outs: &mut Vec<L1Out>) {
        let mut sent = false;
        for out in outs.drain(..) {
            match out {
                L1Out::Reply { value } => {
                    self.pending_reply[core] = Some(value);
                    self.defer_fetch(self.cfg.l1_latency, core);
                }
                L1Out::Send(msg) => {
                    sent = true;
                    self.send(msg, self.cfg.l1_latency);
                }
            }
        }
        if sent {
            self.arm_retry(core);
        }
    }

    /// Arms the recovery timeout for `core`'s outstanding tagged
    /// request, if any: a [`Ev::RetryCheck`] fires after the backoff
    /// deadline and is a no-op unless the same (seq, attempt) is still
    /// pending — completed or already-retried requests make it stale.
    fn arm_retry(&mut self, core: usize) {
        let Some(rec) = self.faults.recovery else {
            return;
        };
        let Some(seq) = self.l1s[core].pending_seq() else {
            return;
        };
        let attempt = self.l1s[core].retries_used();
        let deadline =
            rec.timeout_cycles.max(1) * u64::from(rec.backoff_base.max(1)).pow(attempt.min(16));
        self.sched_after(deadline, Ev::RetryCheck { core, seq, attempt });
    }

    fn run(mut self) -> Result<FinishedRun, SimAbort> {
        // One unwind guard for the WHOLE run (never per poll — see the
        // `resuming` field docs): a panic raised while a core was being
        // resumed is a workload panic and gets re-labelled with the
        // core; anything else is an engine bug and re-raised as-is.
        let looped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.event_loop()));
        match looped {
            Err(payload) => {
                if let Some(core) = self.resuming {
                    panic!(
                        "simulated thread {core} panicked: {}",
                        ghostwriter_sim::panic_message(payload)
                    );
                }
                std::panic::resume_unwind(payload);
            }
            Ok(Err(abort)) => return Err(abort),
            Ok(Ok(())) => {}
        }

        // Per-core summaries, then fold every core's counters into the
        // machine total.
        let per_core: Vec<CoreSummary> = (0..self.threads)
            .map(|c| {
                let s = &self.core_stats[c];
                CoreSummary {
                    ops: s.loads + s.stores + s.scribbles,
                    l1_hits: s.l1_load_hits + s.l1_store_hits,
                    l1_misses: s.l1_misses(),
                    approx_serviced: s.serviced_by_gs
                        + s.gs_hits
                        + s.serviced_by_gi
                        + s.gi_store_hits,
                    finish_cycle: self.finish_time[c],
                }
            })
            .collect();
        for cs in &self.core_stats {
            self.stats.merge_from(cs);
        }
        // Fold NoC traffic into the energy events.
        self.stats.energy_events.router_flits = self.stats.traffic.router_flits();
        self.stats.energy_events.link_flit_hops = self.stats.traffic.flit_hops();

        let cycles = self
            .finish_time
            .iter()
            .take(self.threads)
            .copied()
            .max()
            .unwrap_or(0);
        let report = SimReport::new(
            cycles,
            self.finish_time[..self.threads].to_vec(),
            self.stats,
            &self.energy_model,
        )
        .with_per_core(per_core);
        Ok(FinishedRun {
            report,
            trace: self.trace.take().unwrap_or_default(),
            profile: self.prof.take().map(|p| p.finish()),
            dram: self.dram,
        })
    }

    /// The event loop proper: seeds the initial events, drains the
    /// queue until every thread finishes, then drains in-flight
    /// protocol traffic. Split out of [`Engine::run`] so the run-level
    /// unwind guard wraps exactly the code that can raise a workload
    /// panic.
    fn event_loop(&mut self) -> Result<(), SimAbort> {
        for core in 0..self.threads {
            self.queue.push(0, Ev::Fetch { core });
        }
        if self.faults.ticks() {
            self.queue.push(self.faults.tick_cycles, Ev::FaultTick);
        }
        if let Some(t) = self.gi_timeout {
            for core in 0..self.cfg.cores {
                self.queue.push(t, Ev::GiTick { core });
            }
        }
        if let Some(p) = self.cfg.context_switch_period {
            for core in 0..self.cfg.cores {
                // Stagger switches across cores like an OS tick would.
                self.queue.push(p + core as u64, Ev::ContextSwitch { core });
            }
        }
        // Events of one cycle are popped as a batch and dispatched
        // back-to-back: pushes made while the batch is handled carry
        // larger seq numbers, so this is exactly the pop-at-a-time
        // order without a heap query per event. The clock advance into
        // each batch is charged to the batch's first event when the
        // profiler is on.
        let mut batch: Vec<Ev> = Vec::new();
        while self.n_finished < self.threads {
            // Fused reply→fetch fast path: when the deferred core
            // resume precedes everything queued, dispatch it inline —
            // the wheel is never pushed or popped for the per-op
            // round trip. Otherwise restore it to the queue so strict
            // (time, push-order) dispatch is preserved.
            if let Some((t, core)) = self.pending_fetch {
                if self.queue.peek_time().is_none_or(|qt| qt > t) {
                    self.pending_fetch = None;
                    let delta = t - self.queue.now();
                    self.queue.advance_to(t);
                    self.dispatch(Ev::Fetch { core }, delta)?;
                    continue;
                }
                self.flush_pending_fetch();
            }
            let prev = self.queue.now();
            let Some(time) = self.queue.pop_batch(&mut batch) else {
                panic!(
                    "simulation deadlock: {}/{} threads finished, waiting at barrier: {:?}",
                    self.n_finished,
                    self.threads,
                    self.barrier_wait
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| w.is_some())
                        .map(|(c, _)| c)
                        .collect::<Vec<_>>()
                );
            };
            let mut delta = time - prev;
            for ev in batch.drain(..) {
                self.dispatch(ev, delta)?;
                delta = 0;
            }
        }
        // Drain in-flight writebacks and acknowledgements. A fetch here
        // means every thread finished yet a core still wants to resume —
        // a wedged or double-scheduled thread. A deferred fetch is
        // flushed first so the same diagnostic catches it.
        self.flush_pending_fetch();
        if let Some(p) = self.prof.as_mut() {
            p.begin_drain();
        }
        loop {
            let prev = self.queue.now();
            let Some(time) = self.queue.pop_batch(&mut batch) else {
                break;
            };
            let mut delta = time - prev;
            for ev in batch.drain(..) {
                match ev {
                    Ev::GiTick { .. } | Ev::FaultTick => {}
                    Ev::Fetch { core } => panic!(
                        "{}",
                        post_drain_fetch_report(core, self.queue.now(), self.last_op[core])
                    ),
                    other => self.dispatch(other, delta)?,
                }
                delta = 0;
            }
        }
        for bank in &self.banks {
            assert!(bank.quiescent(), "bank not quiescent after drain");
        }
        self.flush();
        self.cores.join();
        recycle_queue(std::mem::take(&mut self.queue));
        Ok(())
    }

    /// Handles one event. `delta` is the clock advance this event is
    /// responsible for (nonzero only for the first event of a batch);
    /// it is consumed by the profiler and nothing else.
    fn dispatch(&mut self, ev: Ev, delta: u64) -> Result<(), SimAbort> {
        match ev {
            Ev::Fetch { core } => {
                if let Some(p) = self.prof.as_mut() {
                    p.begin_span(Phase::CoreStep);
                }
                self.fetch(core)?;
                if let Some(p) = self.prof.as_mut() {
                    p.end_span();
                    p.event(Phase::CoreStep, Component::Core(core), delta);
                }
            }
            Ev::Deliver(slot) => {
                let msg = self.pool.take(slot).resolve(&mut self.data);
                let (phase, component) = match msg.dst {
                    Endpoint::L1(c) => (Phase::L1Dispatch, Component::Core(c)),
                    Endpoint::Dir(b) => (Phase::DirDispatch, Component::Bank(b)),
                    Endpoint::Mem(_) => (Phase::Memory, Component::Mem),
                };
                if let Some(p) = self.prof.as_mut() {
                    p.begin_span(phase);
                }
                self.deliver(msg)?;
                if let Some(p) = self.prof.as_mut() {
                    p.end_span();
                    p.event(phase, component, delta);
                }
            }
            Ev::GiTick { core } => {
                if self.n_finished < self.threads {
                    if let Some(p) = self.prof.as_mut() {
                        p.begin_span(Phase::QueueChurn);
                    }
                    self.l1s[core]
                        .gi_timeout_sweep(&mut self.core_stats[core])
                        .map_err(|e| self.abort(e))?;
                    let t = self.gi_timeout.expect("tick without timeout");
                    self.sched_after(t, Ev::GiTick { core });
                    if let Some(p) = self.prof.as_mut() {
                        p.end_span();
                        p.event(Phase::QueueChurn, Component::Core(core), delta);
                    }
                }
            }
            Ev::ContextSwitch { core } => {
                if self.n_finished < self.threads {
                    if let Some(p) = self.prof.as_mut() {
                        p.begin_span(Phase::QueueChurn);
                    }
                    let mut outs = std::mem::take(&mut self.l1_scratch);
                    self.l1s[core]
                        .context_switch_forfeit_into(&mut self.core_stats[core], &mut outs)
                        .map_err(|e| self.abort(e))?;
                    self.apply_l1_outs(core, &mut outs);
                    self.l1_scratch = outs;
                    let p = self
                        .cfg
                        .context_switch_period
                        .expect("switch without period");
                    self.sched_after(p, Ev::ContextSwitch { core });
                    if let Some(p) = self.prof.as_mut() {
                        p.end_span();
                        p.event(Phase::QueueChurn, Component::Core(core), delta);
                    }
                }
            }
            Ev::RetryCheck { core, seq, attempt } => {
                let live = self.faults.recovery.is_some()
                    && self.l1s[core].pending_seq() == Some(seq)
                    && self.l1s[core].retries_used() == attempt;
                if live {
                    let mut outs = std::mem::take(&mut self.l1_scratch);
                    let fired = self.l1s[core]
                        .retry_pending_into(&mut self.core_stats[core], &mut outs)
                        .map_err(|e| self.abort(e))?;
                    debug_assert!(fired, "liveness gate implies a pending request");
                    // apply_l1_outs re-arms the check at the next
                    // backoff deadline via the resent request.
                    self.apply_l1_outs(core, &mut outs);
                    self.l1_scratch = outs;
                }
            }
            Ev::FaultTick => {
                if self.n_finished < self.threads {
                    let tick = self.fault_tick_n;
                    self.fault_tick_n += 1;
                    for core in 0..self.cfg.cores {
                        if let Some((nth, bit)) = self.faults.line_flip(tick, core) {
                            if self.l1s[core].corrupt_resident(nth, bit) {
                                self.stats.faults_line_flips += 1;
                            }
                        }
                        if self.gi_timeout.is_some() && self.faults.gi_storm(tick, core) {
                            self.stats.gi_storms += 1;
                            self.l1s[core]
                                .gi_timeout_sweep(&mut self.core_stats[core])
                                .map_err(|e| self.abort(e))?;
                        }
                    }
                    self.sched_after(self.faults.tick_cycles, Ev::FaultTick);
                }
            }
        }
        Ok(())
    }

    /// Steps thread `core`: feed it the owed reply, pull and dispatch
    /// its next operation — one plain function call on the default
    /// engine.
    fn fetch(&mut self, core: usize) -> Result<(), SimAbort> {
        let reply = self.pending_reply[core].take();
        let now = self.queue.now();
        // Two plain stores bracketing the resume tell the run-level
        // unwind guard which core a workload panic belongs to.
        self.resuming = Some(core);
        let step = self.cores.resume(core, reply);
        self.resuming = None;
        let op = match step {
            Step::Op(op) => op,
            Step::Done(panicked) => {
                if let Some(msg) = panicked {
                    // Legacy engine only: the OS-thread harness catches
                    // the unwind at thread scope and forwards the
                    // message through the exit marker.
                    panic!("simulated thread {core} panicked: {msg}");
                }
                self.finished[core] = true;
                self.finish_time[core] = now;
                self.n_finished += 1;
                // A thread exiting may complete a barrier episode.
                self.try_release_barrier();
                return Ok(());
            }
        };
        self.last_op[core] = op.name();
        match op {
            ThreadOp::Access {
                addr,
                size,
                kind,
                value,
            } => {
                let kind = match kind {
                    OpKind::Load => AccessKind::Load,
                    OpKind::Store => AccessKind::Store,
                    OpKind::Scribble => match (self.gi_timeout.is_some(), self.approx_d[core]) {
                        // Scribbles are real only under Ghostwriter inside
                        // an approximate region, and only when the
                        // d-distance is legal for the access width: the
                        // paper's compiler rejects e.g. 8-distance on
                        // byte data, which would admit any value (§3.1).
                        (true, Some(d)) if (d as u32) < 8 * size as u32 => {
                            AccessKind::Scribble { d }
                        }
                        _ => AccessKind::Store,
                    },
                };
                let req = CoreReq {
                    addr: Addr(addr),
                    size,
                    value,
                    kind,
                };
                let mut outs = std::mem::take(&mut self.l1_scratch);
                self.l1s[core]
                    .access_into(req, &mut self.core_stats[core], &mut outs)
                    .map_err(|e| self.abort(e))?;
                self.apply_l1_outs(core, &mut outs);
                self.l1_scratch = outs;
            }
            ThreadOp::Work(cycles) => {
                self.stats.work_cycles += cycles;
                self.pending_reply[core] = Some(0);
                self.defer_fetch(cycles.max(1), core);
            }
            ThreadOp::Barrier => {
                self.barrier_wait[core] = Some(now);
                self.try_release_barrier();
            }
            ThreadOp::ApproxBegin { d } => {
                self.approx_d[core] = Some(d);
                self.pending_reply[core] = Some(0);
                self.defer_fetch(1, core);
            }
            ThreadOp::ApproxEnd => {
                self.approx_d[core] = None;
                self.pending_reply[core] = Some(0);
                self.defer_fetch(1, core);
            }
        }
        Ok(())
    }

    /// Releases the barrier when every live thread has arrived. Two
    /// plain scans over the per-core arrays — this runs on every thread
    /// exit and barrier arrival, and used to collect the live set into
    /// a fresh `Vec` each time.
    fn try_release_barrier(&mut self) {
        let mut any_live = false;
        let mut arrive_max = 0;
        for c in 0..self.threads {
            if self.finished[c] {
                continue;
            }
            match self.barrier_wait[c] {
                Some(t) => {
                    any_live = true;
                    arrive_max = arrive_max.max(t);
                }
                None => return,
            }
        }
        if !any_live {
            return;
        }
        let release = arrive_max + self.cfg.barrier_cost;
        self.stats.barriers += 1;
        // Multiple cores resume at once: the one-slot fusion buffer
        // cannot hold them all, so these go through the queue.
        self.flush_pending_fetch();
        for c in 0..self.threads {
            if self.finished[c] {
                continue;
            }
            self.barrier_wait[c] = None;
            self.pending_reply[c] = Some(0);
            self.queue
                .push(release.max(self.queue.now()), Ev::Fetch { core: c });
        }
    }

    fn deliver(&mut self, msg: Msg) -> Result<(), SimAbort> {
        self.last_delivered = Some((msg.payload.name(), msg.src, msg.dst, msg.block));
        match msg.dst {
            Endpoint::L1(core) => {
                let mut outs = std::mem::take(&mut self.l1_scratch);
                self.l1s[core]
                    .handle_msg_into(msg, &mut self.core_stats[core], &mut outs)
                    .map_err(|e| self.abort(e))?;
                self.apply_l1_outs(core, &mut outs);
                self.l1_scratch = outs;
            }
            Endpoint::Dir(bank) => {
                let mut outs = std::mem::take(&mut self.dir_scratch);
                self.banks[bank]
                    .handle_msg_into(msg, &mut self.stats, &mut outs)
                    .map_err(|e| self.abort(e))?;
                for m in outs.drain(..) {
                    self.send(m, self.cfg.l2_latency);
                }
                self.dir_scratch = outs;
            }
            Endpoint::Mem(mc) => match msg.payload {
                Payload::MemRead => {
                    self.stats.dram_reads += 1;
                    self.stats.energy_events.dram_reads += 1;
                    let data = self.dram.read_block(msg.block);
                    self.send(
                        Msg {
                            src: Endpoint::Mem(mc),
                            dst: msg.src,
                            block: msg.block,
                            payload: Payload::MemData { data },
                            tag: WireTag::seq(msg.tag.seq),
                        },
                        self.cfg.dram_latency,
                    );
                }
                Payload::MemWrite { data } => {
                    self.stats.dram_writes += 1;
                    self.stats.energy_events.dram_writes += 1;
                    self.dram.write_block(msg.block, data);
                }
                ref p => panic!("memory controller got {}", p.name()),
            },
        }
        Ok(())
    }

    /// End-of-run functional flush (DESIGN.md §2): owned L1 lines are
    /// pushed down into the L2/DRAM; GS/GI contents are forfeited, exactly
    /// as invalidation/timeout would forfeit them. Produces the memory
    /// image a joining main thread would observe with coherent loads.
    fn flush(&mut self) {
        let mut deferred: VecDeque<(BlockAddr, ghostwriter_mem::BlockData)> = VecDeque::new();
        for l1 in &mut self.l1s {
            for (block, data) in l1.drain_owned() {
                deferred.push_back((block, data));
            }
        }
        for (block, data) in deferred {
            let bank = crate::l1::home_bank(block, self.banks.len());
            if self.banks[bank].peek_block(block).is_some() {
                self.banks[bank].flush_write(block, data);
            } else {
                self.dram.write_block(block, data);
            }
        }
        for bank in &mut self.banks {
            for (block, data) in bank.drain_dirty() {
                self.dram.write_block(block, data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    fn small(protocol: Protocol) -> Machine {
        Machine::new(MachineConfig::small(4, protocol))
    }

    #[test]
    fn single_thread_store_load_round_trip() {
        let mut m = small(Protocol::Mesi);
        let a = m.alloc_padded(64);
        m.add_thread(move |ctx| async move {
            ctx.store_u32(a, 0xDEAD_BEEF).await;
            let v = ctx.load_u32(a).await;
            assert_eq!(v, 0xDEAD_BEEF);
        });
        let run = m.run();
        assert_eq!(run.read_u32(a), 0xDEAD_BEEF);
        assert!(run.report.cycles > 0);
        assert_eq!(run.report.stats.loads, 1);
        assert_eq!(run.report.stats.stores, 1);
    }

    #[test]
    fn inputs_visible_through_caches() {
        let mut m = small(Protocol::Mesi);
        let a = m.alloc_padded(4 * 16);
        m.backdoor_write_i32s(a, &(0..16).collect::<Vec<i32>>());
        m.add_thread(move |ctx| async move {
            let mut sum = 0i64;
            for i in 0..16u64 {
                sum += ctx.load_i32(a.add(4 * i)).await as i64;
            }
            ctx.store_i64(a.add(64), sum).await;
        });
        let run = m.run();
        assert_eq!(run.read_i64(a.add(64)), 120);
    }

    #[test]
    fn two_threads_see_coherent_data_under_mesi() {
        let mut m = small(Protocol::Mesi);
        let flag = m.alloc_padded(64);
        let data = m.alloc_padded(64);
        // Producer writes data then flag; consumer spins on flag, reads
        // data. Under MESI this must always observe the new value.
        m.add_thread(move |ctx| async move {
            ctx.store_u64(data, 42).await;
            ctx.store_u32(flag, 1).await;
        });
        m.add_thread(move |ctx| async move {
            while ctx.load_u32(flag).await == 0 {
                ctx.work(10).await;
            }
            let v = ctx.load_u64(data).await;
            assert_eq!(v, 42);
            ctx.store_u64(data.add(8), v + 1).await;
        });
        let run = m.run();
        assert_eq!(run.read_u64(data.add(8)), 43);
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        let mut m = small(Protocol::Mesi);
        let out = m.alloc_padded(64 * 4);
        for t in 0..4usize {
            m.add_thread(move |ctx| async move {
                let slot = out.add(64 * t as u64);
                ctx.store_u32(slot, (t + 1) as u32).await;
                ctx.barrier().await;
                // After the barrier every thread's write is visible.
                let mut sum = 0;
                for s in 0..4u64 {
                    sum += ctx.load_u32(out.add(64 * s)).await;
                }
                ctx.store_u32(slot.add(16), sum).await;
            });
        }
        let run = m.run();
        for t in 0..4u64 {
            assert_eq!(run.read_u32(out.add(64 * t + 16)), 10);
        }
        assert_eq!(run.report.stats.barriers, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut m = small(Protocol::ghostwriter());
            let shared = m.alloc_padded(64);
            for t in 0..4usize {
                m.add_thread(move |ctx| async move {
                    ctx.approx_begin(4).await;
                    for i in 0..50u32 {
                        let a = shared.add(4 * t as u64);
                        let v = ctx.load_u32(a).await;
                        ctx.scribble_u32(a, v.wrapping_add(i % 3)).await;
                    }
                    ctx.approx_end().await;
                });
            }
            let r = m.run();
            (
                r.report.cycles,
                r.report.stats.traffic.total(),
                r.report.stats.serviced_by_gs,
                r.report.stats.serviced_by_gi,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fused_reply_fetch_matches_unfused_engine() {
        // The fusion fast path is pure mechanics: with it disabled,
        // every core resume rides the event queue as before, and the
        // run must be byte-identical — cycles, per-core finish times,
        // and the full stats JSON.
        let run = |fused: bool| {
            let mut m = small(Protocol::ghostwriter());
            if !fused {
                m.disable_reply_fusion();
            }
            let shared = m.alloc_padded(64 * 4);
            for t in 0..4usize {
                m.add_thread(move |ctx| async move {
                    ctx.approx_begin(4).await;
                    for i in 0..60u32 {
                        let a = shared.add(4 * t as u64);
                        let v = ctx.load_u32(a).await;
                        ctx.scribble_u32(a, v.wrapping_add(i % 5)).await;
                        if i % 16 == 7 {
                            ctx.work(3).await;
                        }
                        // Cross-core sharing keeps invalidations and
                        // forwarded data in flight around the fetches.
                        let b = shared.add(64 * ((t as u64 + 1) % 4));
                        let w = ctx.load_u32(b).await;
                        ctx.store_u32(b, w ^ i).await;
                    }
                    ctx.barrier().await;
                    ctx.approx_end().await;
                });
            }
            let r = m.run();
            (
                r.report.cycles,
                r.report.core_finish.clone(),
                r.report.stats.to_json().to_pretty(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[cfg(feature = "legacy-threads")]
    #[test]
    fn legacy_engine_matches_resumable_engine() {
        let run = |legacy: bool| {
            let mut m = small(Protocol::ghostwriter());
            if legacy {
                m.use_legacy_engine();
            }
            let shared = m.alloc_padded(64);
            for t in 0..4usize {
                m.add_thread(move |ctx| async move {
                    ctx.approx_begin(4).await;
                    for i in 0..50u32 {
                        let a = shared.add(4 * t as u64);
                        let v = ctx.load_u32(a).await;
                        ctx.scribble_u32(a, v.wrapping_add(i % 3)).await;
                    }
                    ctx.barrier().await;
                    ctx.approx_end().await;
                });
            }
            let r = m.run();
            (r.report.cycles, r.report.stats.to_json().to_pretty())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "simulated thread 0 panicked")]
    fn workload_panic_propagates() {
        let mut m = small(Protocol::Mesi);
        let a = m.alloc_padded(64);
        m.add_thread(move |ctx| async move {
            ctx.store_u32(a, 1).await;
            panic!("intentional");
        });
        m.run();
    }

    #[test]
    fn work_advances_time() {
        let mut m = small(Protocol::Mesi);
        let a = m.alloc_padded(64);
        m.add_thread(move |ctx| async move {
            ctx.work(10_000).await;
            ctx.store_u32(a, 1).await;
        });
        let run = m.run();
        assert!(run.report.cycles >= 10_000);
        assert_eq!(run.report.stats.work_cycles, 10_000);
    }

    #[test]
    fn msi_base_protocol_costs_upgrades_on_private_data() {
        use crate::config::BaseProtocol;
        let run = |base| {
            let mut cfg = MachineConfig::small(2, Protocol::Mesi);
            cfg.base_protocol = base;
            let mut m = Machine::new(cfg);
            let a = m.alloc_padded(64);
            m.add_thread(move |ctx| async move {
                // Load-then-store on private data: free under MESI
                // (E -> silent M), an UPGRADE under MSI.
                let v = ctx.load_u32(a).await;
                ctx.store_u32(a, v + 1).await;
            });
            let r = m.run();
            (r.report.stats.traffic.total(), r.read_u32(a))
        };
        let (mesi_msgs, mesi_v) = run(BaseProtocol::Mesi);
        let (msi_msgs, msi_v) = run(BaseProtocol::Msi);
        assert_eq!(mesi_v, 1);
        assert_eq!(msi_v, 1);
        assert!(
            msi_msgs > mesi_msgs,
            "MSI should pay for the upgrade: {msi_msgs} vs {mesi_msgs}"
        );
    }

    #[test]
    fn ghostwriter_layers_onto_msi() {
        use crate::config::BaseProtocol;
        // The paper's generality claim (§3.2): the approximate states
        // work on other invalidate protocols. Shared scribbles must be
        // serviced by GS on an MSI base too.
        let mut cfg = MachineConfig::small(2, Protocol::ghostwriter());
        cfg.base_protocol = BaseProtocol::Msi;
        let mut m = Machine::new(cfg);
        let a = m.alloc_padded(64);
        for t in 0..2u64 {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(4).await;
                let slot = a.add(4 * t);
                for i in 0..50u32 {
                    let v = ctx.load_u32(slot).await;
                    ctx.scribble_u32(slot, v + (i & 1)).await;
                }
                ctx.approx_end().await;
            });
        }
        let r = m.run();
        assert!(
            r.report.stats.serviced_by_gs > 0,
            "GS must engage on the MSI base"
        );
    }

    #[test]
    fn threads_know_their_ids() {
        let mut m = small(Protocol::Mesi);
        let out = m.alloc_padded(64 * 4);
        for _ in 0..4 {
            m.add_thread(move |ctx| async move {
                let slot = out.add(64 * ctx.tid() as u64);
                ctx.store_u32(slot, ctx.tid() as u32 + 1).await;
            });
        }
        let run = m.run();
        for t in 0..4u64 {
            assert_eq!(run.read_u32(out.add(64 * t)), t as u32 + 1);
        }
    }

    #[test]
    fn post_drain_fetch_report_names_core_cycle_and_op() {
        let msg = post_drain_fetch_report(3, 1234, "barrier");
        assert!(msg.contains("core 3"), "{msg}");
        assert!(msg.contains("cycle 1234"), "{msg}");
        assert!(msg.contains("`barrier`"), "{msg}");
        assert!(msg.contains("after all threads finished"), "{msg}");
    }

    #[test]
    fn mesi_and_demoted_scribbles_are_identical() {
        // Scribbles outside an approximate region are plain stores, so a
        // Ghostwriter run without approx_begin must match MESI exactly.
        let build = |protocol| {
            let mut m = small(protocol);
            let a = m.alloc_padded(256);
            for t in 0..4usize {
                m.add_thread(move |ctx| async move {
                    for i in 0..40u64 {
                        let addr = a.add(4 * t as u64 + 16 * (i % 4));
                        let v = ctx.load_u32(addr).await;
                        ctx.scribble_u32(addr, v + 1).await;
                    }
                });
            }
            let r = m.run();
            (r.report.cycles, r.report.stats.traffic.total())
        };
        assert_eq!(build(Protocol::Mesi), build(Protocol::ghostwriter()));
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    fn hot_spot_run(model_contention: bool) -> (u64, u64) {
        // Many cores hammer blocks homed at one bank: the links into
        // that tile congest.
        let mut m = Machine::new(MachineConfig {
            cores: 8,
            model_contention,
            protocol: Protocol::Mesi,
            ..MachineConfig::default()
        });
        let shared = m.alloc_padded(64);
        for t in 0..8u64 {
            m.add_thread(move |ctx| async move {
                let slot = shared.add(4 * t);
                for i in 0..50u32 {
                    let v = ctx.load_u32(slot).await;
                    ctx.store_u32(slot, v + i).await;
                }
            });
        }
        let r = m.run();
        (r.report.cycles, r.report.stats.traffic.total())
    }

    #[test]
    fn contention_slows_hot_spots_without_changing_traffic() {
        let (free_cycles, free_msgs) = hot_spot_run(false);
        let (cont_cycles, cont_msgs) = hot_spot_run(true);
        assert_eq!(
            free_msgs, cont_msgs,
            "contention must not change message counts"
        );
        assert!(
            cont_cycles > free_cycles,
            "congested run should be slower: {cont_cycles} vs {free_cycles}"
        );
    }

    #[test]
    fn contention_model_is_deterministic() {
        assert_eq!(hot_spot_run(true), hot_spot_run(true));
    }

    #[test]
    fn uncontended_single_core_pays_only_tail_serialization() {
        // One core, sequential misses: no queueing. The contention model
        // still charges data messages their tail-flit serialization
        // ((flits-1) x link_cycles per message) but nothing else, so the
        // gap stays within that bound.
        let run = |model_contention| {
            let mut m = Machine::new(MachineConfig {
                cores: 1,
                model_contention,
                protocol: Protocol::Mesi,
                ..MachineConfig::default()
            });
            let a = m.alloc_padded(64 * 16);
            m.add_thread(move |ctx| async move {
                for b in 0..16u64 {
                    ctx.store_u32(a.add(64 * b), b as u32).await;
                }
            });
            let r = m.run();
            (r.report.cycles, r.report.stats.traffic.total())
        };
        let (free_cycles, free_msgs) = run(false);
        let (cont_cycles, cont_msgs) = run(true);
        assert_eq!(free_msgs, cont_msgs);
        assert!(cont_cycles >= free_cycles);
        // At most (DATA_FLITS - 1) extra cycles per message.
        assert!(cont_cycles - free_cycles <= 4 * free_msgs);
    }
}

#[cfg(test)]
mod per_core_tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    #[test]
    fn per_core_summaries_sum_to_totals() {
        let mut m = Machine::new(MachineConfig::small(4, Protocol::ghostwriter()));
        let shared = m.alloc_padded(64);
        for t in 0..4usize {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(4).await;
                let slot = shared.add(4 * t as u64);
                // Deliberately unbalanced: core t does (t+1)*30 updates.
                for i in 0..(t as u32 + 1) * 30 {
                    let v = ctx.load_u32(slot).await;
                    ctx.scribble_u32(slot, v + (i & 1)).await;
                }
                ctx.approx_end().await;
            });
        }
        let run = m.run();
        let s = &run.report.stats;
        assert_eq!(run.report.per_core.len(), 4);
        let ops: u64 = run.report.per_core.iter().map(|c| c.ops).sum();
        assert_eq!(ops, s.loads + s.stores + s.scribbles);
        let hits: u64 = run.report.per_core.iter().map(|c| c.l1_hits).sum();
        assert_eq!(hits, s.l1_load_hits + s.l1_store_hits);
        let misses: u64 = run.report.per_core.iter().map(|c| c.l1_misses).sum();
        assert_eq!(misses, s.l1_misses());
        // The imbalance is visible: core 3 issued 4x core 0's ops.
        assert!(run.report.per_core[3].ops > run.report.per_core[0].ops * 3);
        assert!(run.report.imbalance() > 1.0);
        // Finish cycles in the summary match the report's.
        for (c, summary) in run.report.per_core.iter().enumerate() {
            assert_eq!(summary.finish_cycle, run.report.core_finish[c]);
        }
    }
}

#[cfg(test)]
mod context_switch_tests {
    use super::*;
    use crate::config::{MachineConfig, Protocol};

    fn run_with_switches(period: Option<u64>) -> (u64, u64, u32) {
        let mut m = Machine::new(MachineConfig {
            cores: 2,
            protocol: Protocol::ghostwriter(),
            context_switch_period: period,
            ..MachineConfig::default()
        });
        let block = m.alloc_padded(64);
        let probe = m.alloc_padded(64);
        m.add_thread(move |ctx| async move {
            ctx.store_u32(block, 1).await;
            ctx.barrier().await;
            ctx.barrier().await;
        });
        m.add_thread(move |ctx| async move {
            ctx.barrier().await;
            // Enter GS, then idle long enough for a context switch.
            let v = ctx.load_u32(block.add(4)).await;
            ctx.approx_begin(4).await;
            ctx.scribble_u32(block.add(4), v + 3).await;
            ctx.work(5_000).await;
            // Re-read after the (potential) switch.
            let after = ctx.load_u32(block.add(4)).await;
            ctx.store_u32(probe, after).await;
            ctx.approx_end().await;
            ctx.barrier().await;
        });
        let run = m.run();
        (
            run.read_u32(probe) as u64,
            run.report.stats.approx_evictions,
            run.report.stats.serviced_by_gs as u32,
        )
    }

    #[test]
    fn context_switch_forfeits_hidden_updates() {
        // Without switches the hidden value survives locally...
        let (seen_pinned, forfeits_pinned, gs_pinned) = run_with_switches(None);
        assert_eq!(gs_pinned, 1);
        assert_eq!(forfeits_pinned, 0);
        assert_eq!(seen_pinned, 3, "pinned thread keeps its GS value");
        // ...with a 1000-cycle switch period the GS block is forfeited
        // during the idle phase and the re-read refetches the coherent
        // (pre-scribble) value.
        let (seen_sw, forfeits_sw, gs_sw) = run_with_switches(Some(1_000));
        assert_eq!(gs_sw, 1);
        assert!(forfeits_sw >= 1, "switch must forfeit the GS block");
        assert_eq!(seen_sw, 0, "post-switch read sees the coherent value");
    }

    /// A small sharing workload used by the profiler tests: four threads
    /// scribbling adjacent slots of one block under Ghostwriter, with a
    /// closing barrier — exercises fetches, L1/dir dispatch, memory,
    /// GI ticks and routing.
    fn profiler_workload() -> Machine {
        let mut m = Machine::new(MachineConfig::small(4, Protocol::ghostwriter()));
        let shared = m.alloc_padded(64);
        for t in 0..4usize {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(4).await;
                let slot = shared.add(4 * t as u64);
                for i in 0..50u32 {
                    let v = ctx.load_u32(slot).await;
                    ctx.scribble_u32(slot, v + (i & 1)).await;
                }
                ctx.approx_end().await;
                ctx.barrier().await;
            });
        }
        m
    }

    #[test]
    fn profiler_observes_without_perturbing_and_reconciles_exactly() {
        let off = profiler_workload().run();
        assert!(off.profile.is_none(), "profiling is opt-in");

        let mut m = profiler_workload();
        m.enable_profiling();
        let on = m.run();

        // Identical simulation: same cycle count, byte-identical stats.
        assert_eq!(off.report.cycles, on.report.cycles);
        assert_eq!(
            off.report.stats.to_json().to_pretty(),
            on.report.stats.to_json().to_pretty(),
            "profiling must not change any statistic"
        );

        // Exact attribution: per-phase cycles sum to the machine's cycle
        // count, and per-component cycles agree with the phase totals.
        let p = on.profile.expect("profiling was enabled");
        assert_eq!(p.attributed_cycles(), on.report.cycles);
        let component_total =
            p.core_cycles.iter().sum::<u64>() + p.bank_cycles.iter().sum::<u64>() + p.mem_cycles;
        assert_eq!(component_total, on.report.cycles);
        assert!(
            p.phases[Phase::Routing as usize].events > 0,
            "the workload routes messages"
        );
    }

    mod msg_pool_fuzz {
        use super::*;
        use proptest::prelude::*;

        fn tagged_msg(tag: u64, with_data: bool) -> Msg {
            let payload = if with_data {
                let mut data = ghostwriter_mem::BlockData::zeroed();
                data.write_word(0, 8, tag);
                Payload::PutM { data }
            } else {
                Payload::Gets
            };
            Msg {
                src: Endpoint::L1(0),
                dst: Endpoint::Dir(0),
                block: BlockAddr(tag),
                payload,
                tag: WireTag::default(),
            }
        }

        proptest! {
            /// Random alloc/deliver interleavings over a mix of control
            /// and data-carrying messages: every take returns the
            /// message its slot was allocated with (data intact), the
            /// in-flight counts track the model exactly, freed slots
            /// are recycled (neither arena outgrows its peak live
            /// count), and — the payload-split invariant — control
            /// messages allocate zero data slots: the data pool's size
            /// is bounded by the peak in-flight *data-carrying* count
            /// alone.
            #[test]
            fn slot_recycling_round_trips(ops in proptest::collection::vec(any::<u64>(), 1..256)) {
                let mut pool = MsgPool::default();
                let mut data_pool = DataPool::default();
                let mut live: Vec<(u32, u64, bool)> = Vec::new();
                let mut peak = 0usize;
                let mut data_peak = 0usize;
                for (i, op) in ops.into_iter().enumerate() {
                    // Low bit picks alloc vs deliver; second bit picks
                    // control vs data; the rest picks the in-flight
                    // message to deliver.
                    let (deliver, with_data, pick) = (op & 1 == 1, op & 2 == 2, op >> 2);
                    if deliver && !live.is_empty() {
                        let (slot, tag, had_data) = live.swap_remove(pick as usize % live.len());
                        let msg = pool.take(slot).resolve(&mut data_pool);
                        prop_assert_eq!(msg.block, BlockAddr(tag));
                        if had_data {
                            let Payload::PutM { data } = msg.payload else {
                                return Err(TestCaseError::fail("data variant lost"));
                            };
                            prop_assert_eq!(data.read_word(0, 8), tag);
                        }
                    } else {
                        let tag = i as u64;
                        let before = data_pool.in_flight();
                        let slot = pool.alloc(tagged_msg(tag, with_data).intern(&mut data_pool));
                        let allocated = data_pool.in_flight() - before;
                        prop_assert_eq!(allocated, usize::from(with_data),
                            "control messages must allocate zero data slots");
                        live.push((slot, tag, with_data));
                        peak = peak.max(live.len());
                        data_peak = data_peak.max(data_pool.in_flight());
                    }
                    prop_assert_eq!(pool.in_flight(), live.len());
                    prop_assert_eq!(
                        data_pool.in_flight(),
                        live.iter().filter(|&&(_, _, d)| d).count()
                    );
                }
                prop_assert!(pool.slots.len() <= peak, "arena grew past peak {} > {}", pool.slots.len(), peak);
                prop_assert!(data_pool.capacity() <= data_peak.max(1),
                    "data pool grew past peak in-flight data messages: {} > {}",
                    data_pool.capacity(), data_peak);
            }
        }
    }
}
