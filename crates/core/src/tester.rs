//! Random protocol tester (in the spirit of gem5's Ruby random tester).
//!
//! One of the two consumers of the shared [`crate::harness`]: drives the
//! real L1 and directory controllers through the harness's virtual
//! network, choosing adversarially random (but seeded, reproducible)
//! delivery orders — the bounded model checker in `ghostwriter-check` is
//! the other consumer, enumerating every order instead. The invariants
//! themselves live in [`crate::harness::System`]:
//!
//! * **SWMR** — at most one writable (E/M) copy of a block, and never a
//!   writable copy concurrently with readable (S) copies elsewhere;
//! * **directory accuracy** — at quiescence the sharer list / owner match
//!   the actual L1 states exactly;
//! * **data-value invariant** — at quiescence every Shared copy equals
//!   the L2's data (approximate GS/GI copies are exempt: their divergence
//!   is the paper's feature, not a bug);
//! * **single-writer data** — with one designated writer per address
//!   writing an increasing sequence, readers only ever observe values the
//!   writer wrote, in non-decreasing order (precise blocks only);
//! * **Ghostwriter containment** — GS/GI lines only on scribbled blocks,
//!   hidden-write counts within the §3.5 bound, the scribe comparator
//!   honoured on every hidden service;
//! * **liveness** — every issued access eventually completes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{BaseProtocol, GiStorePolicy};
use crate::harness::{Op, System, SystemConfig};
use crate::l1::GwParams;
use crate::scribe::ScribePolicy;

/// Configuration of a fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct TesterConfig {
    /// Number of L1 caches / cores.
    pub cores: usize,
    /// Number of distinct blocks in the address pool.
    pub blocks: usize,
    /// Core accesses to issue in total.
    pub accesses: usize,
    /// L1 geometry (small to force evictions).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 geometry (small to force inclusion recalls).
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Enable Ghostwriter states with this probability of scribbles.
    pub scribble_prob: f64,
    /// What a failing scribble does on a GI block (Ghostwriter runs).
    pub gi_stores: GiStorePolicy,
    /// Probability, per step, of firing a random core's GI-timeout sweep.
    pub gi_timeout_prob: f64,
    /// Bias towards delivering messages vs issuing new accesses.
    pub deliver_bias: f64,
    /// Base protocol family (MESI, MSI, MOESI, MOSI or MESIF).
    pub base: BaseProtocol,
}

impl Default for TesterConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            blocks: 12,
            accesses: 400,
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: 4,
            l2_ways: 2,
            scribble_prob: 0.0,
            gi_stores: GiStorePolicy::Fallback,
            gi_timeout_prob: 0.0,
            deliver_bias: 0.7,
            base: BaseProtocol::Mesi,
        }
    }
}

impl TesterConfig {
    /// The harness shape this fuzz configuration drives.
    pub fn system(&self) -> SystemConfig {
        let gw = (self.scribble_prob > 0.0).then_some(GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: true,
            gi_stores: self.gi_stores,
            max_hidden_writes: None,
        });
        SystemConfig {
            cores: self.cores,
            blocks: self.blocks,
            l1_sets: self.l1_sets,
            l1_ways: self.l1_ways,
            l2_sets: self.l2_sets,
            l2_ways: self.l2_ways,
            gw,
            base: self.base,
            disabled_row: None,
            recovery: None,
        }
    }
}

/// What the tester observed; returned for assertions and reporting.
#[derive(Debug, Default)]
pub struct TesterReport {
    /// Accesses issued and completed.
    pub completed: usize,
    /// Messages delivered.
    pub messages: usize,
    /// Invariant-check passes performed.
    pub checks: usize,
    /// GI lines returned to I by timeout sweeps.
    pub gi_timeouts: u64,
}

/// The random protocol tester. Panics on any invariant violation
/// (controller panics propagate too, catching unhandled races).
///
/// ```
/// use ghostwriter_core::tester::{ProtocolTester, TesterConfig};
/// let report = ProtocolTester::new(TesterConfig::default(), 7).run();
/// assert_eq!(report.completed, TesterConfig::default().accesses);
/// ```
pub struct ProtocolTester {
    cfg: TesterConfig,
    rng: StdRng,
    sys: System,
    issued: usize,
    checks: usize,
}

impl ProtocolTester {
    /// Builds a tester with `seed`-reproducible randomness.
    pub fn new(cfg: TesterConfig, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            sys: System::new(cfg.system()),
            issued: 0,
            checks: 0,
            cfg,
        }
    }

    /// Issues a random access on an idle core.
    fn issue(&mut self) {
        let idle = self.sys.idle_cores();
        if idle.is_empty() {
            return;
        }
        let core = idle[self.rng.gen_range(0..idle.len())];
        let b = self.rng.gen_range(0..self.cfg.blocks);
        let op = if self.rng.gen_bool(0.5) {
            // Read any writer's slot in the block.
            Op::Load {
                writer: self.rng.gen_range(0..self.cfg.cores),
            }
        } else if self.rng.gen_bool(self.cfg.scribble_prob) {
            Op::Scribble { d: 4 }
        } else {
            Op::Store
        };
        if std::env::var_os("GW_TESTER_TRACE").is_some() {
            eprintln!("issue core {core} {op:?} on block {b}");
        }
        self.issued += 1;
        if let Err(v) = self.sys.issue(core, b, op) {
            panic!("invariant violated on issue {op:?} at core {core}: {v}");
        }
    }

    /// Delivers one random in-flight message (FIFO within its channel).
    fn deliver(&mut self) -> bool {
        let keys = self.sys.channels();
        if keys.is_empty() {
            return false;
        }
        let key = keys[self.rng.gen_range(0..keys.len())];
        if let Err(v) = self.sys.deliver(key) {
            panic!("invariant violated delivering on channel {key:?}: {v}");
        }
        true
    }

    /// Runs the full fuzz schedule and the end-of-run checks.
    pub fn run(mut self) -> TesterReport {
        while self.issued < self.cfg.accesses {
            if self.rng.gen_bool(self.cfg.deliver_bias) {
                if !self.deliver() {
                    self.issue();
                }
            } else {
                self.issue();
            }
            if self.cfg.gi_timeout_prob > 0.0 && self.rng.gen_bool(self.cfg.gi_timeout_prob) {
                let core = self.rng.gen_range(0..self.cfg.cores);
                if let Err(v) = self.sys.gi_timeout(core) {
                    panic!("invariant violated in GI-timeout sweep on core {core}: {v}");
                }
            }
            if self.issued.is_multiple_of(16) {
                self.checks += 1;
                if let Err(v) = self.sys.check_swmr() {
                    panic!("invariant violated after {} accesses: {v}", self.issued);
                }
            }
        }
        // Drain: deliver everything until the system is quiescent.
        let mut guard = 0u32;
        while self.deliver() {
            guard += 1;
            assert!(guard < 1_000_000, "network never drained (livelock)");
        }
        assert!(self.sys.quiescent(), "accesses never completed");
        self.checks += 1;
        if let Err(v) = self.sys.check_quiescent() {
            panic!("invariant violated at quiescence: {v}");
        }
        TesterReport {
            completed: self.sys.completed(),
            messages: self.sys.messages(),
            checks: self.checks,
            gi_timeouts: self.sys.stats().gi_timeouts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_fuzz_small() {
        let report = ProtocolTester::new(TesterConfig::default(), 42).run();
        assert_eq!(report.completed, 400);
        assert!(report.messages > 0);
    }

    #[test]
    fn mesi_fuzz_many_seeds() {
        for seed in 0..20 {
            let report = ProtocolTester::new(TesterConfig::default(), seed).run();
            assert_eq!(report.completed, 400, "seed {seed}");
        }
    }

    #[test]
    fn fuzz_with_tiny_caches_forces_evictions_and_recalls() {
        let cfg = TesterConfig {
            cores: 6,
            blocks: 24,
            accesses: 600,
            l1_sets: 1,
            l1_ways: 2,
            l2_sets: 2,
            l2_ways: 2,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 1000 + seed).run();
        }
    }

    #[test]
    fn msi_fuzz_passes_the_same_invariants() {
        for seed in 0..10 {
            let cfg = TesterConfig {
                base: BaseProtocol::Msi,
                ..TesterConfig::default()
            };
            let report = ProtocolTester::new(cfg, 3000 + seed).run();
            assert_eq!(report.completed, 400, "seed {seed}");
        }
    }

    #[test]
    fn protocol_family_fuzz_passes_the_same_invariants() {
        // Every base protocol of the ladder survives the same random
        // walks under the full invariant battery.
        for base in [BaseProtocol::Moesi, BaseProtocol::Mosi, BaseProtocol::Mesif] {
            for seed in 0..10 {
                let cfg = TesterConfig {
                    base,
                    ..TesterConfig::default()
                };
                let report = ProtocolTester::new(cfg, 6000 + seed).run();
                assert_eq!(report.completed, 400, "{} seed {seed}", base.name());
            }
        }
    }

    #[test]
    fn ghostwriter_over_moesi_fuzz_holds() {
        // GW composes over MOESI: scribbles plus dirty sharing in the
        // same runs, all structural invariants intact.
        let cfg = TesterConfig {
            base: BaseProtocol::Moesi,
            scribble_prob: 0.5,
            accesses: 600,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 7000 + seed).run();
        }
    }

    #[test]
    fn ghostwriter_fuzz_structural_invariants_hold() {
        // With scribbles in the mix the value oracle relaxes on the
        // scribbled blocks, but SWMR, directory accuracy, containment
        // and liveness must still hold.
        let cfg = TesterConfig {
            scribble_prob: 0.5,
            accesses: 600,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 2000 + seed).run();
        }
    }

    #[test]
    fn ghostwriter_fuzz_with_capture_policy() {
        // Capture keeps failing scribbles on GI blocks local instead of
        // falling back to GETX; all structural invariants must survive.
        let cfg = TesterConfig {
            scribble_prob: 0.5,
            gi_stores: GiStorePolicy::Capture,
            accesses: 600,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 4000 + seed).run();
        }
    }

    #[test]
    fn gi_timeout_sweeps_return_gi_blocks_to_invalid() {
        // With frequent timeouts and heavy scribbling, GI lines must be
        // reclaimed by the timeout path (GI → I) and the run must stay
        // invariant-clean. Across this seed range the sweeps always
        // catch at least one live GI line.
        let cfg = TesterConfig {
            scribble_prob: 0.7,
            gi_timeout_prob: 0.05,
            accesses: 600,
            ..TesterConfig::default()
        };
        let mut total_timeouts = 0;
        for seed in 0..10 {
            let report = ProtocolTester::new(cfg, 5000 + seed).run();
            assert_eq!(report.completed, 600, "seed {seed}");
            total_timeouts += report.gi_timeouts;
        }
        assert!(
            total_timeouts > 0,
            "no GI line was ever reclaimed by a timeout sweep"
        );
    }
}

#[cfg(test)]
mod long_fuzz {
    use super::*;

    /// Heavy sweep (run with `--ignored`): many seeds across stressful
    /// geometries, with and without scribbles, both GI store policies
    /// and occasional timeout sweeps.
    #[test]
    #[ignore]
    fn thousand_seed_sweep() {
        for seed in 0..500u64 {
            let cfg = TesterConfig {
                cores: 2 + (seed % 7) as usize,
                blocks: 8 + (seed % 29) as usize,
                accesses: 500,
                l1_sets: 1 << (seed % 3),
                l1_ways: 2,
                l2_sets: 2 << (seed % 2),
                l2_ways: 2,
                scribble_prob: if seed % 3 == 0 { 0.4 } else { 0.0 },
                gi_stores: if seed % 6 == 0 {
                    GiStorePolicy::Capture
                } else {
                    GiStorePolicy::Fallback
                },
                gi_timeout_prob: if seed % 5 == 0 { 0.02 } else { 0.0 },
                deliver_bias: 0.5 + (seed % 5) as f64 * 0.1,
                base: BaseProtocol::ALL[(seed % 5) as usize],
            };
            ProtocolTester::new(cfg, seed).run();
        }
    }
}
