//! Random protocol tester (in the spirit of gem5's Ruby random tester).
//!
//! The full machine is timing-deterministic, so it only ever explores one
//! message interleaving per program. This tester drives the *same* L1 and
//! directory controllers through a virtual network that delivers messages
//! in adversarially random (but seeded, reproducible) order — preserving
//! only the per-(source, destination) FIFO property the real NoC
//! guarantees — and checks the protocol's global invariants:
//!
//! * **SWMR** — at most one writable (E/M) copy of a block, and never a
//!   writable copy concurrently with readable (S) copies elsewhere;
//! * **directory accuracy** — at quiescence the sharer list / owner match
//!   the actual L1 states exactly;
//! * **data-value invariant** — at quiescence every Shared copy equals
//!   the L2's data (approximate GS/GI copies are exempt: their divergence
//!   is the paper's feature, not a bug);
//! * **single-writer data** — with one designated writer per address
//!   writing an increasing sequence, readers only ever observe values the
//!   writer wrote, in non-decreasing order (precise data only);
//! * **liveness** — every issued access eventually completes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

use ghostwriter_mem::{Addr, BlockAddr, Dram};

use crate::config::GiStorePolicy;
use crate::l1::{home_bank, AccessKind, CoreReq, GwParams, L1Cache, L1Out, L1State};
use crate::msg::{Endpoint, Msg, Payload};
use crate::scribe::ScribePolicy;
use crate::stats::Stats;

/// Configuration of a fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct TesterConfig {
    /// Number of L1 caches / cores.
    pub cores: usize,
    /// Number of distinct blocks in the address pool.
    pub blocks: usize,
    /// Core accesses to issue in total.
    pub accesses: usize,
    /// L1 geometry (small to force evictions).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 geometry (small to force inclusion recalls).
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Enable Ghostwriter states with this probability of scribbles.
    pub scribble_prob: f64,
    /// Bias towards delivering messages vs issuing new accesses.
    pub deliver_bias: f64,
    /// Use the MSI protocol family (no Exclusive grants).
    pub msi: bool,
}

impl Default for TesterConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            blocks: 12,
            accesses: 400,
            l1_sets: 2,
            l1_ways: 2,
            l2_sets: 4,
            l2_ways: 2,
            scribble_prob: 0.0,
            deliver_bias: 0.7,
            msi: false,
        }
    }
}

/// What the tester observed; returned for assertions and reporting.
#[derive(Debug, Default)]
pub struct TesterReport {
    /// Accesses issued and completed.
    pub completed: usize,
    /// Messages delivered.
    pub messages: usize,
    /// Invariant-check passes performed.
    pub checks: usize,
}

struct PendingAccess {
    addr: Addr,
    kind: AccessKind,
}

/// The random protocol tester. Panics on any invariant violation
/// (controller panics propagate too, catching unhandled races).
///
/// ```
/// use ghostwriter_core::tester::{ProtocolTester, TesterConfig};
/// let report = ProtocolTester::new(TesterConfig::default(), 7).run();
/// assert_eq!(report.completed, TesterConfig::default().accesses);
/// ```
pub struct ProtocolTester {
    cfg: TesterConfig,
    rng: StdRng,
    l1s: Vec<L1Cache>,
    banks: Vec<crate::dir::DirBank>,
    dram: Dram,
    stats: Stats,
    /// Virtual network: per-(src, dst) FIFO channels. A BTreeMap keeps
    /// channel-selection order deterministic for a given seed.
    net: BTreeMap<(usize, usize), VecDeque<Msg>>,
    /// Outstanding access per core.
    pending: Vec<Option<PendingAccess>>,
    /// Single-writer discipline: next sequence number per (writer, block).
    next_seq: Vec<Vec<u64>>,
    /// Monotone-read check: last value observed per (reader, block).
    last_seen: Vec<Vec<u64>>,
    issued: usize,
    report: TesterReport,
}

/// Flattens an endpoint into a virtual-network node id.
fn node_key(ep: Endpoint, cores: usize) -> usize {
    match ep {
        Endpoint::L1(i) => i,
        Endpoint::Dir(b) => cores + b,
        Endpoint::Mem(m) => 2 * cores + m,
    }
}

impl ProtocolTester {
    /// Builds a tester with `seed`-reproducible randomness.
    pub fn new(cfg: TesterConfig, seed: u64) -> Self {
        assert!(cfg.cores >= 1 && cfg.blocks >= 1);
        let gw = (cfg.scribble_prob > 0.0).then_some(GwParams {
            scribe: ScribePolicy::Bitwise,
            enable_gs: true,
            enable_gi: true,
            gi_stores: GiStorePolicy::Fallback,
            max_hidden_writes: None,
        });
        let l1s = (0..cfg.cores)
            .map(|c| L1Cache::new(c, cfg.l1_sets, cfg.l1_ways, cfg.cores, gw, false))
            .collect();
        let banks = (0..cfg.cores)
            .map(|b| {
                crate::dir::DirBank::with_base(b, cfg.l2_sets, cfg.l2_ways, 1, !cfg.msi)
            })
            .collect();
        Self {
            rng: StdRng::seed_from_u64(seed),
            l1s,
            banks,
            dram: Dram::new(),
            stats: Stats::default(),
            net: BTreeMap::new(),
            pending: (0..cfg.cores).map(|_| None).collect(),
            next_seq: vec![vec![1; cfg.blocks]; cfg.cores],
            last_seen: vec![vec![0; cfg.blocks]; cfg.cores],
            issued: 0,
            report: TesterReport::default(),
            cfg,
        }
    }

    /// Byte address of block index `b`'s slot owned by `writer`
    /// (one 8-byte slot per core per block: single-writer-per-address,
    /// false sharing across cores by construction).
    fn slot(&self, writer: usize, b: usize) -> Addr {
        Addr(0x10_0000 + (b as u64) * 64 + (writer as u64) * 8)
    }

    fn block_of(&self, b: usize) -> BlockAddr {
        self.slot(0, b).block()
    }

    fn enqueue(&mut self, msg: Msg) {
        let key = (
            node_key(msg.src, self.cfg.cores),
            node_key(msg.dst, self.cfg.cores),
        );
        self.net.entry(key).or_default().push_back(msg);
    }

    fn handle_l1_outs(&mut self, core: usize, outs: Vec<L1Out>) {
        for out in outs {
            match out {
                L1Out::Send(m) => self.enqueue(m),
                L1Out::Reply { value } => {
                    let p = self.pending[core].take().expect("reply without access");
                    if matches!(p.kind, AccessKind::Load) {
                        // Which (writer, block) slot was read?
                        let rel = p.addr.0 - 0x10_0000;
                        let b = (rel / 64) as usize;
                        let writer = ((rel % 64) / 8) as usize;
                        // Loads only ever observe values the single
                        // writer actually wrote (zero = initial state).
                        assert!(
                            value < self.next_seq[writer][b],
                            "core {core} read unwritten value {value} from writer {writer} block {b}"
                        );
                        // Under pure MESI, reads of a single-writer slot
                        // are monotone per reader (coherence order).
                        // Scribbling legitimately serves stale values, so
                        // the monotonicity oracle only applies when the
                        // run is precise.
                        if self.cfg.scribble_prob == 0.0 {
                            let idx = b * self.cfg.cores + writer;
                            assert!(
                                value >= self.last_seen[core][idx],
                                "core {core} saw writer {writer} block {b} go backwards: \
                                 {value} < {}",
                                self.last_seen[core][idx]
                            );
                            self.last_seen[core][idx] = value;
                        }
                    }
                    self.report.completed += 1;
                }
            }
        }
    }

    /// Issues a random access on an idle core.
    fn issue(&mut self) {
        let idle: Vec<usize> = (0..self.cfg.cores)
            .filter(|&c| self.pending[c].is_none())
            .collect();
        if idle.is_empty() {
            return;
        }
        let core = idle[self.rng.gen_range(0..idle.len())];
        let b = self.rng.gen_range(0..self.cfg.blocks);
        let load = self.rng.gen_bool(0.5);
        let (addr, kind, value) = if load {
            // Read any writer's slot in the block.
            let writer = self.rng.gen_range(0..self.cfg.cores);
            (self.slot(writer, b), AccessKind::Load, 0)
        } else {
            // Write my own slot: next sequence number.
            let v = self.next_seq[core][b];
            self.next_seq[core][b] += 1;
            let kind = if self.rng.gen_bool(self.cfg.scribble_prob) {
                AccessKind::Scribble { d: 4 }
            } else {
                AccessKind::Store
            };
            (self.slot(core, b), kind, v)
        };
        // Scribbled slots would break the monotone-read oracle (stale
        // reads are legal there), so under scribbling we only check
        // liveness and structural invariants, not values.
        self.pending[core] = Some(PendingAccess { addr, kind });
        let req = CoreReq {
            addr,
            size: 8,
            value,
            kind,
        };
        if std::env::var_os("GW_TESTER_TRACE").is_some() {
            eprintln!("issue core {core} {kind:?} at {addr:?}");
        }
        let outs = self.l1s[core].access(req, &mut self.stats);
        self.issued += 1;
        self.handle_l1_outs(core, outs);
    }

    /// Delivers one random in-flight message (FIFO within its channel).
    fn deliver(&mut self) -> bool {
        let keys: Vec<(usize, usize)> = self
            .net
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&k, _)| k)
            .collect();
        if keys.is_empty() {
            return false;
        }
        let key = keys[self.rng.gen_range(0..keys.len())];
        let msg = self
            .net
            .get_mut(&key)
            .and_then(|q| q.pop_front())
            .expect("nonempty channel");
        self.report.messages += 1;
        if std::env::var_os("GW_TESTER_TRACE").is_some() {
            eprintln!(
                "deliver {:<12} {:?} -> {:?}  {:?}",
                msg.payload.name(),
                msg.src,
                msg.dst,
                msg.block
            );
        }
        match msg.dst {
            Endpoint::L1(core) => {
                let outs = self.l1s[core].handle_msg(msg, &mut self.stats);
                self.handle_l1_outs(core, outs);
            }
            Endpoint::Dir(bank) => {
                let outs = self.banks[bank].handle_msg(msg, &mut self.stats);
                for m in outs {
                    self.enqueue(m);
                }
            }
            Endpoint::Mem(_) => match msg.payload {
                Payload::MemRead => {
                    let data = self.dram.read_block(msg.block);
                    self.enqueue(Msg {
                        src: msg.dst,
                        dst: msg.src,
                        block: msg.block,
                        payload: Payload::MemData { data },
                    });
                }
                Payload::MemWrite { data } => self.dram.write_block(msg.block, data),
                ref p => panic!("memory controller got {}", p.name()),
            },
        }
        true
    }

    /// SWMR: never two writable copies; never writable + readable
    /// elsewhere. Checked continuously (valid at any instant).
    fn check_swmr(&mut self) {
        self.report.checks += 1;
        for b in 0..self.cfg.blocks {
            let block = self.block_of(b);
            let mut writable = 0;
            let mut readable_elsewhere = 0;
            for l1 in &self.l1s {
                match l1.state_of(block) {
                    Some(L1State::M) | Some(L1State::E) => writable += 1,
                    Some(L1State::S) => readable_elsewhere += 1,
                    _ => {}
                }
            }
            assert!(writable <= 1, "block {b}: {writable} writable copies");
            assert!(
                writable == 0 || readable_elsewhere == 0,
                "block {b}: writable copy coexists with {readable_elsewhere} shared copies"
            );
        }
    }

    /// Directory accuracy + data-value invariant; only meaningful at
    /// quiescence (no in-flight messages or accesses).
    fn check_quiescent(&self) {
        for b in 0..self.cfg.blocks {
            let block = self.block_of(b);
            let bank = home_bank(block, self.cfg.cores);
            let dir = self.banks[bank].dir_state(block);
            let mut sharers = 0u64;
            let mut owner = None;
            for (c, l1) in self.l1s.iter().enumerate() {
                match l1.state_of(block) {
                    Some(L1State::S) | Some(L1State::Gs) => sharers |= 1 << c,
                    Some(L1State::M) | Some(L1State::E) => {
                        assert!(owner.is_none());
                        owner = Some(c);
                    }
                    Some(L1State::I) | Some(L1State::Gi) | None => {}
                    Some(t) => panic!("core {c} stuck in transient {t:?} at quiescence"),
                }
            }
            match (dir, owner) {
                (Some(crate::dir::DirState::Owned(o)), Some(c)) => {
                    assert_eq!(o, c, "block {b}: directory owner mismatch")
                }
                (Some(crate::dir::DirState::Owned(_)), None) => {
                    panic!("block {b}: directory says owned, no L1 owner")
                }
                (Some(crate::dir::DirState::Shared(s)), _) => {
                    assert_eq!(s, sharers, "block {b}: sharer list mismatch");
                    assert!(owner.is_none());
                }
                (Some(crate::dir::DirState::Np), _) | (None, _) => {
                    assert_eq!(sharers, 0, "block {b}: untracked sharers");
                    assert!(owner.is_none(), "block {b}: untracked owner");
                }
            }
            // Data-value invariant: Shared copies equal the L2 data
            // (GS copies are legitimately divergent).
            if let Some(l2_data) = self.banks[bank].peek_block(block) {
                for (c, l1) in self.l1s.iter().enumerate() {
                    if l1.state_of(block) == Some(L1State::S) {
                        for w in 0..8 {
                            let a = block.base().add(8 * w);
                            assert_eq!(
                                l1.peek_word(a, 8),
                                Some(l2_data.read_word(8 * w as usize, 8)),
                                "block {b} word {w}: core {c}'s S copy diverges from L2"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Runs the full fuzz schedule and the end-of-run checks.
    pub fn run(mut self) -> TesterReport {
        // Widen last_seen to (blocks × cores) entries per reader.
        for row in &mut self.last_seen {
            row.resize(self.cfg.blocks * self.cfg.cores, 0);
        }
        while self.issued < self.cfg.accesses {
            if self.rng.gen_bool(self.cfg.deliver_bias) {
                if !self.deliver() {
                    self.issue();
                }
            } else {
                self.issue();
            }
            if self.issued.is_multiple_of(16) {
                self.check_swmr();
            }
        }
        // Drain: deliver everything until the system is quiescent.
        let mut guard = 0u32;
        while self.deliver() {
            guard += 1;
            assert!(guard < 1_000_000, "network never drained (livelock)");
        }
        assert!(
            self.pending.iter().all(|p| p.is_none()),
            "accesses never completed: liveness violation"
        );
        for bank in &self.banks {
            assert!(bank.quiescent(), "directory bank not quiescent");
        }
        for l1 in &self.l1s {
            assert!(!l1.busy(), "L1 still blocked at quiescence");
            assert!(
                !l1.has_pending_writebacks(),
                "writeback never acknowledged"
            );
        }
        self.check_swmr();
        self.check_quiescent();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_fuzz_small() {
        let report = ProtocolTester::new(TesterConfig::default(), 42).run();
        assert_eq!(report.completed, 400);
        assert!(report.messages > 0);
    }

    #[test]
    fn mesi_fuzz_many_seeds() {
        for seed in 0..20 {
            let report = ProtocolTester::new(TesterConfig::default(), seed).run();
            assert_eq!(report.completed, 400, "seed {seed}");
        }
    }

    #[test]
    fn fuzz_with_tiny_caches_forces_evictions_and_recalls() {
        let cfg = TesterConfig {
            cores: 6,
            blocks: 24,
            accesses: 600,
            l1_sets: 1,
            l1_ways: 2,
            l2_sets: 2,
            l2_ways: 2,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 1000 + seed).run();
        }
    }

    #[test]
    fn msi_fuzz_passes_the_same_invariants() {
        for seed in 0..10 {
            let cfg = TesterConfig {
                msi: true,
                ..TesterConfig::default()
            };
            let report = ProtocolTester::new(cfg, 3000 + seed).run();
            assert_eq!(report.completed, 400, "seed {seed}");
        }
    }

    #[test]
    fn ghostwriter_fuzz_structural_invariants_hold() {
        // With scribbles in the mix the value oracle is off, but SWMR,
        // directory accuracy and liveness must still hold.
        let cfg = TesterConfig {
            scribble_prob: 0.5,
            accesses: 600,
            ..TesterConfig::default()
        };
        for seed in 0..10 {
            ProtocolTester::new(cfg, 2000 + seed).run();
        }
    }
}

#[cfg(test)]
mod long_fuzz {
    use super::*;

    /// Heavy sweep (run with `--ignored`): many seeds across stressful
    /// geometries, with and without scribbles.
    #[test]
    #[ignore]
    fn thousand_seed_sweep() {
        for seed in 0..500u64 {
            let cfg = TesterConfig {
                cores: 2 + (seed % 7) as usize,
                blocks: 8 + (seed % 29) as usize,
                accesses: 500,
                l1_sets: 1 << (seed % 3),
                l1_ways: 2,
                l2_sets: 2 << (seed % 2),
                l2_ways: 2,
                scribble_prob: if seed % 3 == 0 { 0.4 } else { 0.0 },
                deliver_bias: 0.5 + (seed % 5) as f64 * 0.1,
                msi: seed % 4 == 1,
            };
            ProtocolTester::new(cfg, seed).run();
        }
    }
}
