//! Property tests for the scribe comparator's algebra.

use ghostwriter_core::scribe::{arithmetic_distance, bit_distance, ScribePolicy};
use proptest::prelude::*;

proptest! {
    /// bit-distance is symmetric and zero exactly on equality (within
    /// the access width).
    #[test]
    fn bit_distance_symmetric_and_reflexive(a in any::<u64>(), b in any::<u64>(), w in prop_oneof![Just(8u32), Just(16), Just(32), Just(64)]) {
        prop_assert_eq!(bit_distance(a, b, w), bit_distance(b, a, w));
        prop_assert_eq!(bit_distance(a, a, w), 0);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(bit_distance(a, b, w) == 0, a & mask == b & mask);
    }

    /// The `within` predicate is monotone in d and saturates at the
    /// access width.
    #[test]
    fn within_monotone_in_d(a in any::<u64>(), b in any::<u64>(), w in prop_oneof![Just(8u32), Just(16), Just(32), Just(64)]) {
        let mut prev = false;
        for d in 0..=w {
            let now = ScribePolicy::Bitwise.within(a, b, w, d);
            prop_assert!(!prev || now, "within must be monotone in d");
            prev = now;
        }
        prop_assert!(ScribePolicy::Bitwise.within(a, b, w, w), "d = width admits everything");
    }

    /// Bit-distance d implies the values differ by less than 2^d
    /// arithmetically (the converse does not hold: 127 vs 128).
    #[test]
    fn bit_distance_bounds_arithmetic_difference(a in any::<u64>(), b in any::<u64>()) {
        let d = bit_distance(a, b, 64);
        if d < 64 {
            prop_assert!(arithmetic_distance(a, b, 64) < (1u64 << d));
        }
    }

    /// Arithmetic distance is a metric-ish: symmetric, zero iff equal
    /// (mod width), bounded by half the ring.
    #[test]
    fn arithmetic_distance_properties(a in any::<u64>(), b in any::<u64>(), w in prop_oneof![Just(8u32), Just(16), Just(32)]) {
        let mask = (1u64 << w) - 1;
        prop_assert_eq!(arithmetic_distance(a, b, w), arithmetic_distance(b, a, w));
        prop_assert_eq!(arithmetic_distance(a, b, w) == 0, a & mask == b & mask);
        prop_assert!(arithmetic_distance(a, b, w) <= mask.div_ceil(2));
    }

    /// The arithmetic policy admits everything the bitwise policy admits
    /// at the same d... is FALSE in general (carry pairs); but both admit
    /// silent stores at every d, and neither admits anything at d=0
    /// except equality.
    #[test]
    fn policies_agree_on_silent_stores(v in any::<u64>(), d in 0u32..32) {
        for policy in [ScribePolicy::Bitwise, ScribePolicy::Arithmetic] {
            prop_assert!(policy.within(v, v, 32, d));
        }
        let other = v ^ 1;
        for policy in [ScribePolicy::Bitwise, ScribePolicy::Arithmetic] {
            prop_assert!(!policy.within(v, other, 32, 0));
        }
    }
}
