//! Machine-level fault-injection suite.
//!
//! The harness-level injector semantics (counter-based draws, class
//! independence) are covered next to [`ghostwriter_core::fault`]; this
//! suite checks the *timing machine* integration:
//!
//! 1. **Zero-fault preservation** — installing `FaultConfig::default()`
//!    leaves a run byte-identical (cycles, stats JSON) to a
//!    fault-unaware run of the same machine.
//! 2. **Seeded determinism** — the same fault seed reproduces the run
//!    exactly; a different seed places faults elsewhere.
//! 3. **Recovery correctness** — under drops, duplicates and delays a
//!    precise MESI program still completes with the right answer; the
//!    recovery machinery (retries/resends) did the work.
//! 4. **Byzantine injection** (ISSUE satellite) — `inject_at` +
//!    `try_run` surfaces the defensive `Reach::Never` rows as a typed
//!    [`SimAbort`] with cycle and last-message provenance, never a
//!    panic, at the full-machine level.

use ghostwriter_core::config::BaseProtocol;
use ghostwriter_core::msg::{Endpoint, Grant, Msg, Payload, WireTag};
use ghostwriter_core::{
    Addr, FaultConfig, FinishedRun, Machine, MachineConfig, Protocol, RecoveryParams, SimAbort,
};
use ghostwriter_mem::BlockData;

const ITERS: u32 = 64;

fn storm_config(cores: usize) -> MachineConfig {
    MachineConfig::small_base(cores, Protocol::Mesi, BaseProtocol::Mesi)
}

/// A deterministic per-core counter storm: slot `t` ends at
/// `sum(0..ITERS)` regardless of interleaving, so the final memory image
/// is a correctness oracle under message loss.
fn storm_machine(cores: usize, faults: Option<FaultConfig>) -> (Machine, Addr) {
    let mut m = Machine::new(storm_config(cores));
    if let Some(f) = faults {
        m.set_faults(f);
    }
    let block = m.alloc_padded(4 * cores as u64);
    for t in 0..cores {
        let slot = block.add(4 * t as u64);
        m.add_thread(move |ctx| async move {
            for i in 0..ITERS {
                let v = ctx.load_u32(slot).await;
                ctx.store_u32(slot, v.wrapping_add(i)).await;
            }
            ctx.barrier().await;
        });
    }
    (m, block)
}

fn run_summary(run: &FinishedRun) -> (u64, String) {
    (run.report.cycles, run.report.stats.to_json().to_pretty())
}

fn lossy(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_permille: 100,
        dup_permille: 50,
        delay_permille: 50,
        delay_cycles: 32,
        recovery: Some(RecoveryParams::default()),
        ..FaultConfig::default()
    }
}

#[test]
fn default_fault_config_is_byte_invisible() {
    let (plain, _) = storm_machine(2, None);
    let (armed, _) = storm_machine(2, Some(FaultConfig::default()));
    let a = run_summary(&plain.run());
    let b = run_summary(&armed.try_run().expect("no faults, no aborts"));
    assert_eq!(a, b, "an all-off injector must not perturb the machine");
}

#[test]
fn same_seed_reproduces_different_seed_diverges() {
    let seven = storm_machine(2, Some(lossy(7))).0.try_run().unwrap();
    let again = storm_machine(2, Some(lossy(7))).0.try_run().unwrap();
    assert_eq!(
        run_summary(&seven),
        run_summary(&again),
        "fault placement must be a function of the seed"
    );
    assert_eq!(seven.report.stats.retries, again.report.stats.retries);

    let eight = storm_machine(2, Some(lossy(8))).0.try_run().unwrap();
    let shape = |r: &FinishedRun| {
        (
            r.report.cycles,
            r.report.stats.retries,
            r.report.stats.faults_dropped,
            r.report.stats.faults_delayed,
        )
    };
    assert_ne!(
        shape(&seven),
        shape(&eight),
        "a different seed must place faults differently"
    );
}

#[test]
fn recovery_restores_precise_results_under_loss() {
    let (m, block) = storm_machine(2, Some(lossy(3)));
    let run = m.try_run().expect("recovery must ride out this rate");
    let s = &run.report.stats;
    assert!(s.faults_dropped > 0, "the drop class must actually fire");
    assert!(
        s.retries > 0 || s.grant_resends > 0,
        "losses must be repaired by recovery, not coincidence"
    );
    let want = (0..ITERS).sum::<u32>();
    for t in 0..2 {
        assert_eq!(
            run.read_u32(block.add(4 * t)),
            want,
            "core {t}: recovered run must still be exact"
        );
    }
}

// ------------------------------------------------------- byzantine --

/// One idle-phase machine: the single thread spins on local work before
/// touching memory, so a message injected at cycle 5 lands on an idle
/// L1/directory and must hit the defensive row, not a live transaction.
fn idle_machine() -> (Machine, Addr) {
    let mut m = Machine::new(storm_config(1));
    let slot = m.alloc_padded(4);
    m.add_thread(move |ctx| async move {
        ctx.work(500).await;
        let v = ctx.load_u32(slot).await;
        ctx.store_u32(slot, v + 1).await;
    });
    (m, slot)
}

fn byzantine_abort(src: Endpoint, dst: Endpoint, payload: Payload) -> SimAbort {
    let (mut m, slot) = idle_machine();
    m.inject_at(
        5,
        Msg {
            src,
            dst,
            block: slot.block(),
            payload,
            tag: WireTag::default(),
        },
    );
    match m.try_run() {
        Err(abort) => abort,
        Ok(_) => panic!("byzantine traffic must abort"),
    }
}

#[test]
fn byzantine_injection_hits_typed_rows_not_panics() {
    let l1 = Endpoint::L1(0);
    let dir = Endpoint::Dir(0);
    let mem = Endpoint::Mem(0);
    let cases: Vec<(Endpoint, Endpoint, Payload, &str)> = vec![
        // Command/request payloads on the wrong node class.
        (dir, l1, Payload::Gets, "l1_unexpected_msg"),
        (l1, dir, Payload::Inv, "dir_unexpected_msg"),
        // Stray completion traffic with no transaction in flight.
        (l1, dir, Payload::Unblock, "stray_unblock"),
        (l1, dir, Payload::InvAck, "stray_inv_ack"),
        (dir, l1, Payload::UpgAck, "upg_ack_unexpected"),
        (dir, l1, Payload::WbAck, "wb_ack_unexpected"),
        (
            dir,
            l1,
            Payload::Data {
                data: BlockData::zeroed(),
                grant: Grant::Shared,
            },
            "data_unexpected",
        ),
        (
            mem,
            dir,
            Payload::MemData {
                data: BlockData::zeroed(),
            },
            "stray_mem_data",
        ),
    ];
    for (src, dst, payload, row) in cases {
        let abort = byzantine_abort(src, dst, payload);
        assert_eq!(abort.error.row, Some(row), "detail: {}", abort.error.detail);
        assert!(abort.cycle >= 5, "{row}: abort must carry the cycle");
        assert!(
            !abort.last_msg.is_empty(),
            "{row}: abort must carry the last delivered message"
        );
        // And the human-readable form carries all three.
        let text = abort.to_string();
        assert!(text.contains("cycle"), "{text}");
        assert!(text.contains(row), "{text}");
    }
}
