//! The paper's Fig. 3 state machine, checked exhaustively as a
//! transition table: for every reachable stable L1 state and every
//! demand/network event, assert the resulting state and the class of
//! coherence action taken.

use ghostwriter_core::config::{BaseProtocol, GiStorePolicy};
use ghostwriter_core::l1::{AccessKind, CoreReq, GwParams, L1Cache, L1Out, L1State};
use ghostwriter_core::msg::{Endpoint, Grant, Msg, Payload, WireTag};
use ghostwriter_core::scribe::ScribePolicy;
use ghostwriter_core::{Addr, Stats};
use ghostwriter_mem::BlockData;

const ADDR: u64 = 0x4000;

fn l1() -> (L1Cache, Stats) {
    (
        L1Cache::new(
            0,
            8,
            2,
            1,
            BaseProtocol::Mesi,
            Some(GwParams {
                scribe: ScribePolicy::Bitwise,
                enable_gs: true,
                enable_gi: true,
                gi_stores: GiStorePolicy::Fallback,
                max_hidden_writes: None,
            }),
            false,
        ),
        Stats::default(),
    )
}

fn req(kind: AccessKind, value: u64) -> CoreReq {
    CoreReq {
        addr: Addr(ADDR),
        size: 4,
        value,
        kind,
    }
}

fn dir_msg(payload: Payload) -> Msg {
    Msg {
        src: Endpoint::Dir(0),
        dst: Endpoint::L1(0),
        block: Addr(ADDR).block(),
        payload,
        tag: WireTag::default(),
    }
}

/// Observable outcome class of one transition.
#[derive(Debug, PartialEq, Eq)]
enum Action {
    /// Serviced locally, no messages.
    Hit,
    /// Sent the named request and blocked.
    Sent(&'static str),
}

fn classify(outs: &[L1Out]) -> Action {
    let sent: Vec<&str> = outs
        .iter()
        .filter_map(|o| match o {
            L1Out::Send(m) => Some(m.payload.name()),
            _ => None,
        })
        .collect();
    match sent.as_slice() {
        [] => Action::Hit,
        [one] => Action::Sent(match *one {
            "GETS" => "GETS",
            "GETX" => "GETX",
            "UPGRADE" => "UPGRADE",
            other => panic!("unexpected message {other}"),
        }),
        more => panic!("multiple messages {more:?}"),
    }
}

/// Drives the L1 into `target` for block ADDR via protocol messages.
fn prepare(target: L1State) -> (L1Cache, Stats) {
    let (mut c, mut s) = l1();
    let block = Addr(ADDR).block();
    match target {
        L1State::S | L1State::E => {
            c.access(req(AccessKind::Load, 0), &mut s).unwrap();
            let grant = if target == L1State::S {
                Grant::Shared
            } else {
                Grant::Exclusive
            };
            c.handle_msg(
                dir_msg(Payload::Data {
                    data: BlockData::zeroed(),
                    grant,
                }),
                &mut s,
            )
            .unwrap();
        }
        L1State::M => {
            c.access(req(AccessKind::Store, 0), &mut s).unwrap();
            c.handle_msg(
                dir_msg(Payload::Data {
                    data: BlockData::zeroed(),
                    grant: Grant::Modified,
                }),
                &mut s,
            )
            .unwrap();
        }
        L1State::I => {
            let (cc, ss) = prepare(L1State::S);
            let (mut cc, mut ss) = (cc, ss);
            cc.handle_msg(dir_msg(Payload::Inv), &mut ss).unwrap();
            assert_eq!(cc.state_of(block), Some(L1State::I));
            return (cc, ss);
        }
        L1State::Gs => {
            let (mut cc, mut ss) = prepare(L1State::S);
            cc.access(req(AccessKind::Scribble { d: 4 }, 1), &mut ss)
                .unwrap();
            assert_eq!(cc.state_of(block), Some(L1State::Gs));
            return (cc, ss);
        }
        L1State::Gi => {
            let (mut cc, mut ss) = prepare(L1State::I);
            cc.access(req(AccessKind::Scribble { d: 4 }, 1), &mut ss)
                .unwrap();
            assert_eq!(cc.state_of(block), Some(L1State::Gi));
            return (cc, ss);
        }
        other => panic!("prepare({other:?}) unsupported"),
    }
    assert_eq!(c.state_of(block), Some(target));
    (c, s)
}

/// One row of the Fig. 3 table: (start state, access, value) →
/// (action, end state). Values are chosen against block contents that
/// are 0 (fresh grants) or 1 (after the preparing scribble), with d = 4:
/// value 3 passes the check, value 0x100 fails it.
#[test]
fn fig3_transition_table() {
    use AccessKind::*;
    use L1State::*;
    let pass = 3u64;
    let fail = 0x100u64;
    let rows: Vec<(L1State, AccessKind, u64, Action, L1State)> = vec![
        // Loads hit in every readable state.
        (S, Load, 0, Action::Hit, S),
        (E, Load, 0, Action::Hit, E),
        (M, Load, 0, Action::Hit, M),
        (Gs, Load, 0, Action::Hit, Gs),
        (Gi, Load, 0, Action::Hit, Gi),
        (I, Load, 0, Action::Sent("GETS"), IsD),
        // Conventional stores.
        (S, Store, 7, Action::Sent("UPGRADE"), SmA),
        (E, Store, 7, Action::Hit, M),
        (M, Store, 7, Action::Hit, M),
        (Gs, Store, 7, Action::Sent("UPGRADE"), SmA),
        (Gi, Store, 7, Action::Hit, Gi), // Fig. 3 Store self-loop
        (I, Store, 7, Action::Sent("GETX"), ImAd),
        // Scribbles within d.
        (S, Scribble { d: 4 }, pass, Action::Hit, Gs),
        (E, Scribble { d: 4 }, pass, Action::Hit, M),
        (M, Scribble { d: 4 }, pass, Action::Hit, M),
        (Gs, Scribble { d: 4 }, pass, Action::Hit, Gs),
        (Gi, Scribble { d: 4 }, pass, Action::Hit, Gi),
        (I, Scribble { d: 4 }, pass, Action::Hit, Gi),
        // Scribbles beyond d fall back to the conventional path.
        (S, Scribble { d: 4 }, fail, Action::Sent("UPGRADE"), SmA),
        (E, Scribble { d: 4 }, fail, Action::Hit, M),
        (M, Scribble { d: 4 }, fail, Action::Hit, M),
        (Gs, Scribble { d: 4 }, fail, Action::Sent("UPGRADE"), SmA),
        (Gi, Scribble { d: 4 }, fail, Action::Sent("GETX"), ImAd),
        (I, Scribble { d: 4 }, fail, Action::Sent("GETX"), ImAd),
    ];
    for (start, kind, value, want_action, want_state) in rows {
        let (mut c, mut s) = prepare(start);
        let outs = c.access(req(kind, value), &mut s).unwrap();
        let action = classify(&outs);
        assert_eq!(
            action, want_action,
            "{start:?} + {kind:?}({value:#x}) took the wrong action"
        );
        assert_eq!(
            c.state_of(Addr(ADDR).block()),
            Some(want_state),
            "{start:?} + {kind:?}({value:#x}) ended in the wrong state"
        );
    }
}

/// Invalidations per Fig. 3: S and GS collapse to I (keeping the tag),
/// transients persist, and the ack always flows.
#[test]
fn invalidation_rows() {
    use L1State::*;
    for (start, want) in [(S, I), (Gs, I), (I, I)] {
        let (mut c, mut s) = prepare(start);
        let outs = c.handle_msg(dir_msg(Payload::Inv), &mut s).unwrap();
        assert!(
            outs.iter().any(|o| matches!(o, L1Out::Send(m)
                if m.payload.name() == "INV_ACK")),
            "{start:?}: INV must be acked"
        );
        assert_eq!(c.state_of(Addr(ADDR).block()), Some(want), "{start:?}");
    }
}

/// Timeout per Fig. 3: GI → I (and nothing else moves).
#[test]
fn timeout_rows() {
    use L1State::*;
    for (start, want) in [(Gi, I), (Gs, Gs), (S, S), (M, M), (E, E), (I, I)] {
        let (mut c, mut s) = prepare(start);
        c.gi_timeout_sweep(&mut s).unwrap();
        assert_eq!(c.state_of(Addr(ADDR).block()), Some(want), "{start:?}");
    }
}

/// Forward handling: owners supply data; FWD_GETS downgrades to S,
/// FWD_GETX leaves a tagged Invalid line (the GI opportunity).
#[test]
fn forward_rows() {
    use L1State::*;
    for (start, fwd, want) in [
        (M, Payload::FwdGets, S),
        (E, Payload::FwdGets, S),
        (M, Payload::FwdGetx, I),
        (E, Payload::FwdGetx, I),
    ] {
        let (mut c, mut s) = prepare(start);
        let outs = c.handle_msg(dir_msg(fwd.clone()), &mut s).unwrap();
        assert!(
            outs.iter().any(|o| matches!(o, L1Out::Send(m)
                if m.payload.name() == "DATA_TO_DIR")),
            "{start:?} + {}: owner must supply data",
            fwd.name()
        );
        assert_eq!(
            c.state_of(Addr(ADDR).block()),
            Some(want),
            "{start:?} + {}",
            fwd.name()
        );
    }
}

/// The Capture policy flips exactly one row of the table: a failing
/// scribble on GI hits instead of sending GETX.
#[test]
fn capture_policy_flips_the_gi_fail_row() {
    let (mut c, mut s) = (
        L1Cache::new(
            0,
            8,
            2,
            1,
            BaseProtocol::Mesi,
            Some(GwParams {
                scribe: ScribePolicy::Bitwise,
                enable_gs: true,
                enable_gi: true,
                gi_stores: GiStorePolicy::Capture,
                max_hidden_writes: None,
            }),
            false,
        ),
        Stats::default(),
    );
    // Reach GI: S → INV → I → passing scribble.
    c.access(req(AccessKind::Load, 0), &mut s).unwrap();
    c.handle_msg(
        dir_msg(Payload::Data {
            data: BlockData::zeroed(),
            grant: Grant::Shared,
        }),
        &mut s,
    )
    .unwrap();
    c.handle_msg(dir_msg(Payload::Inv), &mut s).unwrap();
    c.access(req(AccessKind::Scribble { d: 4 }, 1), &mut s)
        .unwrap();
    assert_eq!(c.state_of(Addr(ADDR).block()), Some(L1State::Gi));
    // Failing scribble: hits under Capture.
    let outs = c
        .access(req(AccessKind::Scribble { d: 4 }, 0x100), &mut s)
        .unwrap();
    assert_eq!(classify(&outs), Action::Hit);
    assert_eq!(c.state_of(Addr(ADDR).block()), Some(L1State::Gi));
}
