//! `docs/protocol-table.md` is generated from the declarative
//! transition table in `ghostwriter_core::proto` and committed, so the
//! protocol spec people read is provably the one the controllers run.
//! This test fails when the committed rendering goes stale.

use std::fs;
use std::path::PathBuf;

#[test]
fn protocol_table_doc_is_current() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/protocol-table.md");
    let want = ghostwriter_core::proto::render_markdown();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &want).unwrap();
        return;
    }
    let have = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test \
             -p ghostwriter-core --test protocol_table_doc",
            path.display()
        )
    });
    assert_eq!(
        have, want,
        "docs/protocol-table.md is stale; regenerate with UPDATE_GOLDEN=1 \
         cargo test -p ghostwriter-core --test protocol_table_doc"
    );
}
