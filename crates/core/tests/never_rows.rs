//! Unit tests for the 16 defensive `Reach::Never` protocol rows
//! (ISSUE PR 6), plus the malformed-traffic arms the protocol-family
//! states added (ISSUE PR 7): Forward grants under a base that lacks
//! MESIF, forwards landing on plain sharers, and stray FWD_NACKs all
//! route into the same typed error rows.
//!
//! Each test hand-constructs the malformed event — a demand access
//! against a transient line, a stray or mistimed message — and asserts
//! the controller reports a *typed* [`ProtocolError`] naming the row,
//! rather than panicking. L1 rows are driven directly on an
//! [`L1Cache`] (using the `force_line` fault-injection hook for states
//! the harness can never legally reach); directory rows are driven
//! through a [`System`] with `inject`ed byzantine messages.

use ghostwriter_core::config::BaseProtocol;
use ghostwriter_core::harness::{node_key, Op, System, SystemConfig, Violation};
use ghostwriter_core::l1::{AccessKind, CoreReq, L1Cache, L1State};
use ghostwriter_core::msg::{Endpoint, Grant, Msg, OwnerXfer, Payload, WireTag};
use ghostwriter_core::proto::{DirRowId, L1RowId, Reach};
use ghostwriter_core::{Addr, BlockAddr, ProtocolError, Stats};
use ghostwriter_mem::BlockData;

// ---------------------------------------------------------------- L1 --

fn l1() -> (L1Cache, Stats) {
    (
        L1Cache::new(0, 1, 2, 1, BaseProtocol::Mesi, None, false),
        Stats::default(),
    )
}

fn load(addr: u64) -> CoreReq {
    CoreReq {
        addr: Addr(addr),
        size: 8,
        value: 0,
        kind: AccessKind::Load,
    }
}

fn store(addr: u64) -> CoreReq {
    CoreReq {
        addr: Addr(addr),
        size: 8,
        value: 7,
        kind: AccessKind::Store,
    }
}

fn to_l1(payload: Payload) -> Msg {
    Msg {
        src: Endpoint::Dir(0),
        dst: Endpoint::L1(0),
        block: BlockAddr(0),
        payload,
        tag: WireTag::default(),
    }
}

#[track_caller]
fn assert_row(err: ProtocolError, row: &str) {
    assert_eq!(err.row, Some(row), "detail: {}", err.detail);
}

#[test]
fn load_in_transient_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    l1.force_line(BlockAddr(0), L1State::IsD);
    let err = l1.access(load(0), &mut stats).unwrap_err();
    assert_row(err, "load_in_transient");
}

#[test]
fn store_in_transient_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    l1.force_line(BlockAddr(0), L1State::SmA);
    let err = l1.access(store(0), &mut stats).unwrap_err();
    assert_row(err, "store_in_transient");
}

#[test]
fn evict_transient_is_a_typed_error() {
    // One set × one way: a second block's miss must evict the first —
    // and the first is stuck mid-transaction.
    let mut l1 = L1Cache::new(0, 1, 1, 1, BaseProtocol::Mesi, None, false);
    let mut stats = Stats::default();
    l1.force_line(BlockAddr(0), L1State::ImAd);
    let err = l1.access(load(64), &mut stats).unwrap_err();
    assert_row(err, "evict_transient");
}

#[test]
fn inv_against_a_writer_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    l1.force_line(BlockAddr(0), L1State::M);
    let err = l1.handle_msg(to_l1(Payload::Inv), &mut stats).unwrap_err();
    assert_row(err, "inv_writer");
}

#[test]
fn forward_without_owned_line_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    let err = l1
        .handle_msg(to_l1(Payload::FwdGets), &mut stats)
        .unwrap_err();
    assert_row(err, "fwd_bad_state");
}

#[test]
fn unexpected_data_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    let err = l1
        .handle_msg(
            to_l1(Payload::Data {
                data: BlockData::zeroed(),
                grant: Grant::Shared,
            }),
            &mut stats,
        )
        .unwrap_err();
    assert_row(err, "data_unexpected");
}

#[test]
fn unexpected_upg_ack_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    let err = l1
        .handle_msg(to_l1(Payload::UpgAck), &mut stats)
        .unwrap_err();
    assert_row(err, "upg_ack_unexpected");
}

#[test]
fn unexpected_wb_ack_is_a_typed_error() {
    let (mut l1, mut stats) = l1();
    let err = l1
        .handle_msg(to_l1(Payload::WbAck), &mut stats)
        .unwrap_err();
    assert_row(err, "wb_ack_unexpected");
}

#[test]
fn request_payload_at_an_l1_is_a_typed_error() {
    // GETS is an L1 → directory request; an L1 must never receive one.
    let (mut l1, mut stats) = l1();
    let err = l1.handle_msg(to_l1(Payload::Gets), &mut stats).unwrap_err();
    assert_row(err, "l1_unexpected_msg");
}

#[test]
fn forward_grant_under_mesi_is_a_typed_error() {
    // A Forward grant only exists in MESIF. A MESI L1 with a pending
    // load must reject it through `data_unexpected` rather than filling
    // an F line its table has no rows for.
    let (mut l1, mut stats) = l1();
    l1.access(load(0), &mut stats).unwrap();
    assert!(l1.busy(), "cold load must miss");
    let err = l1
        .handle_msg(
            to_l1(Payload::Data {
                data: BlockData::zeroed(),
                grant: Grant::Forward,
            }),
            &mut stats,
        )
        .unwrap_err();
    assert_row(err, "data_unexpected");
}

#[test]
fn forward_against_a_plain_sharer_is_a_typed_error() {
    // The MESIF directory only forwards to the tracked F holder; a
    // FWD_GETS landing on a plain S copy is malformed even when the
    // stale-bounce row is live.
    let mut l1 = L1Cache::new(0, 1, 2, 1, BaseProtocol::Mesif, None, false);
    let mut stats = Stats::default();
    l1.force_line(BlockAddr(0), L1State::S);
    let err = l1
        .handle_msg(to_l1(Payload::FwdGets), &mut stats)
        .unwrap_err();
    assert_row(err, "fwd_bad_state");
}

#[test]
fn fwd_nack_at_an_l1_is_a_typed_error() {
    // FWD_NACK is an L1 → directory bounce; an L1 must never receive
    // one.
    let mut l1 = L1Cache::new(0, 1, 2, 1, BaseProtocol::Mesif, None, false);
    let mut stats = Stats::default();
    let err = l1
        .handle_msg(to_l1(Payload::FwdNack), &mut stats)
        .unwrap_err();
    assert_row(err, "l1_unexpected_msg");
}

// --------------------------------------------------------- directory --

fn system(base: BaseProtocol) -> System {
    System::new(SystemConfig {
        cores: 2,
        blocks: 1,
        l1_sets: 1,
        l1_ways: 2,
        l2_sets: 1,
        l2_ways: 2,
        gw: None,
        base,
        disabled_row: None,
        recovery: None,
    })
}

/// Delivers every in-flight message until the network is quiescent.
fn drain(sys: &mut System) {
    loop {
        let channels = sys.channels();
        if channels.is_empty() {
            break;
        }
        for key in channels {
            sys.deliver(key).expect("clean delivery while draining");
        }
    }
}

/// Injects `payload` from `src` to directory bank 0 and delivers it,
/// returning the protocol error it must raise.
fn inject_to_dir(sys: &mut System, src: Endpoint, payload: Payload) -> ProtocolError {
    let block = sys.block_of(0);
    sys.inject(Msg {
        src,
        dst: Endpoint::Dir(0),
        block,
        payload,
        tag: WireTag::default(),
    });
    let key = (node_key(src, 2), node_key(Endpoint::Dir(0), 2));
    match sys.deliver(key) {
        Err(Violation::Protocol(e)) => e,
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

#[test]
fn stray_unblock_is_a_typed_error() {
    let mut sys = system(BaseProtocol::Mesi);
    let err = inject_to_dir(&mut sys, Endpoint::L1(0), Payload::Unblock);
    assert_row(err, "stray_unblock");
}

#[test]
fn command_payload_at_the_directory_is_a_typed_error() {
    // INV is a directory → L1 command; the directory must never
    // receive one.
    let mut sys = system(BaseProtocol::Mesi);
    let err = inject_to_dir(&mut sys, Endpoint::L1(0), Payload::Inv);
    assert_row(err, "dir_unexpected_msg");
}

#[test]
fn stray_inv_ack_is_a_typed_error() {
    let mut sys = system(BaseProtocol::Mesi);
    let err = inject_to_dir(&mut sys, Endpoint::L1(1), Payload::InvAck);
    assert_row(err, "stray_inv_ack");
}

#[test]
fn inv_ack_during_gets_is_a_typed_error() {
    let mut sys = system(BaseProtocol::Mesi);
    // Start a GETS transaction and leave it in flight at the directory.
    sys.issue(0, 0, Op::Load { writer: 0 }).unwrap();
    sys.deliver((node_key(Endpoint::L1(0), 2), node_key(Endpoint::Dir(0), 2)))
        .unwrap();
    let err = inject_to_dir(&mut sys, Endpoint::L1(1), Payload::InvAck);
    assert_row(err, "inv_ack_gets");
}

#[test]
fn stray_owner_data_is_a_typed_error() {
    let mut sys = system(BaseProtocol::Mesi);
    let err = inject_to_dir(
        &mut sys,
        Endpoint::L1(0),
        Payload::DataToDir {
            data: BlockData::zeroed(),
            xfer: OwnerXfer::Dropped,
        },
    );
    assert_row(err, "stray_owner_data");
}

#[test]
fn owner_data_during_upgrade_is_a_typed_error() {
    // MSI so the first reader is granted S (not E) and a store must go
    // through a real UPGRADE transaction.
    let mut sys = system(BaseProtocol::Msi);
    sys.issue(0, 0, Op::Load { writer: 0 }).unwrap();
    drain(&mut sys);
    sys.issue(0, 0, Op::Store).unwrap();
    // Deliver only the UPGRADE so the transaction stays busy.
    sys.deliver((node_key(Endpoint::L1(0), 2), node_key(Endpoint::Dir(0), 2)))
        .unwrap();
    let err = inject_to_dir(
        &mut sys,
        Endpoint::L1(1),
        Payload::DataToDir {
            data: BlockData::zeroed(),
            xfer: OwnerXfer::Dropped,
        },
    );
    assert_row(err, "owner_data_upgrade");
}

#[test]
fn stray_fwd_nack_is_a_typed_error() {
    // FWD_NACK with no transaction in flight (MESIF's bounce arriving
    // after its transaction already completed some other way) is
    // byzantine traffic, not a race.
    let mut sys = system(BaseProtocol::Mesif);
    let err = inject_to_dir(&mut sys, Endpoint::L1(1), Payload::FwdNack);
    assert_row(err, "dir_unexpected_msg");
}

#[test]
fn stray_mem_data_is_a_typed_error() {
    let mut sys = system(BaseProtocol::Mesi);
    let err = inject_to_dir(
        &mut sys,
        Endpoint::Mem(0),
        Payload::MemData {
            data: BlockData::zeroed(),
        },
    );
    assert_row(err, "stray_mem_data");
}

// ------------------------------------------------------------ closure --

#[test]
fn the_never_rows_are_exactly_the_sixteen_tested_here() {
    let l1: Vec<&str> = L1RowId::all()
        .filter(|r| matches!(r.row().reach, Reach::Never))
        .map(|r| r.name())
        .collect();
    assert_eq!(
        l1,
        [
            "load_in_transient",
            "store_in_transient",
            "evict_transient",
            "inv_writer",
            "fwd_bad_state",
            "data_unexpected",
            "upg_ack_unexpected",
            "wb_ack_unexpected",
            "l1_unexpected_msg",
        ]
    );
    let dir: Vec<&str> = DirRowId::all()
        .filter(|r| matches!(r.row().reach, Reach::Never))
        .map(|r| r.name())
        .collect();
    assert_eq!(
        dir,
        [
            "inv_ack_gets",
            "owner_data_upgrade",
            "stray_inv_ack",
            "stray_owner_data",
            "stray_mem_data",
            "stray_unblock",
            "dir_unexpected_msg",
        ]
    );
}
