//! Deterministic discrete-event simulation kernel for the Ghostwriter CMP
//! simulator.
//!
//! This crate provides the two pieces of machinery every component of the
//! simulated machine is built on:
//!
//! * [`EventQueue`] — a time-ordered event queue with deterministic FIFO
//!   ordering for events scheduled at the same cycle, so a simulation run is
//!   a pure function of its inputs.
//! * [`harness`] — the execution-driven thread harness. Simulated threads
//!   run as real OS threads; every operation they perform against the
//!   simulated machine is a rendezvous with the single-threaded engine, so
//!   workload computation costs wall-clock time but zero simulated time.
//!
//! The kernel knows nothing about caches or coherence; those live in
//! `ghostwriter-core`.

pub mod harness;
pub mod queue;

pub use harness::{ThreadHarness, ThreadPort};
pub use queue::EventQueue;

/// Simulated time, measured in core clock cycles (1 GHz in the paper's
/// configuration, so one cycle is one nanosecond).
pub type Cycle = u64;
