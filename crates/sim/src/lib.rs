//! Deterministic discrete-event simulation kernel for the Ghostwriter CMP
//! simulator.
//!
//! This crate provides the two pieces of machinery every component of the
//! simulated machine is built on:
//!
//! * [`EventQueue`] — a time-ordered event queue with deterministic FIFO
//!   ordering for events scheduled at the same cycle, so a simulation run is
//!   a pure function of its inputs.
//! * [`resume`] — the execution-driven workload engine. Simulated threads
//!   are resumable state machines ([`Resumable`]) stepped by the engine on
//!   its own thread: each simulated operation is one plain function call,
//!   with no OS threads, channels or context switches on the hot path.
//!   Workloads are written as ordinary `async` bodies and adapted by
//!   [`FutureThread`]; workload computation costs wall-clock time but zero
//!   simulated time, exactly as before.
//!
//! The retired OS-thread rendezvous harness ([`harness`]) survives behind
//! the `legacy-threads` feature as a differential-testing oracle for the
//! resumable engine.
//!
//! The kernel knows nothing about caches or coherence; those live in
//! `ghostwriter-core`.

#[cfg(feature = "legacy-threads")]
pub mod harness;
pub mod queue;
pub mod resume;

#[cfg(feature = "legacy-threads")]
pub use harness::{ThreadHarness, ThreadPort};
pub use queue::EventQueue;
pub use resume::{panic_message, FutureThread, OpCell, Resumable, Step};

/// Simulated time, measured in core clock cycles (1 GHz in the paper's
/// configuration, so one cycle is one nanosecond).
pub type Cycle = u64;
