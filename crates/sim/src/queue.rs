//! Deterministic time-ordered event queue.
//!
//! Layout: a fixed timing wheel of [`WHEEL_SLOTS`] FIFO buckets for
//! near-future events (push and pop are O(1) — a bucket append and a
//! bitmap scan), backed by a binary heap for the rare far-future push.
//! Simulator delays are small constants (cache latencies, NoC hops,
//! DRAM), so in practice virtually every event lives in the wheel and
//! the heap stays empty; the dense buckets replace the pointer-chasing
//! sift of a `BinaryHeap` on the busiest edge of the simulation kernel
//! (one push + one pop per event).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Number of wheel buckets (power of two). Every push whose delay from
/// the current clock is below this lands in bucket `time % WHEEL_SLOTS`;
/// longer delays overflow to the heap.
const WHEEL_SLOTS: usize = 256;
/// Occupancy-bitmap words covering the wheel.
const WORDS: usize = WHEEL_SLOTS / 64;

/// An overflow-heap entry: ordered by `(time, seq)` so that two events
/// scheduled for the same cycle pop in the order they were pushed. This
/// is what makes whole-machine simulation deterministic: the heap alone
/// would break ties arbitrarily.
#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-queue of events keyed by simulated cycle, FIFO within a cycle.
///
/// ```
/// use ghostwriter_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future buckets, `time % WHEEL_SLOTS` each. Every wheel
    /// entry's time lies in `[now, now + WHEEL_SLOTS)`, so a bucket
    /// never mixes two distinct times: a push of `t + WHEEL_SLOTS`
    /// while `t` is still pending would have delay >= WHEEL_SLOTS and
    /// overflow to the heap instead. Within a bucket, append order IS
    /// seq order, so the FIFO-within-a-cycle contract needs no
    /// per-entry sequence number here.
    wheel: Box<[VecDeque<E>]>,
    /// One bit per non-empty wheel bucket.
    occupied: [u64; WORDS],
    /// Entries currently in the wheel (skips the bitmap scan when 0).
    wheel_len: usize,
    /// Far-future overflow. For any time `t`, every heap entry at `t`
    /// was pushed while `now <= t - WHEEL_SLOTS` and every wheel entry
    /// at `t` strictly later, so heap entries always carry smaller seqs
    /// than wheel entries of the same cycle: draining heap-then-bucket
    /// is exactly global push order.
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Time of the most recently popped event; pushes in the past are a bug.
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue whose overflow heap can hold `capacity`
    /// events before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            wheel: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            wheel_len: 0,
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0,
        }
    }

    /// Resets the queue to its initial state (cycle 0, seq 0, no
    /// events) while keeping every allocation — bucket buffers and the
    /// heap — so a queue can be recycled across simulation runs without
    /// re-growing.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for bucket in self.wheel.iter_mut() {
                bucket.clear();
            }
        }
        self.occupied = [0; WORDS];
        self.wheel_len = 0;
        self.heap.clear();
        self.next_seq = 0;
        self.now = 0;
    }

    /// Number of events the overflow heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (before the last popped event) —
    /// scheduling backwards in time is always a component bug.
    #[inline]
    pub fn push(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time} < now={}",
            self.now
        );
        if time - self.now < WHEEL_SLOTS as Cycle {
            let slot = time as usize & (WHEEL_SLOTS - 1);
            self.wheel[slot].push_back(event);
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
        } else {
            let seq = self.next_seq;
            self.heap.push(Reverse(Entry { time, seq, event }));
        }
        self.next_seq += 1;
    }

    /// Schedules `event` `delay` cycles after the current time.
    #[inline]
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        self.push(self.now + delay, event);
    }

    /// Time of the earliest wheel entry, via a bitmap scan starting at
    /// the current cycle's slot and wrapping once around.
    fn next_wheel_time(&self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = self.now as usize & (WHEEL_SLOTS - 1);
        let (w0, b0) = (start / 64, start % 64);
        let to_time = |slot: usize| {
            let d = (slot + WHEEL_SLOTS - start) & (WHEEL_SLOTS - 1);
            Some(self.now + d as Cycle)
        };
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return to_time(w0 * 64 + first.trailing_zeros() as usize);
        }
        for k in 1..WORDS {
            let w = (w0 + k) % WORDS;
            if self.occupied[w] != 0 {
                return to_time(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        let wrapped = self.occupied[w0] & !(!0u64 << b0);
        if wrapped != 0 {
            return to_time(w0 * 64 + wrapped.trailing_zeros() as usize);
        }
        // wheel_len > 0 guarantees some bit is set.
        unreachable!("wheel_len > 0 but no occupied bucket")
    }

    /// Pops the front of the bucket for `time`, maintaining the bitmap.
    #[inline]
    fn pop_bucket(&mut self, time: Cycle) -> E {
        let slot = time as usize & (WHEEL_SLOTS - 1);
        let ev = self.wheel[slot]
            .pop_front()
            .expect("bucket known non-empty");
        self.wheel_len -= 1;
        if self.wheel[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        ev
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let wheel_t = self.next_wheel_time();
        let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
        let time = match (wheel_t, heap_t) {
            (None, None) => return None,
            (Some(w), None) => w,
            (None, Some(h)) => h,
            (Some(w), Some(h)) => w.min(h),
        };
        debug_assert!(time >= self.now);
        self.now = time;
        // On a tie, the heap entry was pushed first (smaller seq).
        if heap_t == Some(time) {
            let Reverse(e) = self.heap.pop().expect("peeked entry present");
            return Some((time, e.event));
        }
        Some((time, self.pop_bucket(time)))
    }

    /// Pops *every* event scheduled for the earliest pending cycle into
    /// `out` (appending, FIFO order), advancing the clock to that cycle.
    /// Returns the batch's cycle, or `None` if the queue is empty.
    ///
    /// Popping a whole cycle at once lets the simulation kernel deliver
    /// same-cycle messages back-to-back without interleaving queue
    /// queries: events pushed *while the batch is processed* are pushed
    /// later than anything in the batch, so handling the batch first is
    /// exactly the order a pop-at-a-time loop would produce.
    #[inline]
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<Cycle> {
        let wheel_t = self.next_wheel_time();
        let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
        let time = match (wheel_t, heap_t) {
            (None, None) => return None,
            (Some(w), None) => w,
            (None, Some(h)) => h,
            (Some(w), Some(h)) => w.min(h),
        };
        debug_assert!(time >= self.now);
        self.now = time;
        // Heap entries of this cycle were all pushed before any wheel
        // entry of this cycle (see the `heap` field docs), so draining
        // heap-then-bucket preserves push order.
        while self.heap.peek().is_some_and(|Reverse(e)| e.time == time) {
            let Reverse(e) = self.heap.pop().expect("peeked entry present");
            out.push(e.event);
        }
        if wheel_t == Some(time) {
            let slot = time as usize & (WHEEL_SLOTS - 1);
            self.wheel_len -= self.wheel[slot].len();
            out.extend(self.wheel[slot].drain(..));
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        Some(time)
    }

    /// Advances the clock to `time` without popping an event.
    ///
    /// This exists for callers that keep their own one-event fast path
    /// beside the queue (the machine's fused reply→fetch slot): when
    /// the deferred event precedes everything queued, the caller
    /// dispatches it directly and only the clock needs to move.
    ///
    /// # Panics
    /// Panics (debug builds) if `time` is in the past or would skip
    /// over an earlier pending event — either breaks time ordering.
    #[inline]
    pub fn advance_to(&mut self, time: Cycle) {
        debug_assert!(
            time >= self.now,
            "clock advanced backwards: t={time} < now={}",
            self.now
        );
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= time),
            "advance_to({time}) would skip a pending event"
        );
        self.now = time;
    }

    /// Peeks at the time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let wheel_t = self.next_wheel_time();
        let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
        match (wheel_t, heap_t) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(h)) => Some(h),
            (Some(w), Some(h)) => Some(w.min(h)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.push_after(3, ());
        assert_eq!(q.pop(), Some((8, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_in_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        q.push(2, 0);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(1));
    }

    #[test]
    fn clear_recycles_the_allocation_and_resets_the_clock() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..50u64 {
            q.push(i, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.now(), 49);
        q.clear();
        assert_eq!(q.now(), 0);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "clear must keep the heap allocation");
        // A recycled queue behaves like a fresh one: time 0 is pushable
        // again and FIFO seq numbering restarts.
        q.push(0, 7);
        q.push(0, 8);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), Some((0, 8)));
    }

    #[test]
    fn pop_batch_drains_one_cycle_in_fifo_order() {
        let mut q = EventQueue::new();
        q.push(10, "b");
        q.push(5, "a1");
        q.push(10, "c");
        q.push(5, "a2");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(5));
        assert_eq!(batch, vec!["a1", "a2"]);
        assert_eq!(q.now(), 5);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(10));
        assert_eq!(batch, vec!["b", "c"]);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_batch_matches_pop_at_a_time() {
        // The same schedule drained by pop() and by pop_batch() (with
        // same-cycle pushes during batch handling) yields one sequence.
        let seed = [(0u64, 0u32), (0, 1), (3, 2), (3, 3)];
        let next = |t: u64, v: u32| (t + (v as u64 % 2), v + 4);

        let mut singles = Vec::new();
        let mut q = EventQueue::new();
        for &(t, v) in &seed {
            q.push(t, v);
        }
        while let Some((t, v)) = q.pop() {
            singles.push((t, v));
            if v < 12 {
                let (nt, nv) = next(t, v);
                q.push(nt, nv);
            }
        }

        let mut batched = Vec::new();
        let mut q = EventQueue::new();
        for &(t, v) in &seed {
            q.push(t, v);
        }
        let mut batch = Vec::new();
        while let Some(t) = q.pop_batch(&mut batch) {
            for v in batch.drain(..) {
                batched.push((t, v));
                if v < 12 {
                    let (nt, nv) = next(t, v);
                    q.push(nt, nv);
                }
            }
        }
        assert_eq!(singles, batched);
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        // Two identical interleavings must yield identical pop sequences.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.push(0, 0u32);
            q.push(0, 1);
            while let Some((t, v)) = q.pop() {
                out.push((t, v));
                if v < 6 {
                    q.push(t + (v as u64 % 3), v + 2);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_pushes_overflow_and_pop_in_order() {
        // Delays past the wheel horizon take the heap path; they must
        // still interleave correctly with near-future events.
        let mut q = EventQueue::new();
        q.push(1000, "far2");
        q.push(5, "near");
        q.push(999, "far1");
        q.push(1000, "far3");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((999, "far1")));
        assert_eq!(q.pop(), Some((1000, "far2")));
        assert_eq!(q.pop(), Some((1000, "far3")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo_across_heap_and_wheel() {
        // An event pushed far in advance (heap) and one pushed close to
        // the deadline (wheel) for the SAME cycle must pop in push
        // order: the far push always comes first.
        let mut q = EventQueue::new();
        q.push(300, "pushed-early"); // delay 300 >= wheel horizon: heap
        q.push(100, "advance");
        assert_eq!(q.pop(), Some((100, "advance")));
        q.push(300, "pushed-late"); // delay 200 < horizon: wheel
        assert_eq!(q.pop(), Some((300, "pushed-early")));
        assert_eq!(q.pop(), Some((300, "pushed-late")));

        // Same scenario drained as one batch.
        let mut q = EventQueue::new();
        q.push(300, "pushed-early");
        q.push(100, "advance");
        q.pop();
        q.push(300, "pushed-late");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(300));
        assert_eq!(batch, vec!["pushed-early", "pushed-late"]);
    }

    #[test]
    fn wheel_slot_reuse_across_laps() {
        // The same bucket serves time t and t + WHEEL_SLOTS on
        // successive laps of the wheel.
        let mut q = EventQueue::new();
        let lap = 256u64;
        q.push(3, "lap0");
        q.push(3 + lap, "lap1"); // heap at push time (delay > horizon)
        assert_eq!(q.pop(), Some((3, "lap0")));
        q.push(3 + 2 * lap, "lap2");
        assert_eq!(q.pop(), Some((3 + lap, "lap1")));
        assert_eq!(q.pop(), Some((3 + 2 * lap, "lap2")));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out sorted by time, FIFO within a time, regardless
        /// of push order — checked against a stable-sort oracle. Times
        /// span both the wheel and the overflow heap.
        #[test]
        fn pops_match_stable_sort_oracle(times in proptest::collection::vec(0u64..600, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut oracle: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
            oracle.sort_by_key(|&(t, _)| t); // stable: preserves push order
            let mut popped = Vec::new();
            while let Some(p) = q.pop() {
                popped.push(p);
            }
            prop_assert_eq!(popped, oracle);
        }

        /// Interleaved push/pop never violates the clock monotonicity.
        #[test]
        fn clock_is_monotone(ops in proptest::collection::vec((0u64..20, any::<bool>()), 1..100)) {
            let mut q = EventQueue::new();
            let mut last = 0;
            for (delay, do_pop) in ops {
                q.push_after(delay, ());
                if do_pop {
                    if let Some((t, ())) = q.pop() {
                        prop_assert!(t >= last);
                        last = t;
                    }
                }
            }
        }

        /// Interleaved push/pop with delays spanning the wheel horizon
        /// matches a naive stable model queue exactly — the wheel/heap
        /// split and their same-cycle merge rule are invisible.
        #[test]
        fn interleaved_matches_model(ops in proptest::collection::vec(0u64..600, 1..150)) {
            let mut q = EventQueue::new();
            // Model: (time, seq, value), popped by min (time, seq).
            let mut model: Vec<(u64, usize, usize)> = Vec::new();
            let mut now = 0u64;
            for (i, &op) in ops.iter().enumerate() {
                q.push_after(op, i);
                model.push((now + op, i, i));
                // Pop after every other push, like a live simulation.
                if i % 2 == 1 {
                    let min = model.iter().copied().min().unwrap();
                    model.retain(|&e| e != min);
                    now = min.0;
                    prop_assert_eq!(q.pop(), Some((min.0, min.2)));
                }
            }
            while let Some(got) = q.pop() {
                let min = model.iter().copied().min().unwrap();
                model.retain(|&e| e != min);
                prop_assert_eq!(got, (min.0, min.2));
            }
            prop_assert!(model.is_empty());
        }
    }
}
