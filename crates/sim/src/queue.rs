//! Deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An entry in the queue: ordered by `(time, seq)` so that two events
/// scheduled for the same cycle pop in the order they were pushed. This is
/// what makes whole-machine simulation deterministic: the heap alone would
/// break ties arbitrarily.
#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-heap of events keyed by simulated cycle, FIFO within a cycle.
///
/// ```
/// use ghostwriter_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Time of the most recently popped event; pushes in the past are a bug.
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Creates an empty queue whose heap can hold `capacity` events
    /// before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0,
        }
    }

    /// Resets the queue to its initial state (cycle 0, seq 0, no
    /// events) while keeping the heap's allocation, so a queue can be
    /// recycled across simulation runs without re-growing.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = 0;
    }

    /// Number of events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (before the last popped event) —
    /// scheduling backwards in time is always a component bug.
    #[inline]
    pub fn push(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Schedules `event` `delay` cycles after the current time.
    #[inline]
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        self.push(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Peeks at the time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.push_after(3, ());
        assert_eq!(q.pop(), Some((8, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_in_past_panics() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        q.push(2, 0);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(1));
    }

    #[test]
    fn clear_recycles_the_allocation_and_resets_the_clock() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..50u64 {
            q.push(i, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.now(), 49);
        q.clear();
        assert_eq!(q.now(), 0);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "clear must keep the heap allocation");
        // A recycled queue behaves like a fresh one: time 0 is pushable
        // again and FIFO seq numbering restarts.
        q.push(0, 7);
        q.push(0, 8);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), Some((0, 8)));
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        // Two identical interleavings must yield identical pop sequences.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.push(0, 0u32);
            q.push(0, 1);
            while let Some((t, v)) = q.pop() {
                out.push((t, v));
                if v < 6 {
                    q.push(t + (v as u64 % 3), v + 2);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops come out sorted by time, FIFO within a time, regardless
        /// of push order — checked against a stable-sort oracle.
        #[test]
        fn pops_match_stable_sort_oracle(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut oracle: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
            oracle.sort_by_key(|&(t, _)| t); // stable: preserves push order
            let mut popped = Vec::new();
            while let Some(p) = q.pop() {
                popped.push(p);
            }
            prop_assert_eq!(popped, oracle);
        }

        /// Interleaved push/pop never violates the clock monotonicity.
        #[test]
        fn clock_is_monotone(ops in proptest::collection::vec((0u64..20, any::<bool>()), 1..100)) {
            let mut q = EventQueue::new();
            let mut last = 0;
            for (delay, do_pop) in ops {
                q.push_after(delay, ());
                if do_pop {
                    if let Some((t, ())) = q.pop() {
                        prop_assert!(t >= last);
                        last = t;
                    }
                }
            }
        }
    }
}
