//! Execution-driven thread harness.
//!
//! Each simulated thread runs as a real OS thread. Every operation against
//! the simulated machine is a *rendezvous*: the workload thread sends an
//! operation over a zero-capacity channel and blocks until the engine
//! replies. The engine pulls the next operation of a core only when that
//! core is architecturally ready, so the interleaving of operations — and
//! hence the whole simulation — is decided entirely by the (deterministic)
//! engine, never by the OS scheduler.
//!
//! Workload closures are given a [`ThreadPort`] through which higher layers
//! (the `ThreadCtx` API in `ghostwriter-core`) issue operations.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// Engine-side view of one workload thread.
pub struct EngineSide<Op, Reply> {
    op_rx: Receiver<Op>,
    reply_tx: Sender<Reply>,
    join: Option<JoinHandle<()>>,
}

/// Workload-side half of the rendezvous: issue an operation, block for the
/// reply.
pub struct ThreadPort<Op, Reply> {
    op_tx: Sender<Op>,
    reply_rx: Receiver<Reply>,
    tid: usize,
}

impl<Op, Reply> ThreadPort<Op, Reply> {
    /// Identifier of this simulated thread (== core index it runs on).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Sends `op` to the engine and blocks until the engine replies.
    ///
    /// # Panics
    /// Panics if the engine has gone away (simulation aborted).
    pub fn call(&self, op: Op) -> Reply {
        self.op_tx
            .send(op)
            .expect("simulation engine dropped while thread still running");
        self.reply_rx
            .recv()
            .expect("simulation engine dropped while thread awaiting reply")
    }

    /// Sends `op` without waiting for a reply (used for the final
    /// end-of-thread notification).
    pub fn send_oneway(&self, op: Op) {
        // The engine may already have dropped its receiver when tearing
        // down after an error; the notification is then moot.
        let _ = self.op_tx.send(op);
    }
}

/// Spawns and tracks the OS threads backing the simulated threads.
///
/// `Op` must provide a "thread finished" marker (via the `finish` closure
/// given at spawn time) so the engine can tell voluntary completion apart
/// from a wedged thread, and a "thread panicked" marker for diagnostics.
pub struct ThreadHarness<Op, Reply> {
    threads: Vec<EngineSide<Op, Reply>>,
}

impl<Op: Send + 'static, Reply: Send + 'static> Default for ThreadHarness<Op, Reply> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Op: Send + 'static, Reply: Send + 'static> ThreadHarness<Op, Reply> {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Self {
            threads: Vec::new(),
        }
    }

    /// Number of spawned threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True if no threads were spawned.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Spawns a workload thread. `body` runs on a fresh OS thread with a
    /// [`ThreadPort`]; when it returns (or panics) the marker produced by
    /// `on_exit` is sent to the engine as the thread's last operation.
    ///
    /// Returns the thread id (index).
    pub fn spawn<F, X>(&mut self, body: F, on_exit: X) -> usize
    where
        F: FnOnce(&ThreadPort<Op, Reply>) + Send + 'static,
        X: FnOnce(Option<String>) -> Op + Send + 'static,
    {
        let tid = self.threads.len();
        // Zero-capacity channels: both directions rendezvous.
        let (op_tx, op_rx) = bounded::<Op>(0);
        let (reply_tx, reply_rx) = bounded::<Reply>(0);
        let port = ThreadPort {
            op_tx,
            reply_rx,
            tid,
        };
        let join = std::thread::Builder::new()
            .name(format!("gw-sim-thread-{tid}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| body(&port)));
                let failure = result.err().map(|payload| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string())
                });
                port.send_oneway(on_exit(failure));
            })
            .expect("failed to spawn simulated thread");
        self.threads.push(EngineSide {
            op_rx,
            reply_tx,
            join: Some(join),
        });
        tid
    }

    /// Blocks until thread `tid` submits its next operation.
    ///
    /// This is the engine's rendezvous point: it must only be called when
    /// the simulated core is ready for the thread's next instruction.
    pub fn next_op(&self, tid: usize) -> Op {
        self.threads[tid]
            .op_rx
            .recv()
            .expect("workload thread hung up without sending exit marker")
    }

    /// Delivers `reply` to thread `tid`, unblocking its pending `call`.
    pub fn reply(&self, tid: usize, reply: Reply) {
        self.threads[tid]
            .reply_tx
            .send(reply)
            .expect("workload thread dropped its reply receiver");
    }

    /// Joins all OS threads. Call after every thread has sent its exit
    /// marker; joining earlier deadlocks.
    pub fn join_all(&mut self) {
        for t in &mut self.threads {
            if let Some(h) = t.join.take() {
                h.join()
                    .expect("workload thread panicked after exit marker");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Op {
        Add(u64),
        Exit(Option<String>),
    }

    #[test]
    fn rendezvous_round_trip() {
        let mut h: ThreadHarness<Op, u64> = ThreadHarness::new();
        let tid = h.spawn(
            |port| {
                let mut acc = 0;
                for i in 1..=5 {
                    acc = port.call(Op::Add(i));
                }
                assert_eq!(acc, 15);
            },
            Op::Exit,
        );
        let mut sum = 0;
        loop {
            match h.next_op(tid) {
                Op::Add(x) => {
                    sum += x;
                    h.reply(tid, sum);
                }
                Op::Exit(err) => {
                    assert!(err.is_none());
                    break;
                }
            }
        }
        assert_eq!(sum, 15);
        h.join_all();
    }

    #[test]
    fn engine_controls_interleaving() {
        // Two threads; engine alternates strictly. The observed sequence
        // must follow the engine's schedule, not the OS scheduler's whim.
        let mut h: ThreadHarness<Op, u64> = ThreadHarness::new();
        for _ in 0..2 {
            h.spawn(
                |port| {
                    for i in 0..10 {
                        port.call(Op::Add(i));
                    }
                },
                Op::Exit,
            );
        }
        let mut log = Vec::new();
        let mut done = [false; 2];
        let mut turn = 0;
        while !(done[0] && done[1]) {
            if done[turn] {
                turn = 1 - turn;
                continue;
            }
            match h.next_op(turn) {
                Op::Add(x) => {
                    log.push((turn, x));
                    h.reply(turn, 0);
                }
                Op::Exit(_) => done[turn] = true,
            }
            turn = 1 - turn;
        }
        // Strict alternation while both alive.
        for pair in log.chunks(2).take(10) {
            if pair.len() == 2 {
                assert_ne!(pair[0].0, pair[1].0);
            }
        }
        h.join_all();
    }

    #[test]
    fn panic_in_workload_reported_via_exit_marker() {
        let mut h: ThreadHarness<Op, u64> = ThreadHarness::new();
        let tid = h.spawn(
            |port| {
                port.call(Op::Add(1));
                panic!("boom in workload");
            },
            Op::Exit,
        );
        match h.next_op(tid) {
            Op::Add(_) => h.reply(tid, 0),
            other => panic!("unexpected {other:?}"),
        }
        match h.next_op(tid) {
            Op::Exit(Some(msg)) => assert!(msg.contains("boom in workload")),
            other => panic!("unexpected {other:?}"),
        }
        h.join_all();
    }
}
