//! Resumable workload state machines — the zero-context-switch engine.
//!
//! A simulated thread used to be a real OS thread rendezvousing with the
//! engine over zero-capacity channels (see [`crate::harness`], now behind
//! the `legacy-threads` feature). That costs two scheduler round-trips
//! per simulated operation. This module replaces the OS thread with an
//! explicit state machine the engine steps *on its own thread*:
//!
//! * [`Resumable`] — the engine-facing contract. `resume(reply)` feeds
//!   the previous operation's reply in and returns the next [`Step`]:
//!   either the next operation or completion. One plain function call
//!   per simulated op; no channels, no parking, no context switches.
//! * [`FutureThread`] — the adapter that turns an ordinary `async`
//!   workload body into a `Resumable`. Workload authors keep writing
//!   straight-line code (`ctx.load_u32(a).await`); the compiler builds
//!   the state machine, and [`OpCell`] smuggles each operation out of
//!   the suspended future and each reply back in.
//!
//! Determinism is structural rather than protocol-based: there is only
//! one thread, so there is no interleaving to get right. The engine
//! decides exactly when each core resumes, same as it decided when each
//! rendezvous reply was sent — byte-identical schedules, no OS in the
//! loop.
//!
//! Panic handling is the caller's job: `resume` is a bare poll on the
//! busiest edge of the simulator, so it carries no per-call
//! `catch_unwind` (an unwind guard around every poll blocks inlining of
//! the whole generator descent and measurably caps throughput). A
//! workload panic simply unwinds out of `resume`; the machine's event
//! loop installs one guard per *run* and re-labels the payload with the
//! offending core, and the legacy OS-thread harness catches at thread
//! scope as it always did.

use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// One step of a resumable workload: the next operation it wants the
/// engine to perform, or completion.
#[derive(Debug, PartialEq, Eq)]
pub enum Step<Op> {
    /// The workload issued `Op` and is suspended until the engine
    /// resumes it with a reply.
    Op(Op),
    /// The workload finished. `Some(message)` if a panic was captured on
    /// its way here — produced by drivers that wrap the workload in
    /// their own unwind guard (the legacy OS-thread harness); the engine
    /// decides how to surface that. [`FutureThread::resume`] itself
    /// never returns `Done(Some(_))`: it lets panics propagate so the
    /// hot path stays a plain poll (see the module docs).
    Done(Option<String>),
}

/// An engine-steppable workload.
///
/// The protocol mirrors the old rendezvous exactly: the first `resume`
/// passes `None` (there is nothing to reply to yet); every later call
/// passes `Some(reply)` for the operation returned by the previous call.
pub trait Resumable {
    type Op;
    type Reply;

    /// Feeds the previous operation's reply in and runs the workload to
    /// its next suspension point (or to completion).
    fn resume(&mut self, reply: Option<Self::Reply>) -> Step<Self::Op>;
}

/// The shared mailbox between a suspended workload future and the
/// [`FutureThread`] stepping it: an outgoing operation slot and an
/// incoming reply slot. Single-threaded by construction (`Rc`), so plain
/// `Cell`s suffice.
pub struct OpCell<Op, Reply> {
    op: Cell<Option<Op>>,
    reply: Cell<Option<Reply>>,
}

impl<Op, Reply> OpCell<Op, Reply> {
    fn new() -> Rc<Self> {
        Rc::new(Self {
            op: Cell::new(None),
            reply: Cell::new(None),
        })
    }

    /// Issues `op` to the engine and suspends until it replies. This is
    /// the single await point every workload primitive is built from.
    pub fn call(self: &Rc<Self>, op: Op) -> CallFuture<Op, Reply> {
        CallFuture {
            cell: Rc::clone(self),
            op: Some(op),
        }
    }
}

/// Future returned by [`OpCell::call`]: first poll parks the operation
/// in the cell and suspends; the next poll (after the engine stored a
/// reply) completes with it.
pub struct CallFuture<Op, Reply> {
    cell: Rc<OpCell<Op, Reply>>,
    op: Option<Op>,
}

// No self-referential fields: the future is trivially movable.
impl<Op, Reply> Unpin for CallFuture<Op, Reply> {}

impl<Op, Reply> Future for CallFuture<Op, Reply> {
    type Output = Reply;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Reply> {
        let this = self.get_mut();
        if let Some(op) = this.op.take() {
            this.cell.op.set(Some(op));
            return Poll::Pending;
        }
        match this.cell.reply.take() {
            Some(reply) => Poll::Ready(reply),
            None => Poll::Pending,
        }
    }
}

/// Extracts a human-readable message from a caught panic payload
/// (`panic!` string literals and formatted strings; anything else gets a
/// placeholder).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Adapts an `async` workload body into a [`Resumable`]: the engine's
/// view of one simulated core's instruction stream.
///
/// ```
/// use ghostwriter_sim::{FutureThread, Resumable, Step};
///
/// let mut t: FutureThread<u64, u64> = FutureThread::new(|cell| async move {
///     let doubled = cell.call(21).await;
///     assert_eq!(doubled, 42);
/// });
/// assert_eq!(t.resume(None), Step::Op(21));
/// assert_eq!(t.resume(Some(42)), Step::Done(None));
/// ```
pub struct FutureThread<Op, Reply> {
    cell: Rc<OpCell<Op, Reply>>,
    /// `None` once the workload has finished (or panicked).
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
}

impl<Op, Reply> FutureThread<Op, Reply> {
    /// Wraps a workload body. `f` receives the [`OpCell`] it must issue
    /// all operations through and returns the workload future.
    pub fn new<F, Fut>(f: F) -> Self
    where
        F: FnOnce(Rc<OpCell<Op, Reply>>) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let cell = OpCell::new();
        let future: Pin<Box<dyn Future<Output = ()>>> = Box::pin(f(Rc::clone(&cell)));
        Self {
            cell,
            future: Some(future),
        }
    }

    /// True once the workload has run to completion (or panicked).
    pub fn is_done(&self) -> bool {
        self.future.is_none()
    }
}

impl<Op, Reply> Resumable for FutureThread<Op, Reply> {
    type Op = Op;
    type Reply = Reply;

    /// Runs the workload to its next suspension point.
    ///
    /// # Panics
    /// A panic inside the workload body propagates to the caller —
    /// there is deliberately no per-poll unwind guard here. Wrapping
    /// every poll in `catch_unwind` fenced the optimizer out of the
    /// whole generator descent (the closure crosses an unwind ABI
    /// boundary) and cost up to 25% of full-simulation throughput;
    /// drivers that want captured panics install ONE guard around their
    /// whole run loop instead (the machine's event loop does exactly
    /// that, and the legacy OS-thread harness already catches at thread
    /// scope). After a propagated panic the thread is poisoned and must
    /// not be resumed again.
    fn resume(&mut self, reply: Option<Reply>) -> Step<Op> {
        let future = self
            .future
            .as_mut()
            .expect("resumed a workload that already finished");
        if let Some(r) = reply {
            self.cell.reply.set(Some(r));
        }
        let mut cx = Context::from_waker(Waker::noop());
        match future.as_mut().poll(&mut cx) {
            Poll::Pending => {
                let op = self.cell.op.take().expect(
                    "workload suspended without issuing an operation \
                     (awaited something other than an engine call?)",
                );
                Step::Op(op)
            }
            Poll::Ready(()) => {
                self.future = None;
                Step::Done(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_through_ops_and_replies() {
        let mut t: FutureThread<u32, u32> = FutureThread::new(|cell| async move {
            let mut acc = 0u32;
            for i in 0..4 {
                acc += cell.call(i).await;
            }
            assert_eq!(acc, 60);
        });
        assert_eq!(t.resume(None), Step::Op(0));
        assert_eq!(t.resume(Some(0)), Step::Op(1));
        assert_eq!(t.resume(Some(10)), Step::Op(2));
        assert_eq!(t.resume(Some(20)), Step::Op(3));
        assert!(!t.is_done());
        assert_eq!(t.resume(Some(30)), Step::Done(None));
        assert!(t.is_done());
    }

    #[test]
    fn body_runs_lazily_until_first_resume() {
        // Nothing executes at construction; the first resume runs the
        // body up to its first engine call.
        let mut t: FutureThread<&'static str, ()> = FutureThread::new(|cell| async move {
            cell.call("first").await;
        });
        assert!(!t.is_done());
        assert_eq!(t.resume(None), Step::Op("first"));
    }

    #[test]
    fn immediate_completion_without_ops() {
        let mut t: FutureThread<u8, u8> = FutureThread::new(|_cell| async move {});
        assert_eq!(t.resume(None), Step::Done(None));
        assert!(t.is_done());
    }

    #[test]
    fn panic_propagates_to_the_caller_with_its_message() {
        // resume carries no unwind guard of its own: the workload's
        // panic unwinds straight out, payload intact, for whoever owns
        // the run loop to catch and attribute.
        let mut t: FutureThread<u8, u8> = FutureThread::new(|cell| async move {
            cell.call(1).await;
            panic!("workload exploded at op {}", 2);
        });
        assert_eq!(t.resume(None), Step::Op(1));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.resume(Some(0));
        }))
        .expect_err("workload panic must propagate");
        assert_eq!(panic_message(payload), "workload exploded at op 2");
    }

    #[test]
    fn assert_failure_message_survives_propagation() {
        let mut t: FutureThread<u8, u64> = FutureThread::new(|cell| async move {
            let v = cell.call(0).await;
            assert_eq!(v, 7, "reply mismatch");
        });
        t.resume(None);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.resume(Some(9));
        }))
        .expect_err("assert failure must propagate");
        let msg = panic_message(payload);
        assert!(msg.contains("reply mismatch"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn resuming_a_finished_workload_panics() {
        let mut t: FutureThread<u8, u8> = FutureThread::new(|_cell| async move {});
        assert_eq!(t.resume(None), Step::Done(None));
        t.resume(None);
    }

    #[test]
    fn non_engine_ops_keep_reply_types_independent() {
        // Ops and replies can be different types; the cell is generic.
        let mut t: FutureThread<String, Vec<u8>> = FutureThread::new(|cell| async move {
            let bytes = cell.call("read".to_string()).await;
            assert_eq!(bytes, vec![1, 2, 3]);
        });
        assert_eq!(t.resume(None), Step::Op("read".to_string()));
        assert_eq!(t.resume(Some(vec![1, 2, 3])), Step::Done(None));
    }
}
