//! Shared harness for the figure/table reproduction binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` reproduces one table or
//! figure of the paper's evaluation (DESIGN.md §5 maps them). This crate
//! holds the common machinery: the evaluation configuration (paper
//! Table 1, 24 cores), the benchmark sweep runner, and plain-text output
//! formatting shared by the binaries and `repro_all`.

use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_noc::MessageKind;
use ghostwriter_workloads::{compare, Comparison, ScaleClass};

/// Number of cores/threads used by the evaluation (paper Table 1).
pub const EVAL_CORES: usize = 24;

/// The paper's two d-distance settings (§4).
pub const EVAL_DISTANCES: [u8; 2] = [4, 8];

/// One benchmark evaluated at one d-distance.
pub struct EvalCell {
    /// Application name.
    pub name: &'static str,
    /// d-distance of the Ghostwriter run.
    pub d: u8,
    /// The baseline/Ghostwriter pair.
    pub cmp: Comparison,
}

/// Runs the full paper evaluation: every Table 2 application × every
/// d-distance, baseline MESI vs Ghostwriter on the paper's machine.
/// `scale` picks the input sizes.
pub fn eval_paper_suite(scale: ScaleClass, cores: usize, ds: &[u8]) -> Vec<EvalCell> {
    let mut cells = Vec::new();
    for entry in ghostwriter_workloads::paper_benchmarks() {
        for &d in ds {
            let cmp = compare(
                &|| entry.build(scale),
                cores,
                cores,
                d,
                Protocol::ghostwriter(),
            );
            cells.push(EvalCell {
                name: entry.name,
                d,
                cmp,
            });
        }
    }
    cells
}

/// Machine configuration used by the evaluation binaries.
pub fn eval_config(protocol: Protocol) -> MachineConfig {
    MachineConfig {
        cores: EVAL_CORES,
        protocol,
        ..MachineConfig::default()
    }
}

/// Prints a figure header in the style shared by all binaries.
pub fn banner(fig: &str, caption: &str) {
    println!("================================================================");
    println!("{fig} — {caption}");
    println!("================================================================");
}

/// Formats a value as a percent string.
pub fn pct(x: f64) -> String {
    format!("{x:6.2}%")
}

/// Prints the per-class normalized-traffic stack for one run (Fig. 8 bar).
pub fn print_traffic_stack(label: &str, split: &[(MessageKind, f64)]) {
    let total: f64 = split.iter().map(|(_, v)| v).sum();
    let cols: Vec<String> = split
        .iter()
        .map(|(k, v)| format!("{}={:.3}", k.label(), v))
        .collect();
    println!("  {label:<28} total={total:.3}  [{}]", cols.join(" "));
}

/// Serialises the evaluation sweep as CSV (one row per app × d) for
/// plotting; written by `repro_all --csv <path>`.
pub fn eval_csv(cells: &[EvalCell]) -> String {
    let mut out = String::from(concat!(
        "app,d,gs_serviced_pct,gi_serviced_pct,normalized_traffic,",
        "energy_saved_pct,speedup_pct,error_pct,base_cycles,gw_cycles,",
        "base_messages,gw_messages\n"
    ));
    for c in cells {
        out.push_str(&format!(
            "{},{},{:.4},{:.4},{:.6},{:.4},{:.4},{:.6},{},{},{},{}
",
            c.name,
            c.d,
            c.cmp.gs_serviced_percent(),
            c.cmp.gi_serviced_percent(),
            c.cmp.normalized_traffic(),
            c.cmp.energy_saved_percent(),
            c.cmp.speedup_percent(),
            c.cmp.output_error_percent(),
            c.cmp.baseline.report.cycles,
            c.cmp.ghostwriter.report.cycles,
            c.cmp.baseline.report.stats.traffic.total(),
            c.cmp.ghostwriter.report.stats.traffic.total(),
        ));
    }
    out
}

/// A fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_config_is_paper_scale() {
        let c = eval_config(Protocol::Mesi);
        assert_eq!(c.cores, 24);
        assert_eq!(c.l1_kb, 32);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let entry = &ghostwriter_workloads::paper_benchmarks()[1];
        let cmp = compare(
            &|| entry.build(ScaleClass::Test),
            4,
            4,
            8,
            Protocol::ghostwriter(),
        );
        let cells = vec![EvalCell {
            name: entry.name,
            d: 8,
            cmp,
        }];
        let csv = eval_csv(&cells);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("app,d,"));
        assert!(lines[1].starts_with("linear_regression,8,"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn small_scale_suite_cell_runs() {
        // One cheap smoke cell: the first benchmark at d=8, 4 cores.
        let entry = &ghostwriter_workloads::paper_benchmarks()[0];
        let cmp = compare(
            &|| entry.build(ScaleClass::Test),
            4,
            4,
            8,
            Protocol::ghostwriter(),
        );
        assert_eq!(cmp.baseline.error_percent, 0.0);
    }
}
