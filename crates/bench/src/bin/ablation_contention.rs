//! Ablation: NoC link contention. The default latency model is
//! contention-free (DESIGN.md §7.4); this binary re-runs the two
//! false-sharing applications with per-link serialization enabled to
//! verify the claimed direction of the substitution — eliminating
//! coherence messages helps *more* when links queue.

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_workloads::{execute, paper_benchmarks, ScaleClass};

fn main() {
    banner("Ablation", "contention-free vs link-contended NoC");
    let widths = [18usize, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "NoC model".into(),
                "base cyc".into(),
                "speedup %".into()
            ],
            &widths
        )
    );
    for entry in paper_benchmarks()
        .into_iter()
        .filter(|e| e.name == "linear_regression" || e.name == "jpeg")
    {
        for (label, contended) in [("free", false), ("contended", true)] {
            let run = |protocol| {
                let mut w = entry.build(ScaleClass::Eval);
                let cfg = MachineConfig {
                    cores: EVAL_CORES,
                    protocol,
                    model_contention: contended,
                    ..MachineConfig::default()
                };
                execute(w.as_mut(), cfg, EVAL_CORES, 8).report.cycles
            };
            let base = run(Protocol::Mesi);
            let gw = run(Protocol::ghostwriter());
            println!(
                "{}",
                row(
                    &[
                        entry.name.into(),
                        label.into(),
                        base.to_string(),
                        format!("{:.1}", (base as f64 / gw as f64 - 1.0) * 100.0),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nExpected: the contended NoC amplifies Ghostwriter's speedup.");
}
