//! Extension (paper §3.5): per-application d-distance auto-tuning for a
//! user-specified output-quality target, in the spirit of the Green/SAGE
//! frameworks the paper cites.

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{autotune, paper_benchmarks, ScaleClass, DEFAULT_LADDER};

fn main() {
    banner(
        "Auto-tuning",
        "largest d-distance meeting a 0.5% output-error budget",
    );
    let widths = [18usize, 10, 10, 12, 10];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "chosen d".into(),
                "error %".into(),
                "speedup %".into(),
                "traffic".into()
            ],
            &widths
        )
    );
    for entry in paper_benchmarks() {
        let result = autotune(
            &|| entry.build(ScaleClass::Eval),
            EVAL_CORES,
            EVAL_CORES,
            0.5,
            &DEFAULT_LADDER,
            Protocol::ghostwriter(),
        );
        println!(
            "{}",
            row(
                &[
                    entry.name.into(),
                    result.chosen_d.to_string(),
                    format!("{:.4}", result.chosen.error_percent),
                    format!("{:.1}", result.chosen.speedup_percent),
                    format!("{:.3}", result.chosen.normalized_traffic),
                ],
                &widths
            )
        );
    }
    println!("\nApplications with no runtime false sharing tune straight to");
    println!("the most aggressive setting (nothing diverges); error-prone");
    println!("ones settle where the budget binds.");
}
