//! Table 1: the simulated machine configuration.

use ghostwriter_bench::{banner, eval_config};
use ghostwriter_core::Protocol;
use ghostwriter_noc::Mesh;

fn main() {
    banner("Table 1", "simulation configuration");
    let c = eval_config(Protocol::ghostwriter());
    let (w, h) = Mesh::dims_for(c.cores);
    println!(
        "Cores      : {} in-order cores, 1 cycle/op issue, 1 GHz",
        c.cores
    );
    println!(
        "L1         : private {} kB D-cache, {}-way, 64 B blocks, tree-PLRU, {}-cycle",
        c.l1_kb, c.l1_ways, c.l1_latency
    );
    println!(
        "L2         : shared, {} kB per core ({} banks), {}-way, 64 B blocks, tree-PLRU, {}-cycle, inclusive",
        c.l2_bank_kb, c.cores, c.l2_ways, c.l2_latency
    );
    match c.protocol {
        Protocol::Ghostwriter(gw) => println!(
            "Coherence  : Ghostwriter protocol (baseline MESI), d-distance 4 and 8, {}-cycle GI timeout",
            gw.gi_timeout
        ),
        Protocol::Mesi => println!("Coherence  : MESI directory protocol"),
    }
    println!(
        "Network    : {w}x{h} mesh, XY routing, {}-cycle router, {}-cycle link, {} memory controllers at mesh corners",
        c.router_cycles,
        c.link_cycles,
        Mesh::with_paper_timing(w, h).corners().len()
    );
    println!(
        "DRAM       : sparse backing store, {}-cycle access (DDR3-1600 class)",
        c.dram_latency
    );
}
