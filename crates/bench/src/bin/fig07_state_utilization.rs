//! Fig. 7: percentage of stores that would have missed on (a) Shared
//! blocks but were serviced by GS, and (b) Invalid blocks but were
//! serviced by GI, at d-distances 4 and 8.

use ghostwriter_bench::{banner, eval_paper_suite, row, EVAL_CORES, EVAL_DISTANCES};
use ghostwriter_workloads::ScaleClass;

fn main() {
    banner("Figure 7", "approximate state utilization (GS / GI)");
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let widths = [18usize, 4, 18, 18];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "d".into(),
                "serviced by GS %".into(),
                "serviced by GI %".into()
            ],
            &widths
        )
    );
    let mut avg = [[0.0f64; 2]; 2];
    let mut n = [0usize; 2];
    for c in &cells {
        let di = usize::from(c.d == 8);
        let gs = c.cmp.gs_serviced_percent();
        let gi = c.cmp.gi_serviced_percent();
        avg[di][0] += gs;
        avg[di][1] += gi;
        n[di] += 1;
        println!(
            "{}",
            row(
                &[
                    c.name.into(),
                    c.d.to_string(),
                    format!("{gs:.1}"),
                    format!("{gi:.1}")
                ],
                &widths
            )
        );
    }
    for (di, d) in [4, 8].iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    "Avg.".into(),
                    d.to_string(),
                    format!("{:.1}", avg[di][0] / n[di] as f64),
                    format!("{:.1}", avg[di][1] / n[di] as f64)
                ],
                &widths
            )
        );
    }
    println!("\nPaper: GS avg 18.7% (d=4) / 21.5% (d=8); GI avg 4.2% / 9.7%;");
    println!("linear_regression GS 63.7-69.1%; utilization grows with d.");
}
