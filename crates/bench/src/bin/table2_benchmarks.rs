//! Table 2: the benchmark roster.

use ghostwriter_bench::{banner, row};
use ghostwriter_workloads::{micro_benchmarks, paper_benchmarks};

fn main() {
    banner("Table 2", "benchmarks");
    let widths = [20usize, 22, 16, 34, 7];
    println!(
        "{}",
        row(
            &[
                "application".into(),
                "domain".into(),
                "suite".into(),
                "input".into(),
                "error".into()
            ],
            &widths
        )
    );
    for e in paper_benchmarks().iter().chain(micro_benchmarks().iter()) {
        println!(
            "{}",
            row(
                &[
                    e.name.into(),
                    e.domain.into(),
                    e.suite.label().into(),
                    e.input_desc.into(),
                    e.metric.label().into()
                ],
                &widths
            )
        );
    }
}
