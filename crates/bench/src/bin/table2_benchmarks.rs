//! Thin wrapper over the experiment engine: equivalent to
//! `gwbench run table2` (same cache, same report). Extra flags
//! (`--jobs N`, `--smoke`, `--no-cache`, ...) are forwarded.

fn main() {
    let args = ["run".to_string(), "table2".to_string()]
        .into_iter()
        .chain(std::env::args().skip(1))
        .collect();
    std::process::exit(ghostwriter_exp::cli::main_with_args(args));
}
