//! Fig. 2: cumulative distribution of the bit-wise d-distance between
//! store values and the values they overwrite, per application
//! (independent of coherence state; measured under the MESI baseline).

use ghostwriter_bench::{banner, eval_config, row};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{execute, paper_benchmarks, ScaleClass, Suite};

fn main() {
    banner(
        "Figure 2",
        "cumulative d-distance distribution of overwritten store values",
    );
    let ds = [0u32, 1, 2, 4, 8, 12, 16, 24, 32];
    let mut header = vec!["app".to_string()];
    header.extend(ds.iter().map(|d| format!("<={d}")));
    let widths: Vec<usize> = std::iter::once(18usize)
        .chain(ds.iter().map(|_| 7))
        .collect();
    for suite in [Suite::AxBench, Suite::Phoenix] {
        println!("\n[{}]", suite.label());
        println!("{}", row(&header, &widths));
        for entry in paper_benchmarks().iter().filter(|e| e.suite == suite) {
            let mut w = entry.build(ScaleClass::Eval);
            let out = execute(w.as_mut(), eval_config(Protocol::Mesi), 24, 0);
            let hist = &out.report.stats.similarity;
            let mut cells = vec![entry.name.to_string()];
            cells.extend(
                ds.iter()
                    .map(|&d| format!("{:.3}", hist.cumulative_fraction(d))),
            );
            println!("{}", row(&cells, &widths));
        }
    }
    println!();
    println!("Paper shape: a sizeable fraction of stores are 0-distance");
    println!("(silent) and the curves rise steeply through d=4..8.");
}
