//! Extension evaluation: the Figs. 7-11 quantities for the extra
//! Phoenix/AxBench workloads (`kmeans`, `sobel`) that go beyond the
//! paper's Table 2.

use ghostwriter_bench::{banner, row, EVAL_CORES, EVAL_DISTANCES};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{compare, extended_benchmarks, ScaleClass};

fn main() {
    banner("Extended evaluation", "kmeans and sobel (beyond Table 2)");
    let widths = [10usize, 3, 9, 9, 9, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "d".into(),
                "GS%".into(),
                "GI%".into(),
                "traffic".into(),
                "energy%".into(),
                "speedup%".into(),
                "error%".into()
            ],
            &widths
        )
    );
    for entry in extended_benchmarks() {
        for d in EVAL_DISTANCES {
            let cmp = compare(
                &|| entry.build(ScaleClass::Eval),
                EVAL_CORES,
                EVAL_CORES,
                d,
                Protocol::ghostwriter(),
            );
            println!(
                "{}",
                row(
                    &[
                        entry.name.into(),
                        d.to_string(),
                        format!("{:.1}", cmp.gs_serviced_percent()),
                        format!("{:.1}", cmp.gi_serviced_percent()),
                        format!("{:.3}", cmp.normalized_traffic()),
                        format!("{:.1}", cmp.energy_saved_percent()),
                        format!("{:.1}", cmp.speedup_percent()),
                        format!("{:.4}", cmp.output_error_percent()),
                    ],
                    &widths
                )
            );
        }
    }
}
