//! Fig. 4: the migratory false-sharing pattern, baseline MESI vs
//! Ghostwriter's GS state. Two cores alternately load and store/scribble
//! different offsets of the same block; the message traces show the
//! UPGRADE/invalidation round disappearing under Ghostwriter.

use ghostwriter_bench::banner;
use ghostwriter_core::{Machine, MachineConfig, Protocol};

fn scenario(protocol: Protocol) -> (u64, Vec<String>) {
    let mut m = Machine::new(MachineConfig {
        cores: 2,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    let rounds = 4u32;
    // Core 0: epoch 0 store to offset 0, later loads (Fig. 4 epochs).
    m.add_thread(move |ctx| {
        ctx.approx_begin(4);
        for r in 0..rounds {
            ctx.store_u32(block, r); // conventional store, offset 0
            ctx.barrier();
            ctx.barrier();
            let _ = ctx.load_u32(block); // re-read own offset
            ctx.barrier();
        }
        ctx.approx_end();
    });
    // Core 1: loads offset 1, then scribbles a similar value to it.
    m.add_thread(move |ctx| {
        ctx.approx_begin(4);
        for r in 0..rounds {
            ctx.barrier();
            let v = ctx.load_u32(block.add(4));
            ctx.scribble_u32(block.add(4), v + (r & 1));
            ctx.barrier();
            ctx.barrier();
        }
        ctx.approx_end();
    });
    let run = m.run();
    let lines = run
        .trace
        .iter()
        .map(|t| {
            format!(
                "cycle {:>5}  {:<10} {:?} -> {:?}  {:?}",
                t.cycle, t.name, t.src, t.dst, t.block
            )
        })
        .collect();
    (run.report.stats.traffic.total(), lines)
}

fn main() {
    banner(
        "Figure 4",
        "migratory false sharing: MESI vs Ghostwriter GS",
    );
    let (mesi_msgs, mesi_trace) = scenario(Protocol::Mesi);
    let (gw_msgs, gw_trace) = scenario(Protocol::ghostwriter());
    println!("\n(a) baseline MESI — {mesi_msgs} coherence messages");
    for l in &mesi_trace {
        println!("  {l}");
    }
    println!("\n(b) Ghostwriter — {gw_msgs} coherence messages");
    for l in &gw_trace {
        println!("  {l}");
    }
    println!(
        "\nGhostwriter eliminates {} of {} messages ({:.1}%): the scribble",
        mesi_msgs - gw_msgs,
        mesi_msgs,
        100.0 * (mesi_msgs - gw_msgs) as f64 / mesi_msgs as f64
    );
    println!("hits in GS without an UPGRADE, and core 0's re-reads stay hits.");
    assert!(gw_msgs < mesi_msgs, "GS must reduce messages");
}
