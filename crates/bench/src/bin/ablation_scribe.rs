//! Ablation: bit-wise vs arithmetic scribe comparator (the paper's §3.4
//! future-work variant, which also admits carry pairs like 127/128 and
//! -1/0).

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::config::GwConfig;
use ghostwriter_core::{Protocol, ScribePolicy};
use ghostwriter_workloads::{compare, paper_benchmarks, ScaleClass};

fn main() {
    banner("Ablation", "scribe comparator: bit-wise vs arithmetic");
    let widths = [18usize, 12, 4, 9, 9, 9, 10];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "comparator".into(),
                "d".into(),
                "GS%".into(),
                "traffic".into(),
                "speedup%".into(),
                "error%".into()
            ],
            &widths
        )
    );
    for entry in paper_benchmarks()
        .into_iter()
        .filter(|e| e.name == "linear_regression" || e.name == "jpeg")
    {
        for (label, scribe) in [
            ("bitwise", ScribePolicy::Bitwise),
            ("arithmetic", ScribePolicy::Arithmetic),
        ] {
            for d in [4u8, 8] {
                let p = Protocol::Ghostwriter(GwConfig {
                    scribe,
                    ..GwConfig::default()
                });
                let cmp = compare(
                    &|| entry.build(ScaleClass::Eval),
                    EVAL_CORES,
                    EVAL_CORES,
                    d,
                    p,
                );
                println!(
                    "{}",
                    row(
                        &[
                            entry.name.into(),
                            label.into(),
                            d.to_string(),
                            format!("{:.1}", cmp.gs_serviced_percent()),
                            format!("{:.3}", cmp.normalized_traffic()),
                            format!("{:.1}", cmp.speedup_percent()),
                            format!("{:.4}", cmp.output_error_percent()),
                        ],
                        &widths
                    )
                );
            }
        }
    }
    println!("\nThe arithmetic comparator admits carry-crossing neighbours");
    println!("(paper §3.4), trading a little more error for more coverage.");
}
