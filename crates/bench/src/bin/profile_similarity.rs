//! Deep-dive value-similarity profiler (the instrumentation behind
//! Fig. 2): full per-distance histograms of overwritten store values for
//! one application.
//!
//! ```text
//! profile_similarity [app] [cores]
//! ```

use ghostwriter_bench::{banner, eval_config};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{execute, extended_benchmarks, micro_benchmarks, paper_benchmarks};

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args.next().unwrap_or_else(|| "linear_regression".into());
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let entry = paper_benchmarks()
        .into_iter()
        .chain(extended_benchmarks())
        .chain(micro_benchmarks())
        .find(|e| e.name == app)
        .unwrap_or_else(|| {
            eprintln!("unknown app {app}");
            std::process::exit(2)
        });
    banner(
        "Value-similarity profile",
        &format!("{app} under baseline MESI, {cores} cores"),
    );
    let mut w = entry.build(ghostwriter_workloads::ScaleClass::Eval);
    let mut cfg = eval_config(Protocol::Mesi);
    cfg.cores = cores;
    let out = execute(w.as_mut(), cfg, cores, 0);
    let h = &out.report.stats.similarity;
    println!("stores profiled: {}", h.total());
    println!("\n  d   exact-count   P(<=d)   bar");
    let mut last = 0.0;
    for d in 0..=32u32 {
        let frac = h.cumulative_fraction(d);
        if d > 16 && (frac - last).abs() < 1e-9 && h.count_at(d) == 0 {
            continue; // skip empty tail rows
        }
        let bar = "#".repeat((frac * 50.0) as usize);
        println!("{d:>3}  {:>11}  {frac:>6.3}   {bar}", h.count_at(d));
        last = frac;
    }
    println!("\nPaper Fig. 2: on average 22.8% of overwritten values are");
    println!("0-distance, 36.4% within 4 and 43.7% within 8.");
}
