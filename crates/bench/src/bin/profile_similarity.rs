//! Deep-dive value-similarity profiler (the instrumentation behind
//! Fig. 2), served from the experiment engine's result cache: the
//! default `linear_regression` profile at the evaluation core count is
//! the Fig. 2 cell, so a warm cache answers instantly.
//!
//! ```text
//! profile_similarity [app] [cores]
//! ```

use ghostwriter_exp::experiments::{profile_similarity_render, profile_similarity_spec};
use ghostwriter_exp::{Engine, Scale};

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args.next().unwrap_or_else(|| "linear_regression".into());
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    if ghostwriter_workloads::find_benchmark(&app).is_none() {
        eprintln!("unknown app {app}");
        std::process::exit(2);
    }
    let spec = profile_similarity_spec(&app, cores, Scale::Eval);
    let (records, _) = Engine::new(1).run(&spec.runs);
    print!("{}", profile_similarity_render(&spec, &records));
}
