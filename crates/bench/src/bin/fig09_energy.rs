//! Fig. 9: dynamic energy saved in the NoC and memory hierarchy,
//! normalized to the MESI baseline, at d-distances 4 and 8.

use ghostwriter_bench::{banner, eval_paper_suite, row, EVAL_CORES, EVAL_DISTANCES};
use ghostwriter_workloads::ScaleClass;

fn main() {
    banner("Figure 9", "NoC + memory-hierarchy dynamic energy saved");
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let widths = [18usize, 4, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "d".into(),
                "memory %".into(),
                "network %".into(),
                "total %".into()
            ],
            &widths
        )
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for c in &cells {
        let b = &c.cmp.baseline.report.energy;
        let g = &c.cmp.ghostwriter.report.energy;
        let mem = (1.0 - g.memory_pj / b.memory_pj) * 100.0;
        let net = (1.0 - g.network_pj / b.network_pj) * 100.0;
        let tot = c.cmp.energy_saved_percent();
        let di = usize::from(c.d == 8);
        avg[di] += tot;
        n[di] += 1;
        println!(
            "{}",
            row(
                &[
                    c.name.into(),
                    c.d.to_string(),
                    format!("{mem:.1}"),
                    format!("{net:.1}"),
                    format!("{tot:.1}")
                ],
                &widths
            )
        );
    }
    for (di, d) in [4, 8].iter().enumerate() {
        println!(
            "Average at d={d}: {:.1}% (paper: 7.8% at d=4, 11.2% at d=8; max 50.1%)",
            avg[di] / n[di] as f64
        );
    }
}
