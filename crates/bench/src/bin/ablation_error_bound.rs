//! Extension (paper §3.5): a light-weight runtime error bound. After
//! `max_hidden_writes` hidden approximate updates without a coherent
//! resync, the next scribble is forced to publish. Sweeping the bound on
//! the pathological Fig. 12 microbenchmark (Capture GI policy, where
//! unbounded approximation diverges hardest) shows the error/traffic
//! trade-off the paper's §3.5 anticipates.

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::config::{GiStorePolicy, GwConfig};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{compare, BadDotProduct};

fn main() {
    banner(
        "Ablation",
        "runtime error bound (§3.5) on bad_dot_product, Capture GI, d=4",
    );
    let widths = [12usize, 14, 14, 18];
    println!(
        "{}",
        row(
            &[
                "bound".into(),
                "error (MPE)%".into(),
                "traffic".into(),
                "serviced by GI %".into()
            ],
            &widths
        )
    );
    for bound in [None, Some(64), Some(16), Some(4), Some(1)] {
        let p = Protocol::Ghostwriter(GwConfig {
            gi_stores: GiStorePolicy::Capture,
            max_hidden_writes: bound,
            ..GwConfig::default()
        });
        let cmp = compare(
            &|| Box::new(BadDotProduct::with_work(0xF16, 8_000, true, 96)),
            EVAL_CORES,
            EVAL_CORES,
            4,
            p,
        );
        println!(
            "{}",
            row(
                &[
                    bound.map_or("unbounded".into(), |b| b.to_string()),
                    format!("{:.1}", cmp.output_error_percent()),
                    format!("{:.3}", cmp.normalized_traffic()),
                    format!("{:.1}", cmp.gi_serviced_percent()),
                ],
                &widths
            )
        );
    }
    println!("\nExpected: tighter bounds trade coherence-traffic savings for");
    println!("bounded worst-case error, taming the paper's pathological case.");
}
