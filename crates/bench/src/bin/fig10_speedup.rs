//! Fig. 10: speedup of Ghostwriter over the MESI baseline at d-distances
//! 4 and 8.

use ghostwriter_bench::{banner, eval_paper_suite, row, EVAL_CORES, EVAL_DISTANCES};
use ghostwriter_workloads::ScaleClass;

fn main() {
    banner("Figure 10", "speedup over baseline MESI");
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let widths = [18usize, 4, 12];
    println!(
        "{}",
        row(&["app".into(), "d".into(), "speedup %".into()], &widths)
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for c in &cells {
        let sp = c.cmp.speedup_percent();
        let di = usize::from(c.d == 8);
        avg[di] += sp;
        n[di] += 1;
        println!(
            "{}",
            row(
                &[c.name.into(), c.d.to_string(), format!("{sp:.1}")],
                &widths
            )
        );
    }
    for (di, d) in [4, 8].iter().enumerate() {
        println!(
            "Average at d={d}: {:.1}% (paper: 4.7% at d=4, 6.5% at d=8; max 37.3%)",
            avg[di] / n[di] as f64
        );
    }
    println!("\nPaper shape: large gains only for apps with runtime false");
    println!("sharing (linear_regression, jpeg); no slowdown for the rest.");
}
