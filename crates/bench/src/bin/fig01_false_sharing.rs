//! Fig. 1: speedup of the Listing 1 (false-sharing) and Listing 2
//! (privatized) parallel dot products over single-threaded execution, for
//! increasing thread counts, under the baseline MESI protocol.

use ghostwriter_bench::{banner, row};
use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_workloads::{execute, BadDotProduct, GoodDotProduct, Workload};

fn cycles_of(w: &mut dyn Workload, threads: usize) -> u64 {
    let cfg = MachineConfig {
        cores: threads.max(1),
        protocol: Protocol::Mesi,
        ..MachineConfig::default()
    };
    execute(w, cfg, threads, 0).report.cycles
}

fn main() {
    banner(
        "Figure 1",
        "dot-product speedup vs thread count (MESI baseline)",
    );
    let n = 8_000;
    let widths = [8usize, 14, 14];
    println!(
        "{}",
        row(
            &[
                "threads".into(),
                "naive (L.1)".into(),
                "private (L.2)".into()
            ],
            &widths
        )
    );
    let base_bad = cycles_of(&mut BadDotProduct::new(1, n, false), 1);
    let base_good = cycles_of(&mut GoodDotProduct::new(1, n), 1);
    for threads in [1usize, 2, 4, 8, 16, 24] {
        let bad = cycles_of(&mut BadDotProduct::new(1, n, false), threads);
        let good = cycles_of(&mut GoodDotProduct::new(1, n), threads);
        println!(
            "{}",
            row(
                &[
                    threads.to_string(),
                    format!("{:.2}x", base_bad as f64 / bad as f64),
                    format!("{:.2}x", base_good as f64 / good as f64),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Paper shape: the naive version stops scaling (or slows down)");
    println!("with more threads while the privatized version scales.");
}
