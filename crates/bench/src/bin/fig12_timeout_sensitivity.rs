//! Fig. 12: GI-state utilization and output error of the bad_dot_product
//! microbenchmark vs the GI timeout period (128 / 512 / 1024 cycles),
//! with 4-distance scribbles.

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{compare, BadDotProduct, ScaleClass};

fn main() {
    banner(
        "Figure 12",
        "GI timeout sensitivity (bad_dot_product, 4-distance)",
    );
    let _ = ScaleClass::Eval;
    let n = 8_000;
    let widths = [10usize, 18, 14, 14];
    println!(
        "{}",
        row(
            &[
                "timeout".into(),
                "serviced by GI %".into(),
                "error (MPE)%".into(),
                "traffic".into()
            ],
            &widths
        )
    );
    for timeout in [128u64, 512, 1024] {
        // The Capture GI-store policy (Fig. 3's Store self-loop) is what
        // produces the paper's utilization/error trade-off; see
        // GiStorePolicy.
        let cmp = compare(
            &|| Box::new(BadDotProduct::with_work(0xF16, n, true, 96)),
            EVAL_CORES,
            EVAL_CORES,
            4,
            Protocol::ghostwriter_capture(timeout),
        );
        println!(
            "{}",
            row(
                &[
                    timeout.to_string(),
                    format!("{:.1}", cmp.gi_serviced_percent()),
                    format!("{:.1}", cmp.output_error_percent()),
                    format!("{:.3}", cmp.normalized_traffic()),
                ],
                &widths
            )
        );
    }
    println!("\nPaper shape: longer timeouts raise GI utilization (up to");
    println!("72.4% at 1024) and raise error (15.3% at 128 to 60.8% at 1024).");
}
