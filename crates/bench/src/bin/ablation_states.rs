//! Ablation: the contribution of each approximate state. Runs
//! linear_regression and jpeg with GS-only, GI-only and both states,
//! plus both GI store policies (DESIGN.md's interpretive choices).

use ghostwriter_bench::{banner, row, EVAL_CORES};
use ghostwriter_core::config::{GiStorePolicy, GwConfig};
use ghostwriter_core::Protocol;
use ghostwriter_workloads::{compare, paper_benchmarks, ScaleClass};

fn protocol(enable_gs: bool, enable_gi: bool, gi_stores: GiStorePolicy) -> Protocol {
    Protocol::Ghostwriter(GwConfig {
        enable_gs,
        enable_gi,
        gi_stores,
        ..GwConfig::default()
    })
}

fn main() {
    banner("Ablation", "GS / GI contribution and GI store policy");
    let widths = [18usize, 22, 9, 9, 9, 10];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "variant".into(),
                "traffic".into(),
                "energy%".into(),
                "speedup%".into(),
                "error%".into()
            ],
            &widths
        )
    );
    let variants: [(&str, Protocol); 5] = [
        (
            "GS+GI (default)",
            protocol(true, true, GiStorePolicy::Fallback),
        ),
        ("GS only", protocol(true, false, GiStorePolicy::Fallback)),
        ("GI only", protocol(false, true, GiStorePolicy::Fallback)),
        (
            "GS+GI capture",
            protocol(true, true, GiStorePolicy::Capture),
        ),
        ("disabled", protocol(false, false, GiStorePolicy::Fallback)),
    ];
    for entry in paper_benchmarks()
        .into_iter()
        .filter(|e| e.name == "linear_regression" || e.name == "jpeg")
    {
        for (label, p) in &variants {
            let cmp = compare(
                &|| entry.build(ScaleClass::Eval),
                EVAL_CORES,
                EVAL_CORES,
                8,
                *p,
            );
            println!(
                "{}",
                row(
                    &[
                        entry.name.into(),
                        (*label).into(),
                        format!("{:.3}", cmp.normalized_traffic()),
                        format!("{:.1}", cmp.energy_saved_percent()),
                        format!("{:.1}", cmp.speedup_percent()),
                        format!("{:.4}", cmp.output_error_percent()),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nExpected: GS carries most of linear_regression's benefit;");
    println!("'disabled' must match the baseline exactly (all zeros).");
}
