//! Fig. 5: the producer-consumer pattern with Ghostwriter's GI state.
//! Core 0 produces, core 2 consumes, core 1 becomes the next producer:
//! under Ghostwriter its scribble to the invalidated block enters GI
//! without a GETX, and the consumer's load stays a hit.

use ghostwriter_bench::banner;
use ghostwriter_core::{Machine, MachineConfig, Protocol};

fn scenario(protocol: Protocol) -> (u64, u64, Vec<String>) {
    let mut m = Machine::new(MachineConfig {
        cores: 3,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    let rounds = 4u32;
    // Core 0: first producer (conventional store to offset 0).
    m.add_thread(move |ctx| {
        ctx.approx_begin(4);
        for r in 0..rounds {
            ctx.store_u32(block, 100 + r);
            ctx.barrier(); // epoch 0 -> 1
            ctx.barrier(); // epoch 1 -> 2
        }
        ctx.approx_end();
    });
    // Core 1: next producer — holds a stale copy, scribbles offset 1.
    m.add_thread(move |ctx| {
        ctx.approx_begin(4);
        // Warm core 1's cache so its copy exists (tag present) and is
        // then invalidated by core 0's store.
        let _ = ctx.load_u32(block.add(4));
        for r in 0..rounds {
            ctx.barrier();
            let v = ctx.load_u32(block.add(4));
            ctx.scribble_u32(block.add(4), v + (r & 1));
            ctx.barrier();
        }
        ctx.approx_end();
    });
    // Core 2: consumer — reads offset 0 every epoch.
    m.add_thread(move |ctx| {
        ctx.approx_begin(4);
        for _ in 0..rounds {
            ctx.barrier();
            let _ = ctx.load_u32(block);
            ctx.barrier();
        }
        ctx.approx_end();
    });
    let run = m.run();
    let getx = run
        .trace
        .iter()
        .filter(|t| t.name == "GETX" || t.name == "UPGRADE")
        .count() as u64;
    let lines = run
        .trace
        .iter()
        .map(|t| {
            format!(
                "cycle {:>5}  {:<10} {:?} -> {:?}",
                t.cycle, t.name, t.src, t.dst
            )
        })
        .collect();
    (run.report.stats.traffic.total(), getx, lines)
}

fn main() {
    banner(
        "Figure 5",
        "producer-consumer sharing: MESI vs Ghostwriter GI",
    );
    let (mesi_msgs, mesi_getx, mesi_trace) = scenario(Protocol::Mesi);
    let (gw_msgs, gw_getx, gw_trace) = scenario(Protocol::ghostwriter());
    println!("\n(a) baseline MESI — {mesi_msgs} messages, {mesi_getx} GETX/UPGRADE");
    for l in mesi_trace.iter().take(30) {
        println!("  {l}");
    }
    println!("\n(b) Ghostwriter — {gw_msgs} messages, {gw_getx} GETX/UPGRADE");
    for l in gw_trace.iter().take(30) {
        println!("  {l}");
    }
    println!(
        "\nGhostwriter: {} fewer messages, {} fewer exclusive requests.",
        mesi_msgs.saturating_sub(gw_msgs),
        mesi_getx.saturating_sub(gw_getx)
    );
    assert!(gw_getx < mesi_getx, "GI must reduce exclusive requests");
}
