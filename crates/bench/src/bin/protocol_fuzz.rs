//! Random protocol fuzzer (gem5 Ruby-random-tester style): drives the L1
//! and directory controllers through adversarial message orderings and
//! checks SWMR, directory accuracy, data-value and liveness invariants.
//! The sweep is deterministic in (seeds, accesses), so it runs through
//! the experiment engine's result cache like any other cell.
//!
//! ```text
//! protocol_fuzz [seeds] [accesses]
//! ```

use ghostwriter_exp::{Engine, RunKind, RunSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let accesses: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(800);
    let t0 = std::time::Instant::now();
    let spec = RunSpec {
        id: "fuzz".into(),
        kind: RunKind::Fuzz { seeds, accesses },
    };
    let (records, _) = Engine::new(1).run(&[spec]);
    let msgs = records[0].extra_value("messages").unwrap_or(0.0) as u64;
    println!(
        "PASS: {seeds} seeds x {accesses} accesses, {msgs} messages, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
