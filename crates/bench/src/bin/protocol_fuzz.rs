//! Random protocol fuzzer (gem5 Ruby-random-tester style): drives the L1
//! and directory controllers through adversarial message orderings and
//! checks SWMR, directory accuracy, data-value and liveness invariants.
//!
//! ```text
//! protocol_fuzz [seeds] [accesses]
//! ```

use ghostwriter_core::tester::{ProtocolTester, TesterConfig};
use ghostwriter_core::GiStorePolicy;

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let accesses: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(800);
    let t0 = std::time::Instant::now();
    let mut total_msgs = 0usize;
    for seed in 0..seeds {
        let cfg = TesterConfig {
            cores: 2 + (seed % 7) as usize,
            blocks: 8 + (seed % 29) as usize,
            accesses,
            l1_sets: 1 << (seed % 3),
            l1_ways: 2,
            l2_sets: 2 << (seed % 2),
            l2_ways: 2,
            scribble_prob: if seed % 3 == 0 { 0.4 } else { 0.0 },
            gi_stores: if seed % 6 == 0 {
                GiStorePolicy::Capture
            } else {
                GiStorePolicy::Fallback
            },
            gi_timeout_prob: if seed % 5 == 0 { 0.02 } else { 0.0 },
            deliver_bias: 0.5 + (seed % 5) as f64 * 0.1,
            msi: seed % 4 == 1,
        };
        let report = ProtocolTester::new(cfg, seed).run();
        total_msgs += report.messages;
        if seed % 50 == 49 {
            println!("seed {seed}: ok ({} messages so far)", total_msgs);
        }
    }
    println!(
        "PASS: {seeds} seeds x {accesses} accesses, {total_msgs} messages, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
