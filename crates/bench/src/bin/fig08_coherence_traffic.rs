//! Fig. 8: coherence traffic (GETX / UPGRADE / GETS / Data / Other),
//! normalized to the MESI baseline, at d-distances 0 (baseline), 4, 8.

use ghostwriter_bench::{
    banner, eval_paper_suite, print_traffic_stack, EVAL_CORES, EVAL_DISTANCES,
};
use ghostwriter_workloads::ScaleClass;

fn main() {
    banner("Figure 8", "normalized coherence traffic by message class");
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    let mut last = "";
    for c in &cells {
        if c.name != last {
            println!("\n{}:", c.name);
            let base_split = c
                .cmp
                .baseline
                .report
                .normalized_traffic_by_class_vs(&c.cmp.baseline.report);
            print_traffic_stack("d=0 (baseline MESI)", &base_split);
            last = c.name;
        }
        let split = c
            .cmp
            .ghostwriter
            .report
            .normalized_traffic_by_class_vs(&c.cmp.baseline.report);
        print_traffic_stack(&format!("d={}", c.d), &split);
        let di = usize::from(c.d == 8);
        avg[di] += c.cmp.normalized_traffic();
        n[di] += 1;
    }
    println!();
    for (di, d) in [4, 8].iter().enumerate() {
        println!(
            "Average reduction at d={d}: {:.2}% (paper: 2.75% at d=4, 6.25% at d=8)",
            (1.0 - avg[di] / n[di] as f64) * 100.0
        );
    }
}
