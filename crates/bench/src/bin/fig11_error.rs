//! Fig. 11: application output error under Ghostwriter at d-distances 4
//! and 8 (MPE or NRMSE per Table 2), vs a precise execution.

use ghostwriter_bench::{banner, eval_paper_suite, row, EVAL_CORES, EVAL_DISTANCES};
use ghostwriter_workloads::{paper_benchmarks, ScaleClass};

fn main() {
    banner("Figure 11", "output error under Ghostwriter");
    let metric_of: std::collections::HashMap<&str, &str> = paper_benchmarks()
        .iter()
        .map(|e| (e.name, e.metric.label()))
        .collect();
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let widths = [18usize, 4, 8, 12];
    println!(
        "{}",
        row(
            &["app".into(), "d".into(), "metric".into(), "error %".into()],
            &widths
        )
    );
    let mut avg = [0.0f64; 2];
    let mut n = [0usize; 2];
    for c in &cells {
        let e = c.cmp.output_error_percent();
        let di = usize::from(c.d == 8);
        avg[di] += e;
        n[di] += 1;
        println!(
            "{}",
            row(
                &[
                    c.name.into(),
                    c.d.to_string(),
                    (*metric_of.get(c.name).unwrap_or(&"?")).into(),
                    format!("{e:.4}")
                ],
                &widths
            )
        );
    }
    for (di, d) in [4, 8].iter().enumerate() {
        println!(
            "Average at d={d}: {:.4}% (paper: < 0.02% average, < 0.12% max)",
            avg[di] / n[di] as f64
        );
    }
}
