//! Thin wrapper over the experiment engine: equivalent to
//! `gwbench repro-all` (runs every registered experiment as one
//! deduplicated, cached sweep; writes all reports plus `eval.csv`).
//! Extra flags (`--jobs N`, `--smoke`, `--no-cache`, ...) are forwarded.

fn main() {
    let args = ["repro-all".to_string()]
        .into_iter()
        .chain(std::env::args().skip(1))
        .collect();
    std::process::exit(ghostwriter_exp::cli::main_with_args(args));
}
