//! Runs the entire paper evaluation (Figs. 7-11 share one sweep; Figs.
//! 1, 2, 12 and the scripted Figs. 4/5 checks run separately) and prints
//! every reproduced row. The output of this binary is the source for
//! EXPERIMENTS.md.

use ghostwriter_bench::{
    banner, eval_csv, eval_paper_suite, print_traffic_stack, row, EVAL_CORES, EVAL_DISTANCES,
};
use ghostwriter_workloads::{paper_benchmarks, ScaleClass};

fn main() {
    banner(
        "Ghostwriter reproduction",
        "full evaluation sweep (paper Figs. 7-11)",
    );
    let t0 = std::time::Instant::now();
    let cells = eval_paper_suite(ScaleClass::Eval, EVAL_CORES, &EVAL_DISTANCES);
    let metric_of: std::collections::HashMap<&str, &str> = paper_benchmarks()
        .iter()
        .map(|e| (e.name, e.metric.label()))
        .collect();

    let widths = [18usize, 3, 9, 9, 9, 9, 9, 10, 9];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "d".into(),
                "GS%".into(),
                "GI%".into(),
                "traffic".into(),
                "energy%".into(),
                "speedup%".into(),
                "metric".into(),
                "error%".into()
            ],
            &widths
        )
    );
    let mut sums = [[0.0f64; 5]; 2];
    let mut n = [0usize; 2];
    for c in &cells {
        let di = usize::from(c.d == 8);
        let vals = [
            c.cmp.gs_serviced_percent(),
            c.cmp.gi_serviced_percent(),
            c.cmp.normalized_traffic(),
            c.cmp.energy_saved_percent(),
            c.cmp.speedup_percent(),
        ];
        for (s, v) in sums[di].iter_mut().zip(vals) {
            *s += v;
        }
        n[di] += 1;
        println!(
            "{}",
            row(
                &[
                    c.name.into(),
                    c.d.to_string(),
                    format!("{:.1}", vals[0]),
                    format!("{:.1}", vals[1]),
                    format!("{:.3}", vals[2]),
                    format!("{:.1}", vals[3]),
                    format!("{:.1}", vals[4]),
                    (*metric_of.get(c.name).unwrap_or(&"?")).into(),
                    format!("{:.4}", c.cmp.output_error_percent()),
                ],
                &widths
            )
        );
    }
    println!();
    for (di, d) in [4u8, 8].iter().enumerate() {
        let k = n[di] as f64;
        println!(
            "Avg d={d}: GS {:.1}%  GI {:.1}%  traffic {:.3}  energy {:.1}%  speedup {:.1}%",
            sums[di][0] / k,
            sums[di][1] / k,
            sums[di][2] / k,
            sums[di][3] / k,
            sums[di][4] / k
        );
    }

    println!("\nPer-class traffic stacks (Fig. 8):");
    let mut last = "";
    for c in &cells {
        if c.name != last {
            println!("{}:", c.name);
            last = c.name;
        }
        let split = c
            .cmp
            .ghostwriter
            .report
            .normalized_traffic_by_class_vs(&c.cmp.baseline.report);
        print_traffic_stack(&format!("d={}", c.d), &split);
    }
    // Optional CSV dump: `repro_all --csv <path>`.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            let path = args.next().expect("--csv needs a path");
            std::fs::write(&path, eval_csv(&cells)).expect("write csv");
            println!("\nWrote {path}");
        }
    }
    println!("\nSweep wall-clock: {:.1}s", t0.elapsed().as_secs_f64());
    println!("Run fig01/fig02/fig04/fig05/fig12 binaries for the remaining figures.");
}
