//! Ablation benches for the design choices DESIGN.md calls out: the two
//! approximate states individually, the scribe comparator policy, and
//! the GI store policy.

use criterion::{criterion_group, criterion_main, Criterion};
use ghostwriter_core::config::{GiStorePolicy, GwConfig};
use ghostwriter_core::{Protocol, ScribePolicy};
use ghostwriter_workloads::{compare, LinearRegression};
use std::hint::black_box;

const CORES: usize = 4;

fn protocol(
    enable_gs: bool,
    enable_gi: bool,
    scribe: ScribePolicy,
    gi_stores: GiStorePolicy,
) -> Protocol {
    Protocol::Ghostwriter(GwConfig {
        scribe,
        enable_gs,
        enable_gi,
        gi_stores,
        ..GwConfig::default()
    })
}

fn run(p: Protocol) -> (f64, f64, f64) {
    let cmp = compare(
        &|| Box::new(LinearRegression::new(11, 600)),
        CORES,
        CORES,
        8,
        p,
    );
    (
        cmp.speedup_percent(),
        cmp.normalized_traffic(),
        cmp.output_error_percent(),
    )
}

fn state_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_states");
    g.sample_size(10);
    for (label, gs, gi) in [
        ("gs_and_gi", true, true),
        ("gs_only", true, false),
        ("gi_only", false, true),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(run(protocol(
                    gs,
                    gi,
                    ScribePolicy::Bitwise,
                    GiStorePolicy::Fallback,
                )))
            })
        });
    }
    g.finish();
}

fn scribe_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scribe");
    g.sample_size(10);
    for (label, policy) in [
        ("bitwise", ScribePolicy::Bitwise),
        ("arithmetic", ScribePolicy::Arithmetic),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(protocol(true, true, policy, GiStorePolicy::Fallback))))
        });
    }
    g.finish();
}

fn gi_policy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gi_policy");
    g.sample_size(10);
    for (label, policy) in [
        ("fallback", GiStorePolicy::Fallback),
        ("capture", GiStorePolicy::Capture),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(protocol(true, true, ScribePolicy::Bitwise, policy))))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    state_ablation,
    scribe_ablation,
    gi_policy_ablation
);
criterion_main!(ablations);
