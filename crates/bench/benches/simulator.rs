//! Engine microbenchmarks: how fast the simulator itself runs — event
//! throughput, hit-path latency, coherence-transaction cost, and
//! whole-machine operations per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghostwriter_core::{Machine, MachineConfig, Protocol};
use ghostwriter_sim::EventQueue;
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(i % 97, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn l1_hit_path(c: &mut Criterion) {
    // Single core hammering one block: pure L1-hit round trips through
    // the rendezvous machinery.
    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l1_hit_ops_10k", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig {
                cores: 1,
                protocol: Protocol::Mesi,
                ..MachineConfig::default()
            });
            let a = m.alloc_padded(64);
            m.add_thread(move |ctx| async move {
                ctx.store_u32(a, 1).await;
                for _ in 0..9_999 {
                    black_box(ctx.load_u32(a).await);
                }
            });
            black_box(m.run().report.cycles)
        })
    });
    g.bench_function("coherence_pingpong_2k", |b| {
        // Two cores upgrading the same block alternately: stresses the
        // full GETX/UPGRADE/INV/DATA transaction path.
        b.iter(|| {
            let mut m = Machine::new(MachineConfig {
                cores: 2,
                protocol: Protocol::Mesi,
                ..MachineConfig::default()
            });
            let a = m.alloc_padded(64);
            for t in 0..2u64 {
                m.add_thread(move |ctx| async move {
                    let slot = a.add(4 * t);
                    for i in 0..1_000u32 {
                        let v = ctx.load_u32(slot).await;
                        ctx.store_u32(slot, v + i).await;
                    }
                });
            }
            black_box(m.run().report.stats.traffic.total())
        })
    });
    g.finish();
}

criterion_group!(simulator, event_queue_throughput, l1_hit_path);
criterion_main!(simulator);
