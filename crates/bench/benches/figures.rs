//! Criterion benches: one group per paper table/figure, exercising the
//! exact experiment path at reduced scale so `cargo bench` covers the
//! whole evaluation quickly. The full-scale numbers come from the
//! `fig*`/`repro_all` binaries (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_workloads::{compare, execute, BadDotProduct, GoodDotProduct, ScaleClass};
use std::hint::black_box;

const CORES: usize = 4;

fn cfg(protocol: Protocol) -> MachineConfig {
    MachineConfig {
        cores: CORES,
        protocol,
        ..MachineConfig::default()
    }
}

fn fig01_false_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_false_sharing");
    g.sample_size(10);
    g.bench_function("naive_dot", |b| {
        b.iter(|| {
            let mut w = BadDotProduct::new(1, 512, false);
            black_box(execute(&mut w, cfg(Protocol::Mesi), CORES, 0).report.cycles)
        })
    });
    g.bench_function("privatized_dot", |b| {
        b.iter(|| {
            let mut w = GoodDotProduct::new(1, 512);
            black_box(execute(&mut w, cfg(Protocol::Mesi), CORES, 0).report.cycles)
        })
    });
    g.finish();
}

fn fig02_value_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_value_similarity");
    g.sample_size(10);
    for entry in ghostwriter_workloads::paper_benchmarks() {
        g.bench_function(entry.name, |b| {
            b.iter(|| {
                let mut w = entry.build(ScaleClass::Test);
                let out = execute(w.as_mut(), cfg(Protocol::Mesi), CORES, 0);
                black_box(out.report.stats.similarity.cumulative_fraction(8))
            })
        });
    }
    g.finish();
}

fn figs07_to_11_evaluation(c: &mut Criterion) {
    // One comparison per app covers Figs. 7 (utilization), 8 (traffic),
    // 9 (energy), 10 (speedup) and 11 (error) — they all derive from the
    // same baseline/Ghostwriter pair.
    let mut g = c.benchmark_group("figs07_to_11_evaluation");
    g.sample_size(10);
    for entry in ghostwriter_workloads::paper_benchmarks() {
        g.bench_function(entry.name, |b| {
            b.iter(|| {
                let cmp = compare(
                    &|| entry.build(ScaleClass::Test),
                    CORES,
                    CORES,
                    8,
                    Protocol::ghostwriter(),
                );
                black_box((
                    cmp.gs_serviced_percent(),
                    cmp.gi_serviced_percent(),
                    cmp.normalized_traffic(),
                    cmp.energy_saved_percent(),
                    cmp.speedup_percent(),
                    cmp.output_error_percent(),
                ))
            })
        });
    }
    g.finish();
}

fn fig12_timeout_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_timeout_sensitivity");
    g.sample_size(10);
    for timeout in [128u64, 512, 1024] {
        g.bench_function(format!("timeout_{timeout}"), |b| {
            b.iter(|| {
                let cmp = compare(
                    &|| Box::new(BadDotProduct::with_work(0xF16, 512, true, 96)),
                    CORES,
                    CORES,
                    4,
                    Protocol::ghostwriter_capture(timeout),
                );
                black_box((cmp.gi_serviced_percent(), cmp.output_error_percent()))
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig01_false_sharing,
    fig02_value_similarity,
    figs07_to_11_evaluation,
    fig12_timeout_sensitivity
);
criterion_main!(figures);
