//! The 64-byte cache block payload.

use crate::addr::BLOCK_BYTES;

/// Contents of one cache block. Words are read and written little-endian at
/// their natural alignment, matching an x86 machine (the paper simulates
/// x86 in gem5).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockData {
    bytes: [u8; BLOCK_BYTES],
}

impl Default for BlockData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for BlockData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockData[")?;
        for chunk in self.bytes.chunks(8) {
            for b in chunk {
                write!(f, "{b:02x}")?;
            }
            write!(f, " ")?;
        }
        write!(f, "]")
    }
}

impl BlockData {
    /// An all-zero block (fresh DRAM in the simulator).
    #[inline]
    pub fn zeroed() -> Self {
        Self {
            bytes: [0; BLOCK_BYTES],
        }
    }

    /// Builds a block from raw bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; BLOCK_BYTES]) -> Self {
        Self { bytes }
    }

    /// Raw view of the block.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; BLOCK_BYTES] {
        &self.bytes
    }

    /// Mutable raw view of the block.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; BLOCK_BYTES] {
        &mut self.bytes
    }

    /// Reads a word of `size` bytes (1, 2, 4 or 8) at byte `offset`,
    /// zero-extended to 64 bits.
    ///
    /// # Panics
    /// Panics if the access crosses the block boundary or `size` is not a
    /// supported width.
    #[inline]
    pub fn read_word(&self, offset: usize, size: usize) -> u64 {
        assert!(offset + size <= BLOCK_BYTES, "access crosses block");
        let mut buf = [0u8; 8];
        buf[..size].copy_from_slice(&self.bytes[offset..offset + size]);
        match size {
            1 | 2 | 4 | 8 => u64::from_le_bytes(buf),
            _ => panic!("unsupported access width {size}"),
        }
    }

    /// Writes the low `size` bytes of `value` at byte `offset`.
    #[inline]
    pub fn write_word(&mut self, offset: usize, size: usize, value: u64) {
        assert!(offset + size <= BLOCK_BYTES, "access crosses block");
        assert!(matches!(size, 1 | 2 | 4 | 8), "unsupported width {size}");
        let le = value.to_le_bytes();
        self.bytes[offset..offset + size].copy_from_slice(&le[..size]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BlockData::zeroed();
        b.write_word(0, 1, 0xAB);
        b.write_word(2, 2, 0xBEEF);
        b.write_word(4, 4, 0xDEAD_BEEF);
        b.write_word(8, 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(b.read_word(0, 1), 0xAB);
        assert_eq!(b.read_word(2, 2), 0xBEEF);
        assert_eq!(b.read_word(4, 4), 0xDEAD_BEEF);
        assert_eq!(b.read_word(8, 8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn writes_are_little_endian() {
        let mut b = BlockData::zeroed();
        b.write_word(0, 4, 0x0403_0201);
        assert_eq!(&b.as_bytes()[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn narrow_write_preserves_neighbours() {
        let mut b = BlockData::zeroed();
        b.write_word(0, 8, u64::MAX);
        b.write_word(2, 2, 0);
        assert_eq!(b.read_word(0, 8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn truncates_value_to_width() {
        let mut b = BlockData::zeroed();
        b.write_word(0, 1, 0x1FF);
        assert_eq!(b.read_word(0, 1), 0xFF);
        assert_eq!(b.read_word(1, 1), 0);
    }

    #[test]
    #[should_panic(expected = "crosses block")]
    fn straddling_access_panics() {
        let b = BlockData::zeroed();
        b.read_word(61, 4);
    }

    #[test]
    fn float_bit_patterns_survive() {
        // Floats travel through the simulator as raw bit patterns.
        let mut b = BlockData::zeroed();
        let f = -1234.5678_f32;
        b.write_word(12, 4, f.to_bits() as u64);
        assert_eq!(f32::from_bits(b.read_word(12, 4) as u32), f);
        let d = std::f64::consts::E;
        b.write_word(16, 8, d.to_bits());
        assert_eq!(f64::from_bits(b.read_word(16, 8)), d);
    }
}
