//! Address arithmetic.
//!
//! The whole simulator uses 64-byte cache blocks (the paper's Table 1), so
//! the block geometry is fixed at compile time; set counts and associativity
//! remain runtime-configurable.

/// log2 of the cache block size.
pub const BLOCK_OFFSET_BITS: u32 = 6;
/// Cache block size in bytes (64 B, per the paper's Table 1).
pub const BLOCK_BYTES: usize = 1 << BLOCK_OFFSET_BITS;

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A block-aligned address, stored as `byte_address >> 6`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl std::fmt::Debug for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl std::fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Block({:#x})", self.0 << BLOCK_OFFSET_BITS)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Addr {
    /// The block containing this byte.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_OFFSET_BITS)
    }

    /// Byte offset within the containing block.
    #[inline]
    pub fn offset(self) -> usize {
        (self.0 as usize) & (BLOCK_BYTES - 1)
    }

    /// Address advanced by `bytes`. (Deliberately named `add`: it is the
    /// pointer-arithmetic primitive of the workload API and takes a byte
    /// count, not another address, so `std::ops::Add` would be wrong.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// True if an access of `size` bytes at this address stays within one
    /// cache block. All simulated accesses must (the allocator aligns
    /// naturally, matching real ISAs' aligned loads/stores).
    #[inline]
    pub fn fits_in_block(self, size: usize) -> bool {
        self.offset() + size <= BLOCK_BYTES
    }

    /// True if the address is naturally aligned for an access of `size`
    /// bytes (`size` must be a power of two).
    #[inline]
    pub fn is_aligned(self, size: usize) -> bool {
        debug_assert!(size.is_power_of_two());
        self.0 & (size as u64 - 1) == 0
    }
}

impl BlockAddr {
    /// Byte address of the first byte of the block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << BLOCK_OFFSET_BITS)
    }

    /// Raw block number (used for set indexing and bank interleaving).
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_split_round_trips() {
        let a = Addr(0x1234_5678);
        assert_eq!(a.block().base().0, 0x1234_5640);
        assert_eq!(a.offset(), 0x38);
        assert_eq!(a.block().base().add(a.offset() as u64), a);
    }

    #[test]
    fn fits_in_block_at_boundaries() {
        let base = Addr(0x1000);
        assert!(base.fits_in_block(64));
        assert!(!base.add(1).fits_in_block(64));
        assert!(base.add(56).fits_in_block(8));
        assert!(base.add(60).fits_in_block(4));
        assert!(!base.add(61).fits_in_block(4));
        assert!(base.add(63).fits_in_block(1));
    }

    #[test]
    fn alignment() {
        assert!(Addr(0x1000).is_aligned(8));
        assert!(Addr(0x1004).is_aligned(4));
        assert!(!Addr(0x1004).is_aligned(8));
        assert!(Addr(0x1001).is_aligned(1));
    }

    #[test]
    fn adjacent_addresses_same_block() {
        // The false-sharing primitive: two 4-byte slots 4 bytes apart land
        // in the same block unless they straddle a 64-byte boundary.
        let a = Addr(0x2000);
        let b = a.add(4);
        assert_eq!(a.block(), b.block());
        let c = a.add(64);
        assert_ne!(a.block(), c.block());
    }
}
