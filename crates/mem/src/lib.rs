//! Data-accurate memory structures for the Ghostwriter CMP simulator.
//!
//! Unlike trace-driven cache models that track only tags, every structure
//! here stores the actual 64-byte block contents. This is load-bearing for
//! the Ghostwriter protocol: blocks in the approximate `GS`/`GI` states hold
//! locally-modified values that are *hidden* from the rest of the machine,
//! and stale values read from them feed back into the running computation —
//! that is precisely how the paper's output error arises.
//!
//! Provided here:
//! * [`addr`] — address arithmetic (block/line split, access widths);
//! * [`block`] — the 64-byte [`block::BlockData`] with typed word access;
//! * [`plru`] — tree pseudo-LRU replacement state;
//! * [`cache`] — a generic set-associative cache array;
//! * [`dram`] — a sparse, byte-accurate main-memory model.

pub mod addr;
pub mod block;
pub mod cache;
pub mod dram;
pub mod plru;

pub use addr::{Addr, BlockAddr, BLOCK_BYTES, BLOCK_OFFSET_BITS};
pub use block::BlockData;
pub use cache::{Line, LookupResult, ProbedWay, SetAssocCache, WayLookup};
pub use dram::Dram;
pub use plru::TreePlru;
